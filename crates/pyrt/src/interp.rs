//! The tree-walking evaluator, executing over prepare-time-resolved
//! names: locals are dense slot vectors, every other name is a symbol
//! compare, and nothing on the hot path allocates a `String`.

use crate::exc::{Flow, PyExc};
use crate::intern::{intern, well_known, Symbol};
use crate::methods::{self, MethodKind};
use crate::prepare::{self, FuncProto, NameRes};
use crate::value::*;
use crate::vm::Vm;
use pysrc::ast::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Maximum Python call depth before `RuntimeError: maximum recursion
/// depth exceeded`. Slot-resolved frames shrank the per-Python-frame
/// footprint (no per-call `Vec<String>` clones, no scope allocation for
/// leaf functions), so the budget is double the original 32 while still
/// fitting a debug-build test thread's 2 MB stack; runaway mutants
/// still fail fast.
const MAX_DEPTH: u32 = 64;

/// Storage for a frame's local bindings.
pub enum FrameLocals {
    /// Module level: locals are the globals.
    Module,
    /// Dense slot storage (leaf functions; `None` = unbound).
    Slots(Vec<Option<Value>>),
    /// Dynamic symbol-keyed scope (capturing functions, class bodies).
    Dynamic(ScopeRef),
}

/// An activation record.
pub struct Frame {
    /// Module globals.
    pub globals: ScopeRef,
    /// Local bindings.
    pub locals: FrameLocals,
    /// The prepared prototype for this scope (resolution table, slot
    /// layout, `global` declarations, traceback name).
    pub proto: Arc<FuncProto>,
    /// Captured enclosing scopes, innermost last.
    pub captured: Vec<ScopeRef>,
}

impl Frame {
    /// A module-level frame without a prepare pass (ad-hoc execution;
    /// every name resolves through the dynamic fallback).
    pub fn module(globals: ScopeRef) -> Frame {
        Frame::prepared_module(globals, FuncProto::empty_module())
    }

    /// A module-level frame backed by a prepared module prototype.
    pub fn prepared_module(globals: ScopeRef, proto: Arc<FuncProto>) -> Frame {
        Frame {
            globals,
            locals: FrameLocals::Module,
            proto,
            captured: Vec::new(),
        }
    }
}

/// Collects the names a function body assigns (its locals), without
/// descending into nested `def`/`class` bodies. Dedup is a hash set
/// (the old per-insert linear `contains` made this quadratic on wide
/// function bodies).
pub fn collect_assigned_names(body: &[Stmt]) -> Vec<String> {
    struct Acc {
        names: Vec<String>,
        seen: std::collections::HashSet<String>,
    }
    impl Acc {
        fn add(&mut self, n: &str) {
            if self.seen.insert(n.to_string()) {
                self.names.push(n.to_string());
            }
        }
    }
    fn target_names(e: &Expr, acc: &mut Acc) {
        match &e.kind {
            ExprKind::Name(n) => acc.add(n),
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                for i in items {
                    target_names(i, acc);
                }
            }
            ExprKind::Starred(inner) => target_names(inner, acc),
            // Attribute/subscript targets assign into objects, not names.
            _ => {}
        }
    }
    fn walk(body: &[Stmt], acc: &mut Acc) {
        for s in body {
            match &s.kind {
                StmtKind::Assign { targets, .. } => {
                    for t in targets {
                        target_names(t, acc);
                    }
                }
                StmtKind::AugAssign { target, .. } => target_names(target, acc),
                StmtKind::For {
                    target,
                    body,
                    orelse,
                    ..
                } => {
                    target_names(target, acc);
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::While { body, orelse, .. } => {
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::If { branches, orelse } => {
                    for (_, b) in branches {
                        walk(b, acc);
                    }
                    walk(orelse, acc);
                }
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, acc);
                    for h in handlers {
                        if let Some(n) = &h.name {
                            acc.add(n);
                        }
                        walk(&h.body, acc);
                    }
                    walk(orelse, acc);
                    walk(finalbody, acc);
                }
                StmtKind::With { items, body } => {
                    for (_, t) in items {
                        if let Some(t) = t {
                            target_names(t, acc);
                        }
                    }
                    walk(body, acc);
                }
                StmtKind::FuncDef { name, .. } | StmtKind::ClassDef { name, .. } => {
                    acc.add(name);
                }
                StmtKind::Import(aliases) => {
                    for a in aliases {
                        let bound = a
                            .alias
                            .clone()
                            .unwrap_or_else(|| a.name.split('.').next().unwrap_or("").to_string());
                        acc.add(&bound);
                    }
                }
                StmtKind::FromImport { names: ns, .. } => {
                    for a in ns {
                        acc.add(a.alias.as_deref().unwrap_or(&a.name));
                    }
                }
                _ => {}
            }
        }
    }
    let mut acc = Acc {
        names: Vec::new(),
        seen: std::collections::HashSet::new(),
    };
    walk(body, &mut acc);
    acc.names
}

/// Collects `global` declarations in a function body (not descending
/// into nested functions).
pub fn collect_global_decls(body: &[Stmt]) -> Vec<String> {
    struct Acc {
        names: Vec<String>,
        seen: std::collections::HashSet<String>,
    }
    fn walk(body: &[Stmt], acc: &mut Acc) {
        for s in body {
            match &s.kind {
                StmtKind::Global(names) => {
                    for n in names {
                        if acc.seen.insert(n.clone()) {
                            acc.names.push(n.clone());
                        }
                    }
                }
                StmtKind::If { branches, orelse } => {
                    for (_, b) in branches {
                        walk(b, acc);
                    }
                    walk(orelse, acc);
                }
                StmtKind::For { body, orelse, .. } | StmtKind::While { body, orelse, .. } => {
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, acc);
                    for h in handlers {
                        walk(&h.body, acc);
                    }
                    walk(orelse, acc);
                    walk(finalbody, acc);
                }
                StmtKind::With { body, .. } => walk(body, acc),
                _ => {}
            }
        }
    }
    let mut acc = Acc {
        names: Vec::new(),
        seen: std::collections::HashSet::new(),
    };
    walk(body, &mut acc);
    acc.names
}

/// Executes a statement block.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub fn exec_block(vm: &mut Vm, frame: &mut Frame, stmts: &[Stmt]) -> Result<Flow, PyExc> {
    for stmt in stmts {
        match exec_stmt(vm, frame, stmt)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

pub(crate) fn exec_stmt(vm: &mut Vm, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, PyExc> {
    vm.tick()?;
    match &stmt.kind {
        StmtKind::Expr(e) => {
            eval(vm, frame, e)?;
            Ok(Flow::Normal)
        }
        StmtKind::Assign { targets, value } => {
            let v = eval(vm, frame, value)?;
            for t in targets {
                assign_target(vm, frame, t, v)?;
            }
            Ok(Flow::Normal)
        }
        StmtKind::AugAssign { target, op, value } => {
            let old = eval(vm, frame, target)?;
            let rhs = eval(vm, frame, value)?;
            let new = binary_op(&vm.heap, *op, old, rhs)?;
            assign_target(vm, frame, target, new)?;
            Ok(Flow::Normal)
        }
        StmtKind::Return(v) => {
            let value = match v {
                Some(e) => eval(vm, frame, e)?,
                None => Value::None,
            };
            Ok(Flow::Return(value))
        }
        StmtKind::Pass => Ok(Flow::Normal),
        StmtKind::Break => Ok(Flow::Break),
        StmtKind::Continue => Ok(Flow::Continue),
        StmtKind::Del(targets) => {
            for t in targets {
                del_target(vm, frame, t)?;
            }
            Ok(Flow::Normal)
        }
        StmtKind::Assert { test, msg } => {
            let v = eval(vm, frame, test)?;
            if !v.truthy(&vm.heap) {
                let message = match msg {
                    Some(m) => eval(vm, frame, m)?.to_display(&vm.heap),
                    None => String::new(),
                };
                return Err(PyExc::new("AssertionError", message));
            }
            Ok(Flow::Normal)
        }
        StmtKind::Global(_) => Ok(Flow::Normal), // handled by analysis
        StmtKind::Import(aliases) => {
            for a in aliases {
                let module = vm.import_module(&a.name)?;
                let bound = a
                    .alias
                    .clone()
                    .unwrap_or_else(|| a.name.split('.').next().unwrap_or(&a.name).to_string());
                // For dotted imports without alias, Python binds the top
                // package; our flat registry binds the imported module
                // under the top segment.
                write_name_str(frame, &bound, Value::Module(module));
            }
            Ok(Flow::Normal)
        }
        StmtKind::FromImport { module, names } => {
            let ns = vm.import_module(module)?;
            for a in names {
                let v = vm.heap.module(ns).get(&a.name).ok_or_else(|| {
                    PyExc::new(
                        "ImportError",
                        format!("cannot import name '{}' from '{}'", a.name, module),
                    )
                })?;
                write_name_str(frame, a.alias.as_deref().unwrap_or(&a.name), v);
            }
            Ok(Flow::Normal)
        }
        StmtKind::If { branches, orelse } => {
            for (test, body) in branches {
                if eval(vm, frame, test)?.truthy(&vm.heap) {
                    return exec_block(vm, frame, body);
                }
            }
            exec_block(vm, frame, orelse)
        }
        StmtKind::While { test, body, orelse } => {
            let mut broke = false;
            while eval(vm, frame, test)?.truthy(&vm.heap) {
                match exec_block(vm, frame, body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => {
                        broke = true;
                        break;
                    }
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            if !broke {
                if let Flow::Return(v) = exec_block(vm, frame, orelse)? {
                    return Ok(Flow::Return(v));
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => {
            let iterable = eval(vm, frame, iter)?;
            let items = iter_values(&vm.heap, iterable)?;
            let mut broke = false;
            for item in items {
                assign_target(vm, frame, target, item)?;
                match exec_block(vm, frame, body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => {
                        broke = true;
                        break;
                    }
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            if !broke {
                if let Flow::Return(v) = exec_block(vm, frame, orelse)? {
                    return Ok(Flow::Return(v));
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::FuncDef { name, params, body } => {
            let func = make_function(vm, frame, stmt.id, name, params, body)?;
            write_name_str(frame, name, func);
            Ok(Flow::Normal)
        }
        StmtKind::ClassDef { name, bases, body } => {
            let base = match bases.first() {
                Some(b) => match eval(vm, frame, b)? {
                    Value::Class(c) => Some(c),
                    other => {
                        return Err(PyExc::type_error(format!(
                            "cannot inherit from {}",
                            other.type_name()
                        )))
                    }
                },
                None => None,
            };
            let class_proto = match vm.proto(stmt.id) {
                Some(p) => p,
                None => {
                    let (p, nested) = prepare::prepare_class(name, body);
                    vm.install_proto(stmt.id, p.clone(), nested);
                    p
                }
            };
            // Execute the class body in its own scope.
            let class_scope = Scope::new_ref();
            {
                let mut class_frame = Frame {
                    globals: frame.globals.clone(),
                    locals: FrameLocals::Dynamic(class_scope.clone()),
                    proto: class_proto,
                    captured: frame.captured.clone(),
                };
                exec_block(vm, &mut class_frame, body)?;
            }
            let is_exception = base.is_some_and(|b| vm.heap.class(b).is_exception);
            let class = vm.heap.new_class(ClassObj {
                name: name.clone(),
                base,
                attrs: RefCell::new(class_scope.borrow().bindings_syms()),
                is_exception,
            });
            if is_exception {
                vm.register_exception_class(class);
            }
            write_name_str(frame, name, Value::Class(class));
            Ok(Flow::Normal)
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            let result = exec_block(vm, frame, body);
            let outcome = match result {
                Ok(flow) => {
                    // `else` runs only if no exception occurred.
                    match flow {
                        Flow::Normal => exec_block(vm, frame, orelse),
                        other => Ok(other),
                    }
                }
                Err(exc) => {
                    // Fuel exhaustion must not be caught by `except`.
                    if exc.class_name == "ProfipyFuelExhausted" {
                        Err(exc)
                    } else {
                        handle_exception(vm, frame, exc, handlers)
                    }
                }
            };
            // `finally` always runs; its exceptional/return flow wins.
            match exec_block(vm, frame, finalbody)? {
                Flow::Normal => outcome,
                other => Ok(other),
            }
        }
        StmtKind::Raise { exc, cause: _ } => {
            let e = match exc {
                Some(expr) => {
                    let v = eval(vm, frame, expr)?;
                    exception_from_value(vm, frame, v)?
                }
                None => match vm.handling.borrow().last() {
                    Some(e) => e.clone(),
                    None => PyExc::new("RuntimeError", "No active exception to re-raise"),
                },
            };
            Err(e.with_frame(&frame.proto.name))
        }
        StmtKind::With { items, body } => {
            let mut exits = Vec::new();
            for (ctx_expr, target) in items {
                let ctx = eval(vm, frame, ctx_expr)?;
                let entered = match get_attr_sym(vm, ctx, well_known::sym_enter()) {
                    Ok(enter) => call_value(vm, enter, vec![], vec![])?,
                    Err(_) => ctx,
                };
                if let Ok(exit) = get_attr_sym(vm, ctx, well_known::sym_exit()) {
                    exits.push(exit);
                }
                if let Some(t) = target {
                    assign_target(vm, frame, t, entered)?;
                }
            }
            let result = exec_block(vm, frame, body);
            for exit in exits.into_iter().rev() {
                call_value(vm, exit, vec![], vec![])?;
            }
            result
        }
    }
}

fn handle_exception(
    vm: &mut Vm,
    frame: &mut Frame,
    exc: PyExc,
    handlers: &[ExceptHandler],
) -> Result<Flow, PyExc> {
    for handler in handlers {
        let matches = match &handler.exc_type {
            None => true,
            Some(type_expr) => {
                let type_value = eval(vm, frame, type_expr)?;
                exception_matches(vm, &exc, type_value)?
            }
        };
        if matches {
            if let Some(name) = &handler.name {
                let obj = exception_object(vm, &exc);
                write_name_str(frame, name, obj);
            }
            vm.handling.borrow_mut().push(exc);
            let result = exec_block(vm, frame, &handler.body);
            vm.handling.borrow_mut().pop();
            return result;
        }
    }
    Err(exc)
}

/// Does `exc` match an `except <type_value>` clause?
fn exception_matches(vm: &Vm, exc: &PyExc, type_value: Value) -> Result<bool, PyExc> {
    match type_value {
        Value::Class(c) => {
            let exc_class = match exc.value {
                Some(Value::Instance(i)) => vm.heap.instance(i).class,
                _ => match vm.exception_class(&exc.class_name) {
                    Some(cls) => cls,
                    None => return Ok(exc.class_name == vm.heap.class(c).name),
                },
            };
            Ok(vm.heap.class_isa(exc_class, c))
        }
        Value::Tuple(types) => {
            let items = vm.heap.tuple(types).to_vec();
            for t in items {
                if exception_matches(vm, exc, t)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        other => Err(PyExc::type_error(format!(
            "catching classes that do not inherit from BaseException is not allowed (got {})",
            other.type_name()
        ))),
    }
}

/// The Python object bound by `except E as e`.
fn exception_object(vm: &Vm, exc: &PyExc) -> Value {
    if let Some(v) = exc.value {
        return v;
    }
    let class = vm
        .exception_class(&exc.class_name)
        .or_else(|| vm.exception_class("Exception"))
        .expect("Exception class always registered");
    let message = vm.heap.new_str(&exc.message);
    vm.heap.new_instance(InstanceObj {
        class,
        attrs: RefCell::new(vec![(well_known::sym_message(), message)]),
    })
}

/// Converts a raised value (`raise X`) into a [`PyExc`].
pub(crate) fn exception_from_value(
    vm: &mut Vm,
    _frame: &mut Frame,
    v: Value,
) -> Result<PyExc, PyExc> {
    match v {
        Value::Class(c) if vm.heap.class(c).is_exception => {
            // `raise E` instantiates with no arguments.
            let inst = instantiate_exception(vm, c, Vec::new())?;
            Ok(PyExc::with_value(
                vm.heap.class(c).name.clone(),
                String::new(),
                inst,
            ))
        }
        Value::Instance(i) if vm.heap.class(vm.heap.instance(i).class).is_exception => {
            let message = match vm.heap.instance(i).get_attr_sym(well_known::sym_message()) {
                Some(m) => m.to_display(&vm.heap),
                None => String::new(),
            };
            Ok(PyExc::with_value(
                vm.heap.class(vm.heap.instance(i).class).name.clone(),
                message,
                v,
            ))
        }
        other => Err(PyExc::type_error(format!(
            "exceptions must derive from BaseException (got {})",
            other.type_name()
        ))),
    }
}

/// Instantiates an exception class with positional args.
pub fn instantiate_exception(vm: &mut Vm, class: u32, args: Vec<Value>) -> Result<Value, PyExc> {
    let inst = vm.heap.new_instance(InstanceObj {
        class,
        attrs: RefCell::new(Vec::new()),
    });
    if let Some(Value::Func(init)) = vm.heap.class_lookup_sym(class, well_known::sym_init()) {
        call_function(vm, init, {
            let mut a = vec![inst];
            a.extend(args);
            a
        }, vec![])?;
    } else {
        let message = match args.len() {
            0 => vm.heap.new_str(""),
            1 => args[0],
            _ => vm.heap.new_tuple(args.clone()),
        };
        let Value::Instance(id) = inst else {
            unreachable!("new_instance returns Value::Instance")
        };
        vm.heap
            .instance(id)
            .set_attr_sym(well_known::sym_message(), message);
        if let Some(&first) = args.first() {
            let args_tuple = vm.heap.new_tuple(vec![first]);
            vm.heap
                .instance(id)
                .set_attr_sym(well_known::sym_args(), args_tuple);
        }
    }
    Ok(inst)
}

fn make_function(
    vm: &mut Vm,
    frame: &mut Frame,
    def_id: NodeId,
    name: &str,
    params: &[Param],
    body: &[Stmt],
) -> Result<Value, PyExc> {
    let proto = match vm.proto(def_id) {
        Some(p) => p,
        None => {
            let (p, nested) = prepare::prepare_function(name, params, body);
            vm.install_proto(def_id, p.clone(), nested);
            p
        }
    };
    finish_function(vm, frame, proto, params)
}

fn finish_function(
    vm: &mut Vm,
    frame: &mut Frame,
    proto: Arc<FuncProto>,
    params: &[Param],
) -> Result<Value, PyExc> {
    let mut defaults = Vec::with_capacity(params.len());
    for p in params {
        defaults.push(match &p.default {
            Some(d) => Some(eval(vm, frame, d)?),
            None => None,
        });
    }
    let mut captured = frame.captured.clone();
    if let FrameLocals::Dynamic(locals) = &frame.locals {
        captured.push(locals.clone());
    }
    Ok(vm.heap.new_func(FuncObj {
        proto,
        defaults,
        globals: frame.globals.clone(),
        captured,
    }))
}

/// Binds `name` in the frame the way an assignment would (used for the
/// string-named binding forms: imports, `def`/`class` names, `except
/// .. as e`).
fn write_name_str(frame: &mut Frame, name: &str, value: Value) {
    write_sym(frame, intern(name), value);
}

pub(crate) fn write_sym(frame: &mut Frame, sym: Symbol, value: Value) {
    if frame.proto.global_decls.contains(&sym) {
        frame.globals.borrow_mut().set_sym(sym, value);
        return;
    }
    match &mut frame.locals {
        FrameLocals::Module => frame.globals.borrow_mut().set_sym(sym, value),
        FrameLocals::Slots(slots) => match frame.proto.slot_of(sym) {
            Some(i) => slots[i as usize] = Some(value),
            // Unreachable for prepared code (every binding form is in
            // the assignment analysis); fall back to globals.
            None => frame.globals.borrow_mut().set_sym(sym, value),
        },
        FrameLocals::Dynamic(locals) => locals.borrow_mut().set_sym(sym, value),
    }
}

fn read_name(vm: &Vm, frame: &Frame, id: NodeId, name: &str) -> Result<Value, PyExc> {
    match frame.proto.table.res(id) {
        NameRes::Local { slot, sym } => match &frame.locals {
            FrameLocals::Slots(slots) => match slots[slot as usize] {
                Some(v) => Ok(v),
                // Local by analysis but not yet bound: the paper's §V-C
                // UnboundLocalError.
                None => Err(PyExc::unbound_local(sym.as_str())),
            },
            _ => read_name_fallback(vm, frame, name),
        },
        NameRes::DynLocal(sym) => match &frame.locals {
            FrameLocals::Dynamic(locals) => match locals.borrow().get_sym(sym) {
                Some(v) => Ok(v),
                None => Err(PyExc::unbound_local(sym.as_str())),
            },
            _ => read_name_fallback(vm, frame, name),
        },
        NameRes::Cell(sym) => {
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
            read_global_sym(vm, frame, sym)
        }
        NameRes::Global(sym) | NameRes::GlobalDecl(sym) => read_global_sym(vm, frame, sym),
        NameRes::Unprepared | NameRes::Attr(_) => read_name_fallback(vm, frame, name),
    }
}

pub(crate) fn read_global_sym(vm: &Vm, frame: &Frame, sym: Symbol) -> Result<Value, PyExc> {
    if let Some(v) = frame.globals.borrow().get_sym(sym) {
        return Ok(v);
    }
    if let Some(v) = vm.builtins.borrow().get_sym(sym) {
        return Ok(v);
    }
    Err(PyExc::name_error(sym.as_str()))
}

/// Dynamic (string-driven) name resolution for nodes outside the
/// prepared table — semantically identical to the pre-slot interpreter.
fn read_name_fallback(vm: &Vm, frame: &Frame, name: &str) -> Result<Value, PyExc> {
    read_sym_fallback(vm, frame, intern(name))
}

/// Symbol-keyed form of [`read_name_fallback`], shared with the
/// bytecode VM (whose operands are already interned).
pub(crate) fn read_sym_fallback(vm: &Vm, frame: &Frame, sym: Symbol) -> Result<Value, PyExc> {
    if frame.proto.global_decls.contains(&sym) {
        return read_global_sym(vm, frame, sym);
    }
    match &frame.locals {
        FrameLocals::Module => {}
        FrameLocals::Slots(slots) => {
            if let Some(i) = frame.proto.slot_of(sym) {
                return match slots[i as usize] {
                    Some(v) => Ok(v),
                    None => Err(PyExc::unbound_local(sym.as_str())),
                };
            }
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
        }
        FrameLocals::Dynamic(locals) => {
            if frame.proto.local_syms.contains(&sym) {
                return match locals.borrow().get_sym(sym) {
                    Some(v) => Ok(v),
                    None => Err(PyExc::unbound_local(sym.as_str())),
                };
            }
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
        }
    }
    read_global_sym(vm, frame, sym)
}

fn assign_target(vm: &mut Vm, frame: &mut Frame, target: &Expr, value: Value) -> Result<(), PyExc> {
    match &target.kind {
        ExprKind::Name(n) => {
            match frame.proto.table.res(target.id) {
                NameRes::Local { slot, sym } => match &mut frame.locals {
                    FrameLocals::Slots(slots) => slots[slot as usize] = Some(value),
                    _ => write_sym(frame, sym, value),
                },
                NameRes::DynLocal(sym) => match &mut frame.locals {
                    FrameLocals::Dynamic(locals) => locals.borrow_mut().set_sym(sym, value),
                    _ => write_sym(frame, sym, value),
                },
                NameRes::Global(sym) | NameRes::GlobalDecl(sym) => {
                    frame.globals.borrow_mut().set_sym(sym, value)
                }
                // A write to a `Cell` name (comprehension targets) goes
                // into the dynamic scope, like the old interpreter's
                // unconditional locals write.
                NameRes::Cell(sym) => write_sym(frame, sym, value),
                NameRes::Unprepared | NameRes::Attr(_) => write_name_str(frame, n, value),
            }
            Ok(())
        }
        ExprKind::Attribute { value: obj, attr } => {
            let o = eval(vm, frame, obj)?;
            let sym = match frame.proto.table.res(target.id) {
                NameRes::Attr(s) => s,
                _ => intern(attr),
            };
            set_attr_sym(&vm.heap, o, sym, value)
        }
        ExprKind::Subscript { value: obj, index } => {
            let o = eval(vm, frame, obj)?;
            let i = eval(vm, frame, index)?;
            set_item(&vm.heap, o, i, value)
        }
        ExprKind::Tuple(items) | ExprKind::List(items) => {
            let values = iter_values(&vm.heap, value)?;
            if values.len() != items.len() {
                return Err(PyExc::value_error(format!(
                    "cannot unpack {} values into {} targets",
                    values.len(),
                    items.len()
                )));
            }
            for (t, v) in items.iter().zip(values) {
                assign_target(vm, frame, t, v)?;
            }
            Ok(())
        }
        _ => Err(PyExc::new("SyntaxError", "cannot assign to expression")),
    }
}

fn del_target(vm: &mut Vm, frame: &mut Frame, target: &Expr) -> Result<(), PyExc> {
    match &target.kind {
        ExprKind::Name(n) => {
            // Pre-refactor semantics: `del` always operates on the
            // innermost storage (locals in a function, globals at
            // module level), regardless of `global` declarations.
            let removed = match &mut frame.locals {
                FrameLocals::Module => frame.globals.borrow_mut().unset(n),
                FrameLocals::Slots(slots) => match frame.proto.slot_of(intern(n)) {
                    Some(i) => slots[i as usize].take().is_some(),
                    None => false,
                },
                FrameLocals::Dynamic(locals) => locals.borrow_mut().unset(n),
            };
            if removed {
                Ok(())
            } else {
                Err(PyExc::name_error(n))
            }
        }
        ExprKind::Subscript { value: obj, index } => {
            let o = eval(vm, frame, obj)?;
            let i = eval(vm, frame, index)?;
            match o {
                Value::Dict(d) => {
                    vm.heap
                        .dict(d)
                        .borrow_mut()
                        .remove(&vm.heap, i)
                        .ok_or_else(|| PyExc::key_error(&vm.heap, i))?;
                    Ok(())
                }
                Value::List(l) => {
                    let idx = as_index(i, vm.heap.list(l).borrow().len())?;
                    vm.heap.list(l).borrow_mut().remove(idx);
                    Ok(())
                }
                other => Err(PyExc::type_error(format!(
                    "'{}' object does not support item deletion",
                    other.type_name()
                ))),
            }
        }
        _ => Err(PyExc::new("SyntaxError", "cannot delete expression")),
    }
}

/// Evaluates an expression.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub fn eval(vm: &mut Vm, frame: &mut Frame, expr: &Expr) -> Result<Value, PyExc> {
    vm.tick()?;
    match &expr.kind {
        ExprKind::Num(Number::Int(v)) => Ok(Value::Int(*v)),
        ExprKind::Num(Number::Float(v)) => Ok(Value::Float(*v)),
        ExprKind::Str(s) => Ok(vm.heap.new_str(s)),
        ExprKind::Bool(b) => Ok(Value::Bool(*b)),
        ExprKind::NoneLit => Ok(Value::None),
        ExprKind::Name(n) => read_name(vm, frame, expr.id, n),
        ExprKind::Attribute { value, attr } => {
            let obj = eval(vm, frame, value)?;
            match frame.proto.table.res(expr.id) {
                NameRes::Attr(sym) => get_attr_sym(vm, obj, sym),
                _ => get_attr(vm, obj, attr),
            }
        }
        ExprKind::Subscript { value, index } => {
            let obj = eval(vm, frame, value)?;
            let idx = eval(vm, frame, index)?;
            get_item(&vm.heap, obj, idx)
        }
        ExprKind::Slice { lower, upper, step } => {
            // Bare slice object (only meaningful inside subscripts; we
            // represent it as a tuple marker).
            let l = opt_eval(vm, frame, lower)?;
            let u = opt_eval(vm, frame, upper)?;
            let s = opt_eval(vm, frame, step)?;
            let tag = vm.heap.new_str("__slice__");
            Ok(vm.heap.new_tuple(vec![tag, l, u, s]))
        }
        ExprKind::Call { func, args } => {
            let callee = eval(vm, frame, func)?;
            let mut pos = Vec::new();
            let mut kw = Vec::new();
            for a in args {
                match a {
                    Arg::Pos(e) => pos.push(eval(vm, frame, e)?),
                    Arg::Kw(n, e) => kw.push((n.clone(), eval(vm, frame, e)?)),
                    Arg::Star(e) => {
                        let v = eval(vm, frame, e)?;
                        pos.extend(iter_values(&vm.heap, v)?);
                    }
                    Arg::DoubleStar(e) => {
                        let v = eval(vm, frame, e)?;
                        match v {
                            Value::Dict(d) => {
                                let pairs: Vec<(Value, Value)> =
                                    vm.heap.dict(d).borrow().iter().copied().collect();
                                for (k, val) in pairs {
                                    kw.push((k.to_display(&vm.heap), val));
                                }
                            }
                            other => {
                                return Err(PyExc::type_error(format!(
                                    "argument after ** must be a mapping, not {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                }
            }
            call_value(vm, callee, pos, kw)
        }
        ExprKind::Unary { op, operand } => {
            let v = eval(vm, frame, operand)?;
            unary_op(&vm.heap, *op, v)
        }
        ExprKind::Binary { left, op, right } => {
            let l = eval(vm, frame, left)?;
            let r = eval(vm, frame, right)?;
            binary_op(&vm.heap, *op, l, r)
        }
        ExprKind::BoolOp { op, values } => {
            let mut last = Value::None;
            for (i, v) in values.iter().enumerate() {
                last = eval(vm, frame, v)?;
                let t = last.truthy(&vm.heap);
                let short_circuit = match op {
                    BoolOpKind::And => !t,
                    BoolOpKind::Or => t,
                };
                if short_circuit && i < values.len() - 1 {
                    return Ok(last);
                }
                if short_circuit {
                    return Ok(last);
                }
            }
            Ok(last)
        }
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            let mut lhs = eval(vm, frame, left)?;
            for (op, comp) in ops.iter().zip(comparators) {
                let rhs = eval(vm, frame, comp)?;
                if !compare(&vm.heap, *op, lhs, rhs)? {
                    return Ok(Value::Bool(false));
                }
                lhs = rhs;
            }
            Ok(Value::Bool(true))
        }
        ExprKind::Lambda { params, body } => {
            let proto = match vm.proto(expr.id) {
                Some(p) => p,
                None => {
                    let (p, nested) = prepare::prepare_lambda(params, body);
                    vm.install_proto(expr.id, p.clone(), nested);
                    p
                }
            };
            finish_function(vm, frame, proto, params)
        }
        ExprKind::IfExp { test, body, orelse } => {
            if eval(vm, frame, test)?.truthy(&vm.heap) {
                eval(vm, frame, body)
            } else {
                eval(vm, frame, orelse)
            }
        }
        ExprKind::Tuple(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(eval(vm, frame, i)?);
            }
            Ok(vm.heap.new_tuple(out))
        }
        ExprKind::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(eval(vm, frame, i)?);
            }
            Ok(vm.heap.new_list(out))
        }
        ExprKind::Dict(pairs) => {
            let mut d = DictObj::new();
            for (k, v) in pairs {
                let key = eval(vm, frame, k)?;
                let value = eval(vm, frame, v)?;
                d.set(&vm.heap, key, value);
            }
            Ok(vm.heap.new_dict(d))
        }
        ExprKind::Set(items) => {
            let mut out: Vec<Value> = Vec::new();
            for i in items {
                let v = eval(vm, frame, i)?;
                if !out.iter().any(|&x| values_eq(&vm.heap, x, v)) {
                    out.push(v);
                }
            }
            Ok(vm.heap.new_set(out))
        }
        ExprKind::ListComp {
            elt,
            target,
            iter,
            ifs,
        } => {
            let iterable = eval(vm, frame, iter)?;
            // Under the `Scoped` spec version the comprehension target
            // does not leak: snapshot its prior binding and restore it
            // afterwards. `Legacy` (the default) keeps the historical
            // leaking behavior so existing campaign reports are stable.
            let snapshot = if vm.spec_version() == crate::vm::SpecVersion::Scoped {
                comp_target_snapshot(frame, target)
            } else {
                None
            };
            let result = (|vm: &mut Vm, frame: &mut Frame| -> Result<Value, PyExc> {
                let mut out = Vec::new();
                'outer: for item in iter_values(&vm.heap, iterable)? {
                    assign_target(vm, frame, target, item)?;
                    for cond in ifs {
                        if !eval(vm, frame, cond)?.truthy(&vm.heap) {
                            continue 'outer;
                        }
                    }
                    out.push(eval(vm, frame, elt)?);
                }
                Ok(vm.heap.new_list(out))
            })(vm, frame);
            if let Some((sym, prev)) = snapshot {
                comp_target_restore(frame, sym, prev);
            }
            result
        }
        ExprKind::Starred(_) => Err(PyExc::new(
            "SyntaxError",
            "starred expression outside call/assignment",
        )),
    }
}

/// Applies a unary operator (shared by the tree walk and the bytecode
/// VM).
///
/// # Errors
///
/// `TypeError` when the operand does not support the operator.
pub(crate) fn unary_op(heap: &Heap, op: UnaryOp, v: Value) -> Result<Value, PyExc> {
    match op {
        UnaryOp::Not => Ok(Value::Bool(!v.truthy(heap))),
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Bool(b) => Ok(Value::Int(-(b as i64))),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary -: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Pos => match v {
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => Ok(v),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary +: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Invert => match v {
            Value::Int(i) => Ok(Value::Int(!i)),
            Value::Bool(b) => Ok(Value::Int(!(b as i64))),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary ~: '{}'",
                other.type_name()
            ))),
        },
    }
}

fn opt_eval(vm: &mut Vm, frame: &mut Frame, e: &Option<Box<Expr>>) -> Result<Value, PyExc> {
    match e {
        Some(e) => eval(vm, frame, e),
        None => Ok(Value::None),
    }
}

/// Calls any callable value.
///
/// # Errors
///
/// `TypeError` for non-callables; propagates exceptions from the callee.
pub fn call_value(
    vm: &mut Vm,
    callee: Value,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    match callee {
        Value::Native(n) => {
            // Copy the dispatch data out of the slab before handing the
            // whole `Vm` (mutably) to the implementation.
            enum NativeCall {
                Fn(Rc<NativeImpl>),
                Method(MethodKind, Value),
            }
            let call = match vm.heap.native(n) {
                NativeObj::Fn { imp, .. } => NativeCall::Fn(imp.clone()),
                NativeObj::Method { kind, recv } => NativeCall::Method(*kind, *recv),
            };
            match call {
                NativeCall::Fn(imp) => imp(vm, args, kwargs),
                NativeCall::Method(kind, recv) => {
                    methods::call_method(vm, kind, recv, args, kwargs)
                }
            }
        }
        Value::Func(f) => call_function(vm, f, args, kwargs),
        Value::BoundMethod(b) => {
            let BoundObj { func, recv } = *vm.heap.bound(b);
            let mut all = vec![recv];
            all.extend(args);
            call_value(vm, func, all, kwargs)
        }
        Value::Class(c) => {
            if vm.heap.class(c).is_exception {
                return instantiate_exception(vm, c, args);
            }
            let inst = vm.heap.new_instance(InstanceObj {
                class: c,
                attrs: RefCell::new(Vec::new()),
            });
            match vm.heap.class_lookup_sym(c, well_known::sym_init()) {
                Some(init @ (Value::Func(_) | Value::Native(_))) => {
                    let mut all = vec![inst];
                    all.extend(args);
                    call_value(vm, init, all, kwargs)?;
                }
                _ => {
                    if !args.is_empty() || !kwargs.is_empty() {
                        return Err(PyExc::type_error(format!(
                            "{}() takes no arguments",
                            vm.heap.class(c).name
                        )));
                    }
                }
            }
            Ok(inst)
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object is not callable",
            other.type_name()
        ))),
    }
}

/// Calls a user-defined function (a `Value::Func` handle) with bound
/// arguments.
pub fn call_function(
    vm: &mut Vm,
    func: u32,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    if vm.depth.get() >= MAX_DEPTH {
        return Err(PyExc::new(
            "RuntimeError",
            "maximum recursion depth exceeded",
        ));
    }
    // Phase A: build the frame under shared heap borrows (slab refs are
    // address-stable, and `bind_params` only allocates, never runs user
    // code). Slot vectors are recycled through the VM so small calls
    // don't allocate.
    let mut args = args;
    let mut frame = {
        let f = vm.heap.func(func);
        let locals = if f.proto.dynamic {
            FrameLocals::Dynamic(Scope::new_ref())
        } else {
            let mut slots = vm.slot_pool.borrow_mut().pop().unwrap_or_default();
            slots.resize(f.proto.slots.len(), None);
            FrameLocals::Slots(slots)
        };
        let mut frame = Frame {
            globals: f.globals.clone(),
            locals,
            proto: f.proto.clone(),
            captured: f.captured.clone(),
        };
        bind_params(&vm.heap, f, &mut args, kwargs, &mut frame.locals)?;
        frame
    };
    args.clear();
    vm.arg_pool.borrow_mut().push(args);
    // Phase B: all heap borrows dropped; run the body with `&mut Vm`.
    vm.depth.set(vm.depth.get() + 1);
    let result = if vm.engine() == crate::vm::Engine::Bytecode {
        // SAFETY: the compiled code lives in the proto's `OnceLock`,
        // which is never replaced once set, and `frame.proto` keeps the
        // prototype (and therefore the code `Arc`) alive for the whole
        // call. Detaching the borrow from `frame` lets `run` take
        // `&mut frame` without an Arc round-trip on every call.
        let code: *const crate::ir::CodeObject = crate::compile::func_code(vm, &frame.proto);
        crate::bcvm::run(vm, &mut frame, unsafe { &*code })
    } else {
        let proto = frame.proto.clone();
        match exec_block(vm, &mut frame, &proto.body) {
            Ok(Flow::Return(v)) => Ok(v),
            Ok(_) => Ok(Value::None),
            Err(e) => Err(e),
        }
    };
    vm.depth.set(vm.depth.get() - 1);
    if let FrameLocals::Slots(mut slots) = std::mem::replace(&mut frame.locals, FrameLocals::Module)
    {
        slots.clear();
        vm.slot_pool.borrow_mut().push(slots);
    }
    result.map_err(|e| e.with_frame(&frame.proto.name))
}

/// Executes a module-level scope body through the configured engine.
/// The bytecode compile is cached on the module's [`FuncProto`], except
/// for the shared `empty_module` prototype (used by eval-style entry
/// points whose body is not 1:1 with the prototype) which always tree
/// walks.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub(crate) fn exec_entry(vm: &mut Vm, frame: &mut Frame, body: &[Stmt]) -> Result<Flow, PyExc> {
    if vm.engine() == crate::vm::Engine::Bytecode
        && !Arc::ptr_eq(&frame.proto, &FuncProto::empty_module())
    {
        let proto = frame.proto.clone();
        let code = crate::compile::module_code(vm, &proto, body);
        return crate::bcvm::run(vm, frame, code).map(Flow::Return);
    }
    exec_block(vm, frame, body)
}

/// Snapshot of a simple-`Name` comprehension target's binding (for the
/// `Scoped` spec version). Returns `None` for non-name targets, which
/// keep legacy semantics.
fn comp_target_snapshot(frame: &Frame, target: &Expr) -> Option<(Symbol, Option<Value>)> {
    let ExprKind::Name(n) = &target.kind else {
        return None;
    };
    let sym = intern(n);
    let prev = if frame.proto.global_decls.contains(&sym) {
        frame.globals.borrow().get_sym(sym)
    } else {
        match &frame.locals {
            FrameLocals::Module => frame.globals.borrow().get_sym(sym),
            FrameLocals::Slots(slots) => {
                frame.proto.slot_of(sym).and_then(|i| slots[i as usize])
            }
            FrameLocals::Dynamic(locals) => locals.borrow().get_sym(sym),
        }
    };
    Some((sym, prev))
}

/// Restores (or unsets) a comprehension target binding captured by
/// [`comp_target_snapshot`].
fn comp_target_restore(frame: &mut Frame, sym: Symbol, prev: Option<Value>) {
    match prev {
        Some(v) => write_sym(frame, sym, v),
        None => {
            if frame.proto.global_decls.contains(&sym) {
                frame.globals.borrow_mut().unset_sym(sym);
                return;
            }
            match &mut frame.locals {
                FrameLocals::Module => {
                    frame.globals.borrow_mut().unset_sym(sym);
                }
                FrameLocals::Slots(slots) => {
                    if let Some(i) = frame.proto.slot_of(sym) {
                        slots[i as usize] = None;
                    }
                }
                FrameLocals::Dynamic(locals) => {
                    locals.borrow_mut().unset_sym(sym);
                }
            }
        }
    }
}

fn bind_params(
    heap: &Heap,
    func: &FuncObj,
    args: &mut Vec<Value>,
    mut kwargs: Vec<(String, Value)>,
    locals: &mut FrameLocals,
) -> Result<(), PyExc> {
    fn bind(locals: &mut FrameLocals, p: &crate::prepare::ProtoParam, v: Value) {
        match locals {
            FrameLocals::Slots(slots) => slots[p.slot as usize] = Some(v),
            FrameLocals::Dynamic(scope) => scope.borrow_mut().set_sym(p.sym, v),
            FrameLocals::Module => unreachable!("functions never bind module frames"),
        }
    }
    let params = &func.proto.params;
    // Fast path: exact-arity positional call with plain parameters —
    // the overwhelmingly common shape on the call-heavy hot path.
    if kwargs.is_empty() && args.len() == params.len() {
        if let FrameLocals::Slots(slots) = locals {
            if params
                .iter()
                .all(|p| matches!(p.kind, ParamKind::Normal))
            {
                for (p, v) in params.iter().zip(args.drain(..)) {
                    slots[p.slot as usize] = Some(v);
                }
                return Ok(());
            }
        }
    }
    let mut arg_iter = args.drain(..);
    for (i, p) in params.iter().enumerate() {
        match p.kind {
            ParamKind::Normal => {
                let p_name = p.sym.as_str();
                if let Some(v) = arg_iter.next() {
                    // Positional wins; a duplicate keyword is an error.
                    if kwargs.iter().any(|(n, _)| n == p_name) {
                        return Err(PyExc::type_error(format!(
                            "{}() got multiple values for argument '{}'",
                            func.name(),
                            p_name
                        )));
                    }
                    bind(locals, p, v);
                } else if let Some(pos) = kwargs.iter().position(|(n, _)| n == p_name) {
                    let (_, v) = kwargs.remove(pos);
                    bind(locals, p, v);
                } else if let Some(Some(d)) = func.defaults.get(i) {
                    bind(locals, p, *d);
                } else {
                    return Err(PyExc::type_error(format!(
                        "{}() missing required argument: '{}'",
                        func.name(),
                        p_name
                    )));
                }
            }
            ParamKind::Star => {
                let rest: Vec<Value> = arg_iter.by_ref().collect();
                bind(locals, p, heap.new_tuple(rest));
            }
            ParamKind::DoubleStar => {
                let mut d = DictObj::new();
                for (n, v) in kwargs.drain(..) {
                    let key = heap.new_string(n);
                    d.set(heap, key, v);
                }
                bind(locals, p, heap.new_dict(d));
            }
        }
    }
    if arg_iter.next().is_some() {
        drop(arg_iter);
        return Err(PyExc::type_error(format!(
            "{}() takes {} positional arguments but more were given",
            func.name(),
            params.len()
        )));
    }
    if !kwargs.is_empty() {
        return Err(PyExc::type_error(format!(
            "{}() got an unexpected keyword argument '{}'",
            func.name(),
            kwargs[0].0
        )));
    }
    Ok(())
}

/// Attribute lookup with Python semantics (including the canonical
/// `AttributeError: 'NoneType' object has no attribute ...`).
///
/// Uses the non-inserting intern probe: a never-interned name cannot
/// key any symbol table, so `getattr` with runtime-generated strings
/// fails (or reaches the string-matched builtin methods) without
/// permanently growing the interner.
pub fn get_attr(vm: &Vm, obj: Value, attr: &str) -> Result<Value, PyExc> {
    match crate::intern::try_intern(attr) {
        Some(sym) => get_attr_sym(vm, obj, sym),
        None => match obj {
            Value::Instance(i) => Err(PyExc::attribute_error(
                &vm.heap.class(vm.heap.instance(i).class).name,
                attr,
            )),
            Value::Class(c) => Err(PyExc::attribute_error(&vm.heap.class(c).name, attr)),
            Value::Module(m) => Err(PyExc::new(
                "AttributeError",
                format!(
                    "module '{}' has no attribute '{attr}'",
                    vm.heap.module(m).name
                ),
            )),
            other => {
                if let Some(v) = methods::builtin_method(vm, other, attr) {
                    Ok(v)
                } else {
                    Err(PyExc::attribute_error(other.type_name(), attr))
                }
            }
        },
    }
}

/// Symbol-keyed attribute lookup (the interpreter hot path; the symbol
/// comes from the prepare-time resolution table).
pub fn get_attr_sym(vm: &Vm, obj: Value, sym: Symbol) -> Result<Value, PyExc> {
    match obj {
        Value::Instance(i) => {
            let inst = vm.heap.instance(i);
            if let Some(v) = inst.get_attr_sym(sym) {
                return Ok(v);
            }
            if let Some(v) = vm.heap.class_lookup_sym(inst.class, sym) {
                return Ok(match v {
                    f @ (Value::Func(_) | Value::Native(_)) => vm.heap.new_bound(f, obj),
                    other => other,
                });
            }
            Err(PyExc::attribute_error(
                &vm.heap.class(inst.class).name,
                sym.as_str(),
            ))
        }
        Value::Class(c) => vm
            .heap
            .class_lookup_sym(c, sym)
            .ok_or_else(|| PyExc::attribute_error(&vm.heap.class(c).name, sym.as_str())),
        Value::Module(m) => vm.heap.module(m).get_sym(sym).ok_or_else(|| {
            PyExc::new(
                "AttributeError",
                format!(
                    "module '{}' has no attribute '{}'",
                    vm.heap.module(m).name,
                    sym.as_str()
                ),
            )
        }),
        other => {
            if let Some(v) = methods::builtin_method(vm, other, sym.as_str()) {
                Ok(v)
            } else {
                Err(PyExc::attribute_error(other.type_name(), sym.as_str()))
            }
        }
    }
}

pub(crate) fn set_attr_sym(heap: &Heap, obj: Value, sym: Symbol, value: Value) -> Result<(), PyExc> {
    match obj {
        Value::Instance(i) => {
            heap.instance(i).set_attr_sym(sym, value);
            Ok(())
        }
        Value::Class(c) => {
            let mut attrs = heap.class(c).attrs.borrow_mut();
            if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
                slot.1 = value;
            } else {
                attrs.push((sym, value));
            }
            Ok(())
        }
        Value::Module(m) => {
            heap.module(m).set_sym(sym, value);
            Ok(())
        }
        other => Err(PyExc::attribute_error(other.type_name(), sym.as_str())),
    }
}

fn as_index(v: Value, len: usize) -> Result<usize, PyExc> {
    let i = match v {
        Value::Int(i) => i,
        Value::Bool(b) => b as i64,
        other => {
            return Err(PyExc::type_error(format!(
                "indices must be integers, not {}",
                other.type_name()
            )))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        Err(PyExc::index_error("sequence"))
    } else {
        Ok(adjusted as usize)
    }
}

fn slice_bounds(len: usize, lower: Value, upper: Value, step: Value) -> Result<(usize, usize), PyExc> {
    if !matches!(step, Value::None) {
        if let Value::Int(s) = step {
            if s != 1 {
                return Err(PyExc::value_error("only step 1 slices are supported"));
            }
        }
    }
    let clamp = |v: Value, default: usize| -> usize {
        match v {
            Value::Int(i) => {
                let adj = if i < 0 { i + len as i64 } else { i };
                adj.clamp(0, len as i64) as usize
            }
            _ => default,
        }
    };
    let lo = clamp(lower, 0);
    let hi = clamp(upper, len).max(lo);
    Ok((lo, hi))
}

/// `obj[index]`.
pub fn get_item(heap: &Heap, obj: Value, index: Value) -> Result<Value, PyExc> {
    // Slice marker?
    if let Value::Tuple(t) = index {
        let items = heap.tuple(t);
        if items.len() == 4 {
            if let Value::Str(tag) = items[0] {
                if heap.str(tag) == "__slice__" {
                    return get_slice(heap, obj, items[1], items[2], items[3]);
                }
            }
        }
    }
    match obj {
        Value::List(l) => {
            let list = heap.list(l).borrow();
            let i = as_index(index, list.len()).map_err(|_| {
                if matches!(index, Value::Int(_) | Value::Bool(_)) {
                    PyExc::index_error("list")
                } else {
                    PyExc::type_error(format!(
                        "list indices must be integers, not {}",
                        index.type_name()
                    ))
                }
            })?;
            Ok(list[i])
        }
        Value::Tuple(t) => {
            let items = heap.tuple(t);
            let i = as_index(index, items.len())?;
            Ok(items[i])
        }
        Value::Str(s) => {
            let chars: Vec<char> = heap.str(s).chars().collect();
            let i = as_index(index, chars.len()).map_err(|e| {
                if e.class_name == "IndexError" {
                    PyExc::index_error("string")
                } else {
                    e
                }
            })?;
            Ok(heap.new_string(chars[i].to_string()))
        }
        Value::Dict(d) => heap
            .dict(d)
            .borrow()
            .get(heap, index)
            .ok_or_else(|| PyExc::key_error(heap, index)),
        other => Err(PyExc::type_error(format!(
            "'{}' object is not subscriptable",
            other.type_name()
        ))),
    }
}

fn get_slice(
    heap: &Heap,
    obj: Value,
    lower: Value,
    upper: Value,
    step: Value,
) -> Result<Value, PyExc> {
    match obj {
        Value::List(l) => {
            let out = {
                let list = heap.list(l).borrow();
                let (lo, hi) = slice_bounds(list.len(), lower, upper, step)?;
                list[lo..hi].to_vec()
            };
            Ok(heap.new_list(out))
        }
        Value::Str(s) => {
            let chars: Vec<char> = heap.str(s).chars().collect();
            let (lo, hi) = slice_bounds(chars.len(), lower, upper, step)?;
            Ok(heap.new_string(chars[lo..hi].iter().collect::<String>()))
        }
        Value::Tuple(t) => {
            let (lo, hi) = slice_bounds(heap.tuple(t).len(), lower, upper, step)?;
            let out = heap.tuple(t)[lo..hi].to_vec();
            Ok(heap.new_tuple(out))
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object is not sliceable",
            other.type_name()
        ))),
    }
}

pub(crate) fn set_item(heap: &Heap, obj: Value, index: Value, value: Value) -> Result<(), PyExc> {
    match obj {
        Value::List(l) => {
            let len = heap.list(l).borrow().len();
            let i = as_index(index, len)?;
            heap.list(l).borrow_mut()[i] = value;
            Ok(())
        }
        Value::Dict(d) => {
            heap.dict(d).borrow_mut().set(heap, index, value);
            Ok(())
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object does not support item assignment",
            other.type_name()
        ))),
    }
}

/// Materializes an iterable into values (lists, tuples, dicts iterate
/// keys, strings iterate characters, sets iterate elements).
pub fn iter_values(heap: &Heap, v: Value) -> Result<Vec<Value>, PyExc> {
    match v {
        Value::List(l) => Ok(heap.list(l).borrow().clone()),
        Value::Tuple(t) => Ok(heap.tuple(t).to_vec()),
        Value::Set(s) => Ok(heap.set(s).borrow().clone()),
        Value::Dict(d) => Ok(heap.dict(d).borrow().iter().map(|&(k, _)| k).collect()),
        Value::Str(s) => {
            let chars: Vec<String> = heap.str(s).chars().map(|c| c.to_string()).collect();
            Ok(chars.into_iter().map(|c| heap.new_string(c)).collect())
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object is not iterable",
            other.type_name()
        ))),
    }
}

/// Applies a binary operator.
pub fn binary_op(heap: &Heap, op: BinOp, l: Value, r: Value) -> Result<Value, PyExc> {
    use BinOp::*;
    let type_err = |l: Value, r: Value, sym: &str| {
        PyExc::type_error(format!(
            "unsupported operand type(s) for {sym}: '{}' and '{}'",
            l.type_name(),
            r.type_name()
        ))
    };
    // Promote bools to ints for arithmetic.
    let norm = |v: Value| match v {
        Value::Bool(b) => Value::Int(b as i64),
        other => other,
    };
    let (l, r) = (norm(l), norm(r));
    match (op, l, r) {
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(b))),
        (Add, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a + b)),
        (Add, Value::Int(a), Value::Float(b)) => Ok(Value::Float(a as f64 + b)),
        (Add, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a + b as f64)),
        (Add, Value::Str(a), Value::Str(b)) => {
            let s = format!("{}{}", heap.str(a), heap.str(b));
            Ok(heap.new_string(s))
        }
        (Add, Value::List(a), Value::List(b)) => {
            let mut out = heap.list(a).borrow().clone();
            out.extend(heap.list(b).borrow().iter().copied());
            Ok(heap.new_list(out))
        }
        (Add, Value::Tuple(a), Value::Tuple(b)) => {
            let mut out = heap.tuple(a).to_vec();
            out.extend(heap.tuple(b).iter().copied());
            Ok(heap.new_tuple(out))
        }
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(b))),
        (Sub, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a - b)),
        (Sub, Value::Int(a), Value::Float(b)) => Ok(Value::Float(a as f64 - b)),
        (Sub, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a - b as f64)),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(b))),
        (Mul, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a * b)),
        (Mul, Value::Int(a), Value::Float(b)) => Ok(Value::Float(a as f64 * b)),
        (Mul, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a * b as f64)),
        (Mul, Value::Str(s), Value::Int(n)) | (Mul, Value::Int(n), Value::Str(s)) => {
            // Negative repeat counts clamp to 0 (`as usize` would wrap).
            Ok(heap.new_string(heap.str(s).repeat(n.max(0) as usize)))
        }
        (Mul, Value::List(xs), Value::Int(n)) | (Mul, Value::Int(n), Value::List(xs)) => {
            let out = {
                let items = heap.list(xs).borrow();
                let mut out = Vec::new();
                for _ in 0..n.max(0) {
                    out.extend(items.iter().copied());
                }
                out
            };
            Ok(heap.new_list(out))
        }
        (Div, _, _) => {
            let (a, b) = float_pair(l, r).ok_or_else(|| type_err(l, r, "/"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float(a / b))
            }
        }
        (FloorDiv, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Int(a.div_euclid(b)))
            }
        }
        (FloorDiv, _, _) => {
            let (a, b) = float_pair(l, r).ok_or_else(|| type_err(l, r, "//"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float((a / b).floor()))
            }
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if b == 0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Int(a.rem_euclid(b)))
            }
        }
        (Mod, Value::Str(fmt), _) => format_percent(heap, fmt, r),
        (Mod, _, _) => {
            let (a, b) = float_pair(l, r).ok_or_else(|| type_err(l, r, "%"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float(a.rem_euclid(b)))
            }
        }
        (Pow, Value::Int(a), Value::Int(b)) if b >= 0 => {
            Ok(Value::Int(a.wrapping_pow(b.min(u32::MAX as i64) as u32)))
        }
        (Pow, _, _) => {
            let (a, b) = float_pair(l, r).ok_or_else(|| type_err(l, r, "**"))?;
            Ok(Value::Float(a.powf(b)))
        }
        (BitAnd, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a & b)),
        (BitOr, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a | b)),
        (BitXor, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a ^ b)),
        // `as u32` truncates the shift amount and `wrapping_*` masks it
        // mod 64 — pinned pre-existing semantics for huge shift counts.
        (Shl, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_shl(b as u32))),
        (Shr, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_shr(b as u32))),
        (op, l, r) => Err(type_err(l, r, op.as_str())),
    }
}

fn float_pair(l: Value, r: Value) -> Option<(f64, f64)> {
    let f = |v: Value| match v {
        Value::Int(i) => Some(i as f64),
        Value::Float(f) => Some(f),
        Value::Bool(b) => Some(b as i64 as f64),
        _ => None,
    };
    Some((f(l)?, f(r)?))
}

/// Minimal `%` string formatting: `%s`, `%d`, `%f`, `%r`, `%%`.
fn format_percent(heap: &Heap, fmt: u32, args: Value) -> Result<Value, PyExc> {
    let values: Vec<Value> = match args {
        Value::Tuple(t) => heap.tuple(t).to_vec(),
        other => vec![other],
    };
    let mut out = String::new();
    let mut it = heap.str(fmt).chars().peekable();
    let mut idx = 0;
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('%') => out.push('%'),
            Some(spec) => {
                let v = *values
                    .get(idx)
                    .ok_or_else(|| PyExc::type_error("not enough arguments for format string"))?;
                idx += 1;
                match spec {
                    's' => out.push_str(&v.to_display(heap)),
                    'r' => out.push_str(&v.repr(heap)),
                    'd' | 'i' => match v {
                        Value::Int(i) => out.push_str(&i.to_string()),
                        Value::Float(f) => out.push_str(&(f as i64).to_string()),
                        Value::Bool(b) => out.push_str(&(b as i64).to_string()),
                        other => {
                            return Err(PyExc::type_error(format!(
                                "%d format: a number is required, not {}",
                                other.type_name()
                            )))
                        }
                    },
                    'f' => match v {
                        Value::Int(i) => out.push_str(&format!("{:.6}", i as f64)),
                        Value::Float(f) => out.push_str(&format!("{f:.6}")),
                        other => {
                            return Err(PyExc::type_error(format!(
                                "%f format: a number is required, not {}",
                                other.type_name()
                            )))
                        }
                    },
                    other => {
                        return Err(PyExc::value_error(format!(
                            "unsupported format character '{other}'"
                        )))
                    }
                }
            }
            None => return Err(PyExc::value_error("incomplete format")),
        }
    }
    if idx < values.len() {
        return Err(PyExc::type_error(
            "not all arguments converted during string formatting",
        ));
    }
    Ok(heap.new_string(out))
}

/// Applies a comparison operator.
pub fn compare(heap: &Heap, op: CmpOp, l: Value, r: Value) -> Result<bool, PyExc> {
    use CmpOp::*;
    match op {
        Eq => Ok(values_eq(heap, l, r)),
        Ne => Ok(!values_eq(heap, l, r)),
        Is => Ok(values_is(heap, l, r)),
        IsNot => Ok(!values_is(heap, l, r)),
        In | NotIn => {
            let found = membership(heap, l, r)?;
            Ok(if op == In { found } else { !found })
        }
        Lt | Le | Gt | Ge => {
            let ord = values_cmp(heap, l, r).ok_or_else(|| {
                PyExc::type_error(format!(
                    "'<' not supported between instances of '{}' and '{}'",
                    l.type_name(),
                    r.type_name()
                ))
            })?;
            Ok(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!("handled above"),
            })
        }
    }
}

fn membership(heap: &Heap, needle: Value, haystack: Value) -> Result<bool, PyExc> {
    match haystack {
        Value::List(l) => Ok(heap
            .list(l)
            .borrow()
            .iter()
            .any(|&v| values_eq(heap, v, needle))),
        Value::Tuple(t) => Ok(heap.tuple(t).iter().any(|&v| values_eq(heap, v, needle))),
        Value::Set(s) => Ok(heap
            .set(s)
            .borrow()
            .iter()
            .any(|&v| values_eq(heap, v, needle))),
        Value::Dict(d) => Ok(heap.dict(d).borrow().get(heap, needle).is_some()),
        Value::Str(s) => match needle {
            Value::Str(sub) => Ok(heap.str(s).contains(heap.str(sub))),
            other => Err(PyExc::type_error(format!(
                "'in <string>' requires string as left operand, not {}",
                other.type_name()
            ))),
        },
        other => Err(PyExc::type_error(format!(
            "argument of type '{}' is not iterable",
            other.type_name()
        ))),
    }
}
