//! The tree-walking evaluator, executing over prepare-time-resolved
//! names: locals are dense slot vectors, every other name is a symbol
//! compare, and nothing on the hot path allocates a `String`.

use crate::exc::{Flow, PyExc};
use crate::intern::{intern, well_known, Symbol};
use crate::methods;
use crate::prepare::{self, FuncProto, NameRes};
use crate::value::*;
use crate::vm::Vm;
use pysrc::ast::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Maximum Python call depth before `RuntimeError: maximum recursion
/// depth exceeded`. Slot-resolved frames shrank the per-Python-frame
/// footprint (no per-call `Vec<String>` clones, no scope allocation for
/// leaf functions), so the budget is double the original 32 while still
/// fitting a debug-build test thread's 2 MB stack; runaway mutants
/// still fail fast.
const MAX_DEPTH: u32 = 64;

/// Storage for a frame's local bindings.
pub enum FrameLocals {
    /// Module level: locals are the globals.
    Module,
    /// Dense slot storage (leaf functions; `None` = unbound).
    Slots(Vec<Option<Value>>),
    /// Dynamic symbol-keyed scope (capturing functions, class bodies).
    Dynamic(ScopeRef),
}

/// An activation record.
pub struct Frame {
    /// Module globals.
    pub globals: ScopeRef,
    /// Local bindings.
    pub locals: FrameLocals,
    /// The prepared prototype for this scope (resolution table, slot
    /// layout, `global` declarations, traceback name).
    pub proto: Arc<FuncProto>,
    /// Captured enclosing scopes, innermost last.
    pub captured: Vec<ScopeRef>,
}

impl Frame {
    /// A module-level frame without a prepare pass (ad-hoc execution;
    /// every name resolves through the dynamic fallback).
    pub fn module(globals: ScopeRef) -> Frame {
        Frame::prepared_module(globals, FuncProto::empty_module())
    }

    /// A module-level frame backed by a prepared module prototype.
    pub fn prepared_module(globals: ScopeRef, proto: Arc<FuncProto>) -> Frame {
        Frame {
            globals,
            locals: FrameLocals::Module,
            proto,
            captured: Vec::new(),
        }
    }
}

/// Collects the names a function body assigns (its locals), without
/// descending into nested `def`/`class` bodies. Dedup is a hash set
/// (the old per-insert linear `contains` made this quadratic on wide
/// function bodies).
pub fn collect_assigned_names(body: &[Stmt]) -> Vec<String> {
    struct Acc {
        names: Vec<String>,
        seen: std::collections::HashSet<String>,
    }
    impl Acc {
        fn add(&mut self, n: &str) {
            if self.seen.insert(n.to_string()) {
                self.names.push(n.to_string());
            }
        }
    }
    fn target_names(e: &Expr, acc: &mut Acc) {
        match &e.kind {
            ExprKind::Name(n) => acc.add(n),
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                for i in items {
                    target_names(i, acc);
                }
            }
            ExprKind::Starred(inner) => target_names(inner, acc),
            // Attribute/subscript targets assign into objects, not names.
            _ => {}
        }
    }
    fn walk(body: &[Stmt], acc: &mut Acc) {
        for s in body {
            match &s.kind {
                StmtKind::Assign { targets, .. } => {
                    for t in targets {
                        target_names(t, acc);
                    }
                }
                StmtKind::AugAssign { target, .. } => target_names(target, acc),
                StmtKind::For {
                    target,
                    body,
                    orelse,
                    ..
                } => {
                    target_names(target, acc);
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::While { body, orelse, .. } => {
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::If { branches, orelse } => {
                    for (_, b) in branches {
                        walk(b, acc);
                    }
                    walk(orelse, acc);
                }
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, acc);
                    for h in handlers {
                        if let Some(n) = &h.name {
                            acc.add(n);
                        }
                        walk(&h.body, acc);
                    }
                    walk(orelse, acc);
                    walk(finalbody, acc);
                }
                StmtKind::With { items, body } => {
                    for (_, t) in items {
                        if let Some(t) = t {
                            target_names(t, acc);
                        }
                    }
                    walk(body, acc);
                }
                StmtKind::FuncDef { name, .. } | StmtKind::ClassDef { name, .. } => {
                    acc.add(name);
                }
                StmtKind::Import(aliases) => {
                    for a in aliases {
                        let bound = a
                            .alias
                            .clone()
                            .unwrap_or_else(|| a.name.split('.').next().unwrap_or("").to_string());
                        acc.add(&bound);
                    }
                }
                StmtKind::FromImport { names: ns, .. } => {
                    for a in ns {
                        acc.add(a.alias.as_deref().unwrap_or(&a.name));
                    }
                }
                _ => {}
            }
        }
    }
    let mut acc = Acc {
        names: Vec::new(),
        seen: std::collections::HashSet::new(),
    };
    walk(body, &mut acc);
    acc.names
}

/// Collects `global` declarations in a function body (not descending
/// into nested functions).
pub fn collect_global_decls(body: &[Stmt]) -> Vec<String> {
    struct Acc {
        names: Vec<String>,
        seen: std::collections::HashSet<String>,
    }
    fn walk(body: &[Stmt], acc: &mut Acc) {
        for s in body {
            match &s.kind {
                StmtKind::Global(names) => {
                    for n in names {
                        if acc.seen.insert(n.clone()) {
                            acc.names.push(n.clone());
                        }
                    }
                }
                StmtKind::If { branches, orelse } => {
                    for (_, b) in branches {
                        walk(b, acc);
                    }
                    walk(orelse, acc);
                }
                StmtKind::For { body, orelse, .. } | StmtKind::While { body, orelse, .. } => {
                    walk(body, acc);
                    walk(orelse, acc);
                }
                StmtKind::Try {
                    body,
                    handlers,
                    orelse,
                    finalbody,
                } => {
                    walk(body, acc);
                    for h in handlers {
                        walk(&h.body, acc);
                    }
                    walk(orelse, acc);
                    walk(finalbody, acc);
                }
                StmtKind::With { body, .. } => walk(body, acc),
                _ => {}
            }
        }
    }
    let mut acc = Acc {
        names: Vec::new(),
        seen: std::collections::HashSet::new(),
    };
    walk(body, &mut acc);
    acc.names
}

/// Executes a statement block.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub fn exec_block(vm: &mut Vm, frame: &mut Frame, stmts: &[Stmt]) -> Result<Flow, PyExc> {
    for stmt in stmts {
        match exec_stmt(vm, frame, stmt)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

pub(crate) fn exec_stmt(vm: &mut Vm, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, PyExc> {
    vm.tick()?;
    match &stmt.kind {
        StmtKind::Expr(e) => {
            eval(vm, frame, e)?;
            Ok(Flow::Normal)
        }
        StmtKind::Assign { targets, value } => {
            let v = eval(vm, frame, value)?;
            for t in targets {
                assign_target(vm, frame, t, v.clone())?;
            }
            Ok(Flow::Normal)
        }
        StmtKind::AugAssign { target, op, value } => {
            let old = eval(vm, frame, target)?;
            let rhs = eval(vm, frame, value)?;
            let new = binary_op(vm, *op, old, rhs)?;
            assign_target(vm, frame, target, new)?;
            Ok(Flow::Normal)
        }
        StmtKind::Return(v) => {
            let value = match v {
                Some(e) => eval(vm, frame, e)?,
                None => Value::None,
            };
            Ok(Flow::Return(value))
        }
        StmtKind::Pass => Ok(Flow::Normal),
        StmtKind::Break => Ok(Flow::Break),
        StmtKind::Continue => Ok(Flow::Continue),
        StmtKind::Del(targets) => {
            for t in targets {
                del_target(vm, frame, t)?;
            }
            Ok(Flow::Normal)
        }
        StmtKind::Assert { test, msg } => {
            let v = eval(vm, frame, test)?;
            if !v.truthy() {
                let message = match msg {
                    Some(m) => eval(vm, frame, m)?.to_display(),
                    None => String::new(),
                };
                return Err(PyExc::new("AssertionError", message));
            }
            Ok(Flow::Normal)
        }
        StmtKind::Global(_) => Ok(Flow::Normal), // handled by analysis
        StmtKind::Import(aliases) => {
            for a in aliases {
                let module = vm.import_module(&a.name)?;
                let bound = a
                    .alias
                    .clone()
                    .unwrap_or_else(|| a.name.split('.').next().unwrap_or(&a.name).to_string());
                // For dotted imports without alias, Python binds the top
                // package; our flat registry binds the imported module
                // under the top segment.
                write_name_str(frame, &bound, Value::Module(module));
            }
            Ok(Flow::Normal)
        }
        StmtKind::FromImport { module, names } => {
            let ns = vm.import_module(module)?;
            for a in names {
                let v = ns.get(&a.name).ok_or_else(|| {
                    PyExc::new(
                        "ImportError",
                        format!("cannot import name '{}' from '{}'", a.name, module),
                    )
                })?;
                write_name_str(frame, a.alias.as_deref().unwrap_or(&a.name), v);
            }
            Ok(Flow::Normal)
        }
        StmtKind::If { branches, orelse } => {
            for (test, body) in branches {
                if eval(vm, frame, test)?.truthy() {
                    return exec_block(vm, frame, body);
                }
            }
            exec_block(vm, frame, orelse)
        }
        StmtKind::While { test, body, orelse } => {
            let mut broke = false;
            while eval(vm, frame, test)?.truthy() {
                match exec_block(vm, frame, body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => {
                        broke = true;
                        break;
                    }
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            if !broke {
                if let Flow::Return(v) = exec_block(vm, frame, orelse)? {
                    return Ok(Flow::Return(v));
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::For {
            target,
            iter,
            body,
            orelse,
        } => {
            let iterable = eval(vm, frame, iter)?;
            let items = iter_values(&iterable)?;
            let mut broke = false;
            for item in items {
                assign_target(vm, frame, target, item)?;
                match exec_block(vm, frame, body)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => {
                        broke = true;
                        break;
                    }
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            if !broke {
                if let Flow::Return(v) = exec_block(vm, frame, orelse)? {
                    return Ok(Flow::Return(v));
                }
            }
            Ok(Flow::Normal)
        }
        StmtKind::FuncDef { name, params, body } => {
            let func = make_function(vm, frame, stmt.id, name, params, body)?;
            write_name_str(frame, name, func);
            Ok(Flow::Normal)
        }
        StmtKind::ClassDef { name, bases, body } => {
            let base = match bases.first() {
                Some(b) => match eval(vm, frame, b)? {
                    Value::Class(c) => Some(c),
                    other => {
                        return Err(PyExc::type_error(format!(
                            "cannot inherit from {}",
                            other.type_name()
                        )))
                    }
                },
                None => None,
            };
            let class_proto = match vm.proto(stmt.id) {
                Some(p) => p,
                None => {
                    let (p, nested) = prepare::prepare_class(name, body);
                    vm.install_proto(stmt.id, p.clone(), nested);
                    p
                }
            };
            // Execute the class body in its own scope.
            let class_scope = Scope::new_ref();
            {
                let mut class_frame = Frame {
                    globals: frame.globals.clone(),
                    locals: FrameLocals::Dynamic(class_scope.clone()),
                    proto: class_proto,
                    captured: frame.captured.clone(),
                };
                exec_block(vm, &mut class_frame, body)?;
            }
            let is_exception = base.as_ref().is_some_and(|b| b.is_exception);
            let class = Rc::new(ClassObj {
                name: name.clone(),
                base,
                attrs: RefCell::new(class_scope.borrow().bindings_syms()),
                is_exception,
            });
            if is_exception {
                vm.register_exception_class(class.clone());
            }
            write_name_str(frame, name, Value::Class(class));
            Ok(Flow::Normal)
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            let result = exec_block(vm, frame, body);
            let outcome = match result {
                Ok(flow) => {
                    // `else` runs only if no exception occurred.
                    match flow {
                        Flow::Normal => exec_block(vm, frame, orelse),
                        other => Ok(other),
                    }
                }
                Err(exc) => {
                    // Fuel exhaustion must not be caught by `except`.
                    if exc.class_name == "ProfipyFuelExhausted" {
                        Err(exc)
                    } else {
                        handle_exception(vm, frame, exc, handlers)
                    }
                }
            };
            // `finally` always runs; its exceptional/return flow wins.
            match exec_block(vm, frame, finalbody)? {
                Flow::Normal => outcome,
                other => Ok(other),
            }
        }
        StmtKind::Raise { exc, cause: _ } => {
            let e = match exc {
                Some(expr) => {
                    let v = eval(vm, frame, expr)?;
                    exception_from_value(vm, frame, v)?
                }
                None => match vm.handling.borrow().last() {
                    Some(e) => e.clone(),
                    None => PyExc::new("RuntimeError", "No active exception to re-raise"),
                },
            };
            Err(e.with_frame(&frame.proto.name))
        }
        StmtKind::With { items, body } => {
            let mut exits = Vec::new();
            for (ctx_expr, target) in items {
                let ctx = eval(vm, frame, ctx_expr)?;
                let entered = match get_attr_sym(vm, &ctx, well_known::sym_enter()) {
                    Ok(enter) => call_value(vm, enter, vec![], vec![])?,
                    Err(_) => ctx.clone(),
                };
                if let Ok(exit) = get_attr_sym(vm, &ctx, well_known::sym_exit()) {
                    exits.push(exit);
                }
                if let Some(t) = target {
                    assign_target(vm, frame, t, entered)?;
                }
            }
            let result = exec_block(vm, frame, body);
            for exit in exits.into_iter().rev() {
                call_value(vm, exit, vec![], vec![])?;
            }
            result
        }
    }
}

fn handle_exception(
    vm: &mut Vm,
    frame: &mut Frame,
    exc: PyExc,
    handlers: &[ExceptHandler],
) -> Result<Flow, PyExc> {
    for handler in handlers {
        let matches = match &handler.exc_type {
            None => true,
            Some(type_expr) => {
                let type_value = eval(vm, frame, type_expr)?;
                exception_matches(vm, &exc, &type_value)?
            }
        };
        if matches {
            if let Some(name) = &handler.name {
                let obj = exception_object(vm, &exc);
                write_name_str(frame, name, obj);
            }
            vm.handling.borrow_mut().push(exc);
            let result = exec_block(vm, frame, &handler.body);
            vm.handling.borrow_mut().pop();
            return result;
        }
    }
    Err(exc)
}

/// Does `exc` match an `except <type_value>` clause?
fn exception_matches(vm: &Vm, exc: &PyExc, type_value: &Value) -> Result<bool, PyExc> {
    match type_value {
        Value::Class(c) => {
            let exc_class = match &exc.value {
                Some(Value::Instance(i)) => i.class.clone(),
                _ => match vm.exception_class(&exc.class_name) {
                    Some(c) => c,
                    None => return Ok(exc.class_name == c.name),
                },
            };
            Ok(exc_class.isa(c))
        }
        Value::Tuple(types) => {
            for t in types.iter() {
                if exception_matches(vm, exc, t)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        other => Err(PyExc::type_error(format!(
            "catching classes that do not inherit from BaseException is not allowed (got {})",
            other.type_name()
        ))),
    }
}

/// The Python object bound by `except E as e`.
fn exception_object(vm: &Vm, exc: &PyExc) -> Value {
    if let Some(v) = &exc.value {
        return v.clone();
    }
    let class = vm
        .exception_class(&exc.class_name)
        .or_else(|| vm.exception_class("Exception"))
        .expect("Exception class always registered");
    let inst = Rc::new(InstanceObj {
        class,
        attrs: RefCell::new(vec![(
            well_known::sym_message(),
            Value::str(exc.message.clone()),
        )]),
    });
    Value::Instance(inst)
}

/// Converts a raised value (`raise X`) into a [`PyExc`].
pub(crate) fn exception_from_value(
    vm: &mut Vm,
    _frame: &mut Frame,
    v: Value,
) -> Result<PyExc, PyExc> {
    match v {
        Value::Class(c) if c.is_exception => {
            // `raise E` instantiates with no arguments.
            let inst = instantiate_exception(vm, &c, Vec::new())?;
            Ok(PyExc {
                class_name: c.name.clone(),
                message: String::new(),
                value: Some(inst),
                traceback: Vec::new(),
            })
        }
        Value::Instance(i) if i.class.is_exception => {
            let message = match i.get_attr_sym(well_known::sym_message()) {
                Some(m) => m.to_display(),
                None => String::new(),
            };
            Ok(PyExc {
                class_name: i.class.name.clone(),
                message,
                value: Some(Value::Instance(i)),
                traceback: Vec::new(),
            })
        }
        other => Err(PyExc::type_error(format!(
            "exceptions must derive from BaseException (got {})",
            other.type_name()
        ))),
    }
}

/// Instantiates an exception class with positional args.
pub fn instantiate_exception(
    vm: &mut Vm,
    class: &Rc<ClassObj>,
    args: Vec<Value>,
) -> Result<Value, PyExc> {
    let inst = Rc::new(InstanceObj {
        class: class.clone(),
        attrs: RefCell::new(Vec::new()),
    });
    if let Some(Value::Func(init)) = class.lookup_sym(well_known::sym_init()) {
        call_function(vm, &init, {
            let mut a = vec![Value::Instance(inst.clone())];
            a.extend(args);
            a
        }, vec![])?;
    } else {
        let message = match args.len() {
            0 => Value::str(""),
            1 => args[0].clone(),
            _ => Value::Tuple(Rc::new(args.clone())),
        };
        inst.set_attr_sym(well_known::sym_message(), message);
        if let Some(first) = args.first() {
            inst.set_attr_sym(
                well_known::sym_args(),
                Value::Tuple(Rc::new(vec![first.clone()])),
            );
        }
    }
    Ok(Value::Instance(inst))
}

fn make_function(
    vm: &mut Vm,
    frame: &mut Frame,
    def_id: NodeId,
    name: &str,
    params: &[Param],
    body: &[Stmt],
) -> Result<Value, PyExc> {
    let proto = match vm.proto(def_id) {
        Some(p) => p,
        None => {
            let (p, nested) = prepare::prepare_function(name, params, body);
            vm.install_proto(def_id, p.clone(), nested);
            p
        }
    };
    finish_function(vm, frame, proto, params)
}

fn finish_function(
    vm: &mut Vm,
    frame: &mut Frame,
    proto: Arc<FuncProto>,
    params: &[Param],
) -> Result<Value, PyExc> {
    let mut defaults = Vec::with_capacity(params.len());
    for p in params {
        defaults.push(match &p.default {
            Some(d) => Some(eval(vm, frame, d)?),
            None => None,
        });
    }
    let mut captured = frame.captured.clone();
    if let FrameLocals::Dynamic(locals) = &frame.locals {
        captured.push(locals.clone());
    }
    Ok(Value::Func(Rc::new(FuncObj {
        proto,
        defaults,
        globals: frame.globals.clone(),
        captured,
    })))
}

/// Binds `name` in the frame the way an assignment would (used for the
/// string-named binding forms: imports, `def`/`class` names, `except
/// .. as e`).
fn write_name_str(frame: &mut Frame, name: &str, value: Value) {
    write_sym(frame, intern(name), value);
}

pub(crate) fn write_sym(frame: &mut Frame, sym: Symbol, value: Value) {
    if frame.proto.global_decls.contains(&sym) {
        frame.globals.borrow_mut().set_sym(sym, value);
        return;
    }
    match &mut frame.locals {
        FrameLocals::Module => frame.globals.borrow_mut().set_sym(sym, value),
        FrameLocals::Slots(slots) => match frame.proto.slot_of(sym) {
            Some(i) => slots[i as usize] = Some(value),
            // Unreachable for prepared code (every binding form is in
            // the assignment analysis); fall back to globals.
            None => frame.globals.borrow_mut().set_sym(sym, value),
        },
        FrameLocals::Dynamic(locals) => locals.borrow_mut().set_sym(sym, value),
    }
}

fn read_name(vm: &Vm, frame: &Frame, id: NodeId, name: &str) -> Result<Value, PyExc> {
    match frame.proto.table.res(id) {
        NameRes::Local { slot, sym } => match &frame.locals {
            FrameLocals::Slots(slots) => match &slots[slot as usize] {
                Some(v) => Ok(v.clone()),
                // Local by analysis but not yet bound: the paper's §V-C
                // UnboundLocalError.
                None => Err(PyExc::unbound_local(sym.as_str())),
            },
            _ => read_name_fallback(vm, frame, name),
        },
        NameRes::DynLocal(sym) => match &frame.locals {
            FrameLocals::Dynamic(locals) => match locals.borrow().get_sym(sym) {
                Some(v) => Ok(v),
                None => Err(PyExc::unbound_local(sym.as_str())),
            },
            _ => read_name_fallback(vm, frame, name),
        },
        NameRes::Cell(sym) => {
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
            read_global_sym(vm, frame, sym)
        }
        NameRes::Global(sym) | NameRes::GlobalDecl(sym) => read_global_sym(vm, frame, sym),
        NameRes::Unprepared | NameRes::Attr(_) => read_name_fallback(vm, frame, name),
    }
}

pub(crate) fn read_global_sym(vm: &Vm, frame: &Frame, sym: Symbol) -> Result<Value, PyExc> {
    if let Some(v) = frame.globals.borrow().get_sym(sym) {
        return Ok(v);
    }
    if let Some(v) = vm.builtins.borrow().get_sym(sym) {
        return Ok(v);
    }
    Err(PyExc::name_error(sym.as_str()))
}

/// Dynamic (string-driven) name resolution for nodes outside the
/// prepared table — semantically identical to the pre-slot interpreter.
fn read_name_fallback(vm: &Vm, frame: &Frame, name: &str) -> Result<Value, PyExc> {
    read_sym_fallback(vm, frame, intern(name))
}

/// Symbol-keyed form of [`read_name_fallback`], shared with the
/// bytecode VM (whose operands are already interned).
pub(crate) fn read_sym_fallback(vm: &Vm, frame: &Frame, sym: Symbol) -> Result<Value, PyExc> {
    if frame.proto.global_decls.contains(&sym) {
        return read_global_sym(vm, frame, sym);
    }
    match &frame.locals {
        FrameLocals::Module => {}
        FrameLocals::Slots(slots) => {
            if let Some(i) = frame.proto.slot_of(sym) {
                return match &slots[i as usize] {
                    Some(v) => Ok(v.clone()),
                    None => Err(PyExc::unbound_local(sym.as_str())),
                };
            }
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
        }
        FrameLocals::Dynamic(locals) => {
            if frame.proto.local_syms.contains(&sym) {
                return match locals.borrow().get_sym(sym) {
                    Some(v) => Ok(v),
                    None => Err(PyExc::unbound_local(sym.as_str())),
                };
            }
            for scope in frame.captured.iter().rev() {
                if let Some(v) = scope.borrow().get_sym(sym) {
                    return Ok(v);
                }
            }
        }
    }
    read_global_sym(vm, frame, sym)
}

fn assign_target(vm: &mut Vm, frame: &mut Frame, target: &Expr, value: Value) -> Result<(), PyExc> {
    match &target.kind {
        ExprKind::Name(n) => {
            match frame.proto.table.res(target.id) {
                NameRes::Local { slot, sym } => match &mut frame.locals {
                    FrameLocals::Slots(slots) => slots[slot as usize] = Some(value),
                    _ => write_sym(frame, sym, value),
                },
                NameRes::DynLocal(sym) => match &mut frame.locals {
                    FrameLocals::Dynamic(locals) => locals.borrow_mut().set_sym(sym, value),
                    _ => write_sym(frame, sym, value),
                },
                NameRes::Global(sym) | NameRes::GlobalDecl(sym) => {
                    frame.globals.borrow_mut().set_sym(sym, value)
                }
                // A write to a `Cell` name (comprehension targets) goes
                // into the dynamic scope, like the old interpreter's
                // unconditional locals write.
                NameRes::Cell(sym) => write_sym(frame, sym, value),
                NameRes::Unprepared | NameRes::Attr(_) => write_name_str(frame, n, value),
            }
            Ok(())
        }
        ExprKind::Attribute { value: obj, attr } => {
            let o = eval(vm, frame, obj)?;
            let sym = match frame.proto.table.res(target.id) {
                NameRes::Attr(s) => s,
                _ => intern(attr),
            };
            set_attr_sym(&o, sym, value)
        }
        ExprKind::Subscript { value: obj, index } => {
            let o = eval(vm, frame, obj)?;
            let i = eval(vm, frame, index)?;
            set_item(&o, i, value)
        }
        ExprKind::Tuple(items) | ExprKind::List(items) => {
            let values = iter_values(&value)?;
            if values.len() != items.len() {
                return Err(PyExc::value_error(format!(
                    "cannot unpack {} values into {} targets",
                    values.len(),
                    items.len()
                )));
            }
            for (t, v) in items.iter().zip(values) {
                assign_target(vm, frame, t, v)?;
            }
            Ok(())
        }
        _ => Err(PyExc::new("SyntaxError", "cannot assign to expression")),
    }
}

fn del_target(vm: &mut Vm, frame: &mut Frame, target: &Expr) -> Result<(), PyExc> {
    match &target.kind {
        ExprKind::Name(n) => {
            // Pre-refactor semantics: `del` always operates on the
            // innermost storage (locals in a function, globals at
            // module level), regardless of `global` declarations.
            let removed = match &mut frame.locals {
                FrameLocals::Module => frame.globals.borrow_mut().unset(n),
                FrameLocals::Slots(slots) => match frame.proto.slot_of(intern(n)) {
                    Some(i) => slots[i as usize].take().is_some(),
                    None => false,
                },
                FrameLocals::Dynamic(locals) => locals.borrow_mut().unset(n),
            };
            if removed {
                Ok(())
            } else {
                Err(PyExc::name_error(n))
            }
        }
        ExprKind::Subscript { value: obj, index } => {
            let o = eval(vm, frame, obj)?;
            let i = eval(vm, frame, index)?;
            match &o {
                Value::Dict(d) => {
                    d.borrow_mut()
                        .remove(&i)
                        .ok_or_else(|| PyExc::key_error(&i))?;
                    Ok(())
                }
                Value::List(l) => {
                    let idx = as_index(&i, l.borrow().len())?;
                    l.borrow_mut().remove(idx);
                    Ok(())
                }
                other => Err(PyExc::type_error(format!(
                    "'{}' object does not support item deletion",
                    other.type_name()
                ))),
            }
        }
        _ => Err(PyExc::new("SyntaxError", "cannot delete expression")),
    }
}

/// Evaluates an expression.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub fn eval(vm: &mut Vm, frame: &mut Frame, expr: &Expr) -> Result<Value, PyExc> {
    vm.tick()?;
    match &expr.kind {
        ExprKind::Num(Number::Int(v)) => Ok(Value::Int(*v)),
        ExprKind::Num(Number::Float(v)) => Ok(Value::Float(*v)),
        ExprKind::Str(s) => Ok(Value::str(s.clone())),
        ExprKind::Bool(b) => Ok(Value::Bool(*b)),
        ExprKind::NoneLit => Ok(Value::None),
        ExprKind::Name(n) => read_name(vm, frame, expr.id, n),
        ExprKind::Attribute { value, attr } => {
            let obj = eval(vm, frame, value)?;
            match frame.proto.table.res(expr.id) {
                NameRes::Attr(sym) => get_attr_sym(vm, &obj, sym),
                _ => get_attr(vm, &obj, attr),
            }
        }
        ExprKind::Subscript { value, index } => {
            let obj = eval(vm, frame, value)?;
            let idx = eval(vm, frame, index)?;
            get_item(&obj, &idx)
        }
        ExprKind::Slice { lower, upper, step } => {
            // Bare slice object (only meaningful inside subscripts; we
            // represent it as a tuple marker).
            let l = opt_eval(vm, frame, lower)?;
            let u = opt_eval(vm, frame, upper)?;
            let s = opt_eval(vm, frame, step)?;
            Ok(Value::Tuple(Rc::new(vec![
                Value::str("__slice__"),
                l,
                u,
                s,
            ])))
        }
        ExprKind::Call { func, args } => {
            let callee = eval(vm, frame, func)?;
            let mut pos = Vec::new();
            let mut kw = Vec::new();
            for a in args {
                match a {
                    Arg::Pos(e) => pos.push(eval(vm, frame, e)?),
                    Arg::Kw(n, e) => kw.push((n.clone(), eval(vm, frame, e)?)),
                    Arg::Star(e) => {
                        let v = eval(vm, frame, e)?;
                        pos.extend(iter_values(&v)?);
                    }
                    Arg::DoubleStar(e) => {
                        let v = eval(vm, frame, e)?;
                        match v {
                            Value::Dict(d) => {
                                for (k, val) in d.borrow().iter() {
                                    kw.push((k.to_display(), val.clone()));
                                }
                            }
                            other => {
                                return Err(PyExc::type_error(format!(
                                    "argument after ** must be a mapping, not {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                }
            }
            call_value(vm, callee, pos, kw)
        }
        ExprKind::Unary { op, operand } => {
            let v = eval(vm, frame, operand)?;
            unary_op(*op, v)
        }
        ExprKind::Binary { left, op, right } => {
            let l = eval(vm, frame, left)?;
            let r = eval(vm, frame, right)?;
            binary_op(vm, *op, l, r)
        }
        ExprKind::BoolOp { op, values } => {
            let mut last = Value::None;
            for (i, v) in values.iter().enumerate() {
                last = eval(vm, frame, v)?;
                let t = last.truthy();
                let short_circuit = match op {
                    BoolOpKind::And => !t,
                    BoolOpKind::Or => t,
                };
                if short_circuit && i < values.len() - 1 {
                    return Ok(last);
                }
                if short_circuit {
                    return Ok(last);
                }
            }
            Ok(last)
        }
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            let mut lhs = eval(vm, frame, left)?;
            for (op, comp) in ops.iter().zip(comparators) {
                let rhs = eval(vm, frame, comp)?;
                if !compare(vm, *op, &lhs, &rhs)? {
                    return Ok(Value::Bool(false));
                }
                lhs = rhs;
            }
            Ok(Value::Bool(true))
        }
        ExprKind::Lambda { params, body } => {
            let proto = match vm.proto(expr.id) {
                Some(p) => p,
                None => {
                    let (p, nested) = prepare::prepare_lambda(params, body);
                    vm.install_proto(expr.id, p.clone(), nested);
                    p
                }
            };
            finish_function(vm, frame, proto, params)
        }
        ExprKind::IfExp { test, body, orelse } => {
            if eval(vm, frame, test)?.truthy() {
                eval(vm, frame, body)
            } else {
                eval(vm, frame, orelse)
            }
        }
        ExprKind::Tuple(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(eval(vm, frame, i)?);
            }
            Ok(Value::Tuple(Rc::new(out)))
        }
        ExprKind::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(eval(vm, frame, i)?);
            }
            Ok(Value::list(out))
        }
        ExprKind::Dict(pairs) => {
            let mut d = DictObj::new();
            for (k, v) in pairs {
                let key = eval(vm, frame, k)?;
                let value = eval(vm, frame, v)?;
                d.set(key, value);
            }
            Ok(Value::Dict(Rc::new(RefCell::new(d))))
        }
        ExprKind::Set(items) => {
            let mut out: Vec<Value> = Vec::new();
            for i in items {
                let v = eval(vm, frame, i)?;
                if !out.iter().any(|x| values_eq(x, &v)) {
                    out.push(v);
                }
            }
            Ok(Value::Set(Rc::new(RefCell::new(out))))
        }
        ExprKind::ListComp {
            elt,
            target,
            iter,
            ifs,
        } => {
            let iterable = eval(vm, frame, iter)?;
            // Under the `Scoped` spec version the comprehension target
            // does not leak: snapshot its prior binding and restore it
            // afterwards. `Legacy` (the default) keeps the historical
            // leaking behavior so existing campaign reports are stable.
            let snapshot = if vm.spec_version() == crate::vm::SpecVersion::Scoped {
                comp_target_snapshot(frame, target)
            } else {
                None
            };
            let result = (|vm: &mut Vm, frame: &mut Frame| -> Result<Value, PyExc> {
                let mut out = Vec::new();
                'outer: for item in iter_values(&iterable)? {
                    assign_target(vm, frame, target, item)?;
                    for cond in ifs {
                        if !eval(vm, frame, cond)?.truthy() {
                            continue 'outer;
                        }
                    }
                    out.push(eval(vm, frame, elt)?);
                }
                Ok(Value::list(out))
            })(vm, frame);
            if let Some((sym, prev)) = snapshot {
                comp_target_restore(frame, sym, prev);
            }
            result
        }
        ExprKind::Starred(_) => Err(PyExc::new(
            "SyntaxError",
            "starred expression outside call/assignment",
        )),
    }
}

/// Applies a unary operator (shared by the tree walk and the bytecode
/// VM).
///
/// # Errors
///
/// `TypeError` when the operand does not support the operator.
pub(crate) fn unary_op(op: UnaryOp, v: Value) -> Result<Value, PyExc> {
    match op {
        UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Bool(b) => Ok(Value::Int(-(b as i64))),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary -: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Pos => match v {
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => Ok(v),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary +: '{}'",
                other.type_name()
            ))),
        },
        UnaryOp::Invert => match v {
            Value::Int(i) => Ok(Value::Int(!i)),
            Value::Bool(b) => Ok(Value::Int(!(b as i64))),
            other => Err(PyExc::type_error(format!(
                "bad operand type for unary ~: '{}'",
                other.type_name()
            ))),
        },
    }
}

fn opt_eval(
    vm: &mut Vm,
    frame: &mut Frame,
    e: &Option<Box<Expr>>,
) -> Result<Value, PyExc> {
    match e {
        Some(e) => eval(vm, frame, e),
        None => Ok(Value::None),
    }
}

/// Calls any callable value.
///
/// # Errors
///
/// `TypeError` for non-callables; propagates exceptions from the callee.
pub fn call_value(
    vm: &mut Vm,
    callee: Value,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    match callee {
        Value::Native(n) => (n.imp)(vm, args, kwargs),
        Value::Func(f) => call_function(vm, &f, args, kwargs),
        Value::BoundMethod(f, recv) => {
            let mut all = vec![*recv];
            all.extend(args);
            call_value(vm, *f, all, kwargs)
        }
        Value::Class(c) => {
            if c.is_exception {
                return instantiate_exception(vm, &c, args);
            }
            let inst = Rc::new(InstanceObj {
                class: c.clone(),
                attrs: RefCell::new(Vec::new()),
            });
            match c.lookup_sym(well_known::sym_init()) {
                Some(init @ (Value::Func(_) | Value::Native(_))) => {
                    let mut all = vec![Value::Instance(inst.clone())];
                    all.extend(args);
                    call_value(vm, init, all, kwargs)?;
                }
                _ => {
                    if !args.is_empty() || !kwargs.is_empty() {
                        return Err(PyExc::type_error(format!(
                            "{}() takes no arguments",
                            c.name
                        )));
                    }
                }
            }
            Ok(Value::Instance(inst))
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object is not callable",
            other.type_name()
        ))),
    }
}

/// Calls a user-defined function with bound arguments.
pub fn call_function(
    vm: &mut Vm,
    func: &Rc<FuncObj>,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    if vm.depth.get() >= MAX_DEPTH {
        return Err(PyExc::new(
            "RuntimeError",
            "maximum recursion depth exceeded",
        ));
    }
    let proto = func.proto.clone();
    let mut frame = Frame {
        globals: func.globals.clone(),
        locals: if proto.dynamic {
            FrameLocals::Dynamic(Scope::new_ref())
        } else {
            FrameLocals::Slots(vec![None; proto.slots.len()])
        },
        proto,
        captured: func.captured.clone(),
    };
    bind_params(func, args, kwargs, &mut frame.locals)?;
    vm.depth.set(vm.depth.get() + 1);
    let result = if vm.engine() == crate::vm::Engine::Bytecode {
        let code = crate::compile::func_code(vm, &func.proto);
        crate::bcvm::run(vm, &mut frame, code)
    } else {
        match exec_block(vm, &mut frame, &func.proto.body) {
            Ok(Flow::Return(v)) => Ok(v),
            Ok(_) => Ok(Value::None),
            Err(e) => Err(e),
        }
    };
    vm.depth.set(vm.depth.get() - 1);
    result.map_err(|e| e.with_frame(func.name()))
}

/// Executes a module-level scope body through the configured engine.
/// The bytecode compile is cached on the module's [`FuncProto`], except
/// for the shared `empty_module` prototype (used by eval-style entry
/// points whose body is not 1:1 with the prototype) which always tree
/// walks.
///
/// # Errors
///
/// Propagates any raised [`PyExc`].
pub(crate) fn exec_entry(vm: &mut Vm, frame: &mut Frame, body: &[Stmt]) -> Result<Flow, PyExc> {
    if vm.engine() == crate::vm::Engine::Bytecode
        && !Arc::ptr_eq(&frame.proto, &FuncProto::empty_module())
    {
        let proto = frame.proto.clone();
        let code = crate::compile::module_code(vm, &proto, body);
        return crate::bcvm::run(vm, frame, code).map(Flow::Return);
    }
    exec_block(vm, frame, body)
}

/// Snapshot of a simple-`Name` comprehension target's binding (for the
/// `Scoped` spec version). Returns `None` for non-name targets, which
/// keep legacy semantics.
fn comp_target_snapshot(frame: &Frame, target: &Expr) -> Option<(Symbol, Option<Value>)> {
    let ExprKind::Name(n) = &target.kind else {
        return None;
    };
    let sym = intern(n);
    let prev = if frame.proto.global_decls.contains(&sym) {
        frame.globals.borrow().get_sym(sym)
    } else {
        match &frame.locals {
            FrameLocals::Module => frame.globals.borrow().get_sym(sym),
            FrameLocals::Slots(slots) => frame
                .proto
                .slot_of(sym)
                .and_then(|i| slots[i as usize].clone()),
            FrameLocals::Dynamic(locals) => locals.borrow().get_sym(sym),
        }
    };
    Some((sym, prev))
}

/// Restores (or unsets) a comprehension target binding captured by
/// [`comp_target_snapshot`].
fn comp_target_restore(frame: &mut Frame, sym: Symbol, prev: Option<Value>) {
    match prev {
        Some(v) => write_sym(frame, sym, v),
        None => {
            if frame.proto.global_decls.contains(&sym) {
                frame.globals.borrow_mut().unset_sym(sym);
                return;
            }
            match &mut frame.locals {
                FrameLocals::Module => {
                    frame.globals.borrow_mut().unset_sym(sym);
                }
                FrameLocals::Slots(slots) => {
                    if let Some(i) = frame.proto.slot_of(sym) {
                        slots[i as usize] = None;
                    }
                }
                FrameLocals::Dynamic(locals) => {
                    locals.borrow_mut().unset_sym(sym);
                }
            }
        }
    }
}

fn bind_params(
    func: &FuncObj,
    mut args: Vec<Value>,
    mut kwargs: Vec<(String, Value)>,
    locals: &mut FrameLocals,
) -> Result<(), PyExc> {
    fn bind(locals: &mut FrameLocals, p: &crate::prepare::ProtoParam, v: Value) {
        match locals {
            FrameLocals::Slots(slots) => slots[p.slot as usize] = Some(v),
            FrameLocals::Dynamic(scope) => scope.borrow_mut().set_sym(p.sym, v),
            FrameLocals::Module => unreachable!("functions never bind module frames"),
        }
    }
    let params = &func.proto.params;
    let mut arg_iter = args.drain(..);
    for (i, p) in params.iter().enumerate() {
        match p.kind {
            ParamKind::Normal => {
                let p_name = p.sym.as_str();
                if let Some(v) = arg_iter.next() {
                    // Positional wins; a duplicate keyword is an error.
                    if kwargs.iter().any(|(n, _)| n == p_name) {
                        return Err(PyExc::type_error(format!(
                            "{}() got multiple values for argument '{}'",
                            func.name(),
                            p_name
                        )));
                    }
                    bind(locals, p, v);
                } else if let Some(pos) = kwargs.iter().position(|(n, _)| n == p_name) {
                    let (_, v) = kwargs.remove(pos);
                    bind(locals, p, v);
                } else if let Some(Some(d)) = func.defaults.get(i) {
                    bind(locals, p, d.clone());
                } else {
                    return Err(PyExc::type_error(format!(
                        "{}() missing required argument: '{}'",
                        func.name(),
                        p_name
                    )));
                }
            }
            ParamKind::Star => {
                let rest: Vec<Value> = arg_iter.by_ref().collect();
                bind(locals, p, Value::Tuple(Rc::new(rest)));
            }
            ParamKind::DoubleStar => {
                let mut d = DictObj::new();
                for (n, v) in kwargs.drain(..) {
                    d.set(Value::str(n), v);
                }
                bind(locals, p, Value::Dict(Rc::new(RefCell::new(d))));
            }
        }
    }
    let leftover: Vec<Value> = arg_iter.collect();
    if !leftover.is_empty() {
        return Err(PyExc::type_error(format!(
            "{}() takes {} positional arguments but more were given",
            func.name(),
            params.len()
        )));
    }
    if !kwargs.is_empty() {
        return Err(PyExc::type_error(format!(
            "{}() got an unexpected keyword argument '{}'",
            func.name(),
            kwargs[0].0
        )));
    }
    Ok(())
}

/// Attribute lookup with Python semantics (including the canonical
/// `AttributeError: 'NoneType' object has no attribute ...`).
///
/// Uses the non-inserting intern probe: a never-interned name cannot
/// key any symbol table, so `getattr` with runtime-generated strings
/// fails (or reaches the string-matched builtin methods) without
/// permanently growing the interner.
pub fn get_attr(vm: &Vm, obj: &Value, attr: &str) -> Result<Value, PyExc> {
    match crate::intern::try_intern(attr) {
        Some(sym) => get_attr_sym(vm, obj, sym),
        None => match obj {
            Value::Instance(i) => Err(PyExc::attribute_error(&i.class.name, attr)),
            Value::Class(c) => Err(PyExc::attribute_error(&c.name, attr)),
            Value::Module(m) => Err(PyExc::new(
                "AttributeError",
                format!("module '{}' has no attribute '{attr}'", m.name),
            )),
            other => {
                if let Some(v) = methods::builtin_method(vm, other, attr) {
                    Ok(v)
                } else {
                    Err(PyExc::attribute_error(other.type_name(), attr))
                }
            }
        },
    }
}

/// Symbol-keyed attribute lookup (the interpreter hot path; the symbol
/// comes from the prepare-time resolution table).
pub fn get_attr_sym(vm: &Vm, obj: &Value, sym: Symbol) -> Result<Value, PyExc> {
    match obj {
        Value::Instance(i) => {
            if let Some(v) = i.get_attr_sym(sym) {
                return Ok(v);
            }
            if let Some(v) = i.class.lookup_sym(sym) {
                return Ok(match v {
                    f @ (Value::Func(_) | Value::Native(_)) => {
                        Value::BoundMethod(Box::new(f), Box::new(obj.clone()))
                    }
                    other => other,
                });
            }
            Err(PyExc::attribute_error(&i.class.name, sym.as_str()))
        }
        Value::Class(c) => c
            .lookup_sym(sym)
            .ok_or_else(|| PyExc::attribute_error(&c.name, sym.as_str())),
        Value::Module(m) => m.get_sym(sym).ok_or_else(|| {
            PyExc::new(
                "AttributeError",
                format!("module '{}' has no attribute '{}'", m.name, sym.as_str()),
            )
        }),
        other => {
            if let Some(v) = methods::builtin_method(vm, other, sym.as_str()) {
                Ok(v)
            } else {
                Err(PyExc::attribute_error(other.type_name(), sym.as_str()))
            }
        }
    }
}

pub(crate) fn set_attr_sym(obj: &Value, sym: Symbol, value: Value) -> Result<(), PyExc> {
    match obj {
        Value::Instance(i) => {
            i.set_attr_sym(sym, value);
            Ok(())
        }
        Value::Class(c) => {
            let mut attrs = c.attrs.borrow_mut();
            if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
                slot.1 = value;
            } else {
                attrs.push((sym, value));
            }
            Ok(())
        }
        Value::Module(m) => {
            m.set_sym(sym, value);
            Ok(())
        }
        other => Err(PyExc::attribute_error(other.type_name(), sym.as_str())),
    }
}

fn as_index(v: &Value, len: usize) -> Result<usize, PyExc> {
    let i = match v {
        Value::Int(i) => *i,
        Value::Bool(b) => *b as i64,
        other => {
            return Err(PyExc::type_error(format!(
                "indices must be integers, not {}",
                other.type_name()
            )))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 || adjusted as usize >= len {
        Err(PyExc::index_error("sequence"))
    } else {
        Ok(adjusted as usize)
    }
}

fn slice_bounds(len: usize, lower: &Value, upper: &Value, step: &Value) -> Result<(usize, usize), PyExc> {
    if !matches!(step, Value::None) {
        if let Value::Int(s) = step {
            if *s != 1 {
                return Err(PyExc::value_error("only step 1 slices are supported"));
            }
        }
    }
    let clamp = |v: &Value, default: usize| -> usize {
        match v {
            Value::Int(i) => {
                let adj = if *i < 0 { *i + len as i64 } else { *i };
                adj.clamp(0, len as i64) as usize
            }
            _ => default,
        }
    };
    let lo = clamp(lower, 0);
    let hi = clamp(upper, len).max(lo);
    Ok((lo, hi))
}

/// `obj[index]`.
pub fn get_item(obj: &Value, index: &Value) -> Result<Value, PyExc> {
    // Slice marker?
    if let Value::Tuple(t) = index {
        if t.len() == 4 {
            if let Value::Str(tag) = &t[0] {
                if tag.as_str() == "__slice__" {
                    return get_slice(obj, &t[1], &t[2], &t[3]);
                }
            }
        }
    }
    match obj {
        Value::List(l) => {
            let list = l.borrow();
            let i = as_index(index, list.len()).map_err(|_| {
                if matches!(index, Value::Int(_) | Value::Bool(_)) {
                    PyExc::index_error("list")
                } else {
                    PyExc::type_error(format!(
                        "list indices must be integers, not {}",
                        index.type_name()
                    ))
                }
            })?;
            Ok(list[i].clone())
        }
        Value::Tuple(t) => {
            let i = as_index(index, t.len())?;
            Ok(t[i].clone())
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let i = as_index(index, chars.len())
                .map_err(|e| if e.class_name == "IndexError" { PyExc::index_error("string") } else { e })?;
            Ok(Value::str(chars[i].to_string()))
        }
        Value::Dict(d) => d
            .borrow()
            .get(index)
            .cloned()
            .ok_or_else(|| PyExc::key_error(index)),
        other => Err(PyExc::type_error(format!(
            "'{}' object is not subscriptable",
            other.type_name()
        ))),
    }
}

fn get_slice(obj: &Value, lower: &Value, upper: &Value, step: &Value) -> Result<Value, PyExc> {
    match obj {
        Value::List(l) => {
            let list = l.borrow();
            let (lo, hi) = slice_bounds(list.len(), lower, upper, step)?;
            Ok(Value::list(list[lo..hi].to_vec()))
        }
        Value::Str(s) => {
            let chars: Vec<char> = s.chars().collect();
            let (lo, hi) = slice_bounds(chars.len(), lower, upper, step)?;
            Ok(Value::str(chars[lo..hi].iter().collect::<String>()))
        }
        Value::Tuple(t) => {
            let (lo, hi) = slice_bounds(t.len(), lower, upper, step)?;
            Ok(Value::Tuple(Rc::new(t[lo..hi].to_vec())))
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object is not sliceable",
            other.type_name()
        ))),
    }
}

pub(crate) fn set_item(obj: &Value, index: Value, value: Value) -> Result<(), PyExc> {
    match obj {
        Value::List(l) => {
            let len = l.borrow().len();
            let i = as_index(&index, len)?;
            l.borrow_mut()[i] = value;
            Ok(())
        }
        Value::Dict(d) => {
            d.borrow_mut().set(index, value);
            Ok(())
        }
        other => Err(PyExc::type_error(format!(
            "'{}' object does not support item assignment",
            other.type_name()
        ))),
    }
}

/// Materializes an iterable into values (lists, tuples, dicts iterate
/// keys, strings iterate characters, sets iterate elements).
pub fn iter_values(v: &Value) -> Result<Vec<Value>, PyExc> {
    match v {
        Value::List(l) => Ok(l.borrow().clone()),
        Value::Tuple(t) => Ok(t.to_vec()),
        Value::Set(s) => Ok(s.borrow().clone()),
        Value::Dict(d) => Ok(d.borrow().iter().map(|(k, _)| k.clone()).collect()),
        Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
        other => Err(PyExc::type_error(format!(
            "'{}' object is not iterable",
            other.type_name()
        ))),
    }
}

/// Applies a binary operator.
pub fn binary_op(vm: &mut Vm, op: BinOp, l: Value, r: Value) -> Result<Value, PyExc> {
    use BinOp::*;
    let type_err = |l: &Value, r: &Value, sym: &str| {
        PyExc::type_error(format!(
            "unsupported operand type(s) for {sym}: '{}' and '{}'",
            l.type_name(),
            r.type_name()
        ))
    };
    // Promote bools to ints for arithmetic.
    let norm = |v: Value| match v {
        Value::Bool(b) => Value::Int(b as i64),
        other => other,
    };
    let (l, r) = (norm(l), norm(r));
    match (op, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (Add, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a + b)),
        (Add, Value::Int(a), Value::Float(b)) => Ok(Value::Float(*a as f64 + b)),
        (Add, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a + *b as f64)),
        (Add, Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
        (Add, Value::List(a), Value::List(b)) => {
            let mut out = a.borrow().clone();
            out.extend(b.borrow().iter().cloned());
            Ok(Value::list(out))
        }
        (Add, Value::Tuple(a), Value::Tuple(b)) => {
            let mut out = a.to_vec();
            out.extend(b.iter().cloned());
            Ok(Value::Tuple(Rc::new(out)))
        }
        (Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (Sub, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a - b)),
        (Sub, Value::Int(a), Value::Float(b)) => Ok(Value::Float(*a as f64 - b)),
        (Sub, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a - *b as f64)),
        (Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (Mul, Value::Float(a), Value::Float(b)) => Ok(Value::Float(a * b)),
        (Mul, Value::Int(a), Value::Float(b)) => Ok(Value::Float(*a as f64 * b)),
        (Mul, Value::Float(a), Value::Int(b)) => Ok(Value::Float(a * *b as f64)),
        (Mul, Value::Str(s), Value::Int(n)) | (Mul, Value::Int(n), Value::Str(s)) => {
            Ok(Value::str(s.repeat((*n).max(0) as usize)))
        }
        (Mul, Value::List(xs), Value::Int(n)) | (Mul, Value::Int(n), Value::List(xs)) => {
            let items = xs.borrow();
            let mut out = Vec::new();
            for _ in 0..(*n).max(0) {
                out.extend(items.iter().cloned());
            }
            Ok(Value::list(out))
        }
        (Div, _, _) => {
            let (a, b) = float_pair(&l, &r).ok_or_else(|| type_err(&l, &r, "/"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float(a / b))
            }
        }
        (FloorDiv, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Int(a.div_euclid(*b)))
            }
        }
        (FloorDiv, _, _) => {
            let (a, b) = float_pair(&l, &r).ok_or_else(|| type_err(&l, &r, "//"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float((a / b).floor()))
            }
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Int(a.rem_euclid(*b)))
            }
        }
        (Mod, Value::Str(fmt), _) => format_percent(vm, fmt, &r),
        (Mod, _, _) => {
            let (a, b) = float_pair(&l, &r).ok_or_else(|| type_err(&l, &r, "%"))?;
            if b == 0.0 {
                Err(PyExc::zero_division())
            } else {
                Ok(Value::Float(a.rem_euclid(b)))
            }
        }
        (Pow, Value::Int(a), Value::Int(b)) if *b >= 0 => {
            Ok(Value::Int(a.wrapping_pow((*b).min(u32::MAX as i64) as u32)))
        }
        (Pow, _, _) => {
            let (a, b) = float_pair(&l, &r).ok_or_else(|| type_err(&l, &r, "**"))?;
            Ok(Value::Float(a.powf(b)))
        }
        (BitAnd, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a & b)),
        (BitOr, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a | b)),
        (BitXor, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a ^ b)),
        (Shl, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_shl(*b as u32))),
        (Shr, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_shr(*b as u32))),
        (op, _, _) => Err(type_err(&l, &r, op.as_str())),
    }
}

fn float_pair(l: &Value, r: &Value) -> Option<(f64, f64)> {
    let f = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Bool(b) => Some(*b as i64 as f64),
        _ => None,
    };
    Some((f(l)?, f(r)?))
}

/// Minimal `%` string formatting: `%s`, `%d`, `%f`, `%r`, `%%`.
fn format_percent(_vm: &Vm, fmt: &str, args: &Value) -> Result<Value, PyExc> {
    let values: Vec<Value> = match args {
        Value::Tuple(t) => t.to_vec(),
        other => vec![other.clone()],
    };
    let mut out = String::new();
    let mut it = fmt.chars().peekable();
    let mut idx = 0;
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('%') => out.push('%'),
            Some(spec) => {
                let v = values.get(idx).ok_or_else(|| {
                    PyExc::type_error("not enough arguments for format string")
                })?;
                idx += 1;
                match spec {
                    's' => out.push_str(&v.to_display()),
                    'r' => out.push_str(&v.repr()),
                    'd' | 'i' => match v {
                        Value::Int(i) => out.push_str(&i.to_string()),
                        Value::Float(f) => out.push_str(&(*f as i64).to_string()),
                        Value::Bool(b) => out.push_str(&(*b as i64).to_string()),
                        other => {
                            return Err(PyExc::type_error(format!(
                                "%d format: a number is required, not {}",
                                other.type_name()
                            )))
                        }
                    },
                    'f' => match v {
                        Value::Int(i) => out.push_str(&format!("{:.6}", *i as f64)),
                        Value::Float(f) => out.push_str(&format!("{f:.6}")),
                        other => {
                            return Err(PyExc::type_error(format!(
                                "%f format: a number is required, not {}",
                                other.type_name()
                            )))
                        }
                    },
                    other => {
                        return Err(PyExc::value_error(format!(
                            "unsupported format character '{other}'"
                        )))
                    }
                }
            }
            None => return Err(PyExc::value_error("incomplete format")),
        }
    }
    if idx < values.len() {
        return Err(PyExc::type_error(
            "not all arguments converted during string formatting",
        ));
    }
    Ok(Value::str(out))
}

/// Applies a comparison operator.
pub fn compare(vm: &Vm, op: CmpOp, l: &Value, r: &Value) -> Result<bool, PyExc> {
    use CmpOp::*;
    match op {
        Eq => Ok(values_eq(l, r)),
        Ne => Ok(!values_eq(l, r)),
        Is => Ok(values_is(l, r)),
        IsNot => Ok(!values_is(l, r)),
        In | NotIn => {
            let found = membership(vm, l, r)?;
            Ok(if op == In { found } else { !found })
        }
        Lt | Le | Gt | Ge => {
            let ord = values_cmp(l, r).ok_or_else(|| {
                PyExc::type_error(format!(
                    "'<' not supported between instances of '{}' and '{}'",
                    l.type_name(),
                    r.type_name()
                ))
            })?;
            Ok(match op {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!("handled above"),
            })
        }
    }
}

fn membership(_vm: &Vm, needle: &Value, haystack: &Value) -> Result<bool, PyExc> {
    match haystack {
        Value::List(l) => Ok(l.borrow().iter().any(|v| values_eq(v, needle))),
        Value::Tuple(t) => Ok(t.iter().any(|v| values_eq(v, needle))),
        Value::Set(s) => Ok(s.borrow().iter().any(|v| values_eq(v, needle))),
        Value::Dict(d) => Ok(d.borrow().get(needle).is_some()),
        Value::Str(s) => match needle {
            Value::Str(sub) => Ok(s.contains(sub.as_str())),
            other => Err(PyExc::type_error(format!(
                "'in <string>' requires string as left operand, not {}",
                other.type_name()
            ))),
        },
        other => Err(PyExc::type_error(format!(
            "argument of type '{}' is not iterable",
            other.type_name()
        ))),
    }
}
