//! The flat, position-independent instruction set the bytecode tier
//! executes.
//!
//! A [`CodeObject`] is compiled once per scope (see [`crate::compile`])
//! and cached on the scope's [`FuncProto`], so every experiment of a
//! campaign that shares a prepared module also shares its bytecode.
//! The object is immutable and `Send + Sync`: operands are slot
//! indices, interned [`Symbol`]s, constant-pool indices, and absolute
//! jump targets — never `Rc` values — so one compile serves every VM
//! (and every fleet worker) that runs the module.
//!
//! Interpreter-step accounting is batched per straight-line run: the
//! compiler counts the `vm.tick()` calls the tree walk would have made
//! and emits one [`Insn::Tick`] *before* the next faultable or
//! effectful instruction, which keeps the fuel-exhaustion step, the
//! virtual clock, and every error/side-effect interleaving bit-for-bit
//! identical to the tree-walk oracle.
//!
//! Statements and expressions whose semantics are deep and cold
//! (`try`/`with`/`class`/imports/`del`, list comprehensions) compile to
//! [`Insn::ExecStmt`]/[`Insn::EvalExpr`] trampolines into the tree
//! walk over AST nodes cloned into the code object — one shared
//! implementation site, zero drift risk.

use crate::intern::Symbol;
use crate::prepare::FuncProto;
use crate::value::Value;
use pysrc::ast::{BinOp, CmpOp, Expr, Stmt, UnaryOp};
use std::sync::Arc;

/// A pooled constant. `Str` holds an `Arc<str>` (not a `Value`) so the
/// pool stays `Send + Sync`; loads materialize a fresh string value.
#[derive(Clone, Debug)]
pub enum Const {
    /// `None`.
    None,
    /// `True` / `False`.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(Arc<str>),
}

impl Const {
    /// Materializes the constant as a runtime value. String constants
    /// go through the heap's short-string interner, so repeated loads
    /// of the same literal share one handle.
    #[inline]
    pub fn value(&self, heap: &crate::value::Heap) -> Value {
        match self {
            Const::None => Value::None,
            Const::Bool(b) => Value::Bool(*b),
            Const::Int(i) => Value::Int(*i),
            Const::Float(f) => Value::Float(*f),
            Const::Str(s) => heap.new_str(s),
        }
    }
}

/// A nested `def`/`lambda` referenced by [`Insn::MakeFunction`]: the
/// prepared prototype plus which parameters have a compiled default on
/// the stack (in declaration order).
#[derive(Debug)]
pub struct FnDecl {
    /// Prototype of the nested scope (embedded at compile time, so the
    /// cached code object is VM-independent).
    pub proto: Arc<FuncProto>,
    /// `true` per parameter that has a default expression compiled
    /// before the `MakeFunction`.
    pub has_default: Vec<bool>,
}

/// Jump-target sentinel in [`Insn::ExecStmt`] meaning "no enclosing
/// loop": a `break`/`continue` flow escaping here returns `None` from
/// the frame, exactly like the tree walk's `Ok(_) => Value::None`.
pub const NO_LOOP: u32 = u32::MAX;

/// One bytecode instruction. Jump operands are absolute instruction
/// indices (patched from labels at the end of compilation).
#[derive(Clone, Copy, Debug)]
pub enum Insn {
    /// Settle `n` interpreter steps through [`crate::vm::Vm::tick`]
    /// (batched per straight-line run; see module docs).
    Tick(u32),
    /// Push constant-pool entry.
    Const(u32),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Read a slot-allocated local (`sym` names the diagnostic).
    LoadSlot {
        /// Slot index into the frame's dense local vector.
        slot: u32,
        /// Name, for `UnboundLocalError` and the non-slot fallback.
        sym: Symbol,
    },
    /// Write a slot-allocated local.
    StoreSlot {
        /// Slot index into the frame's dense local vector.
        slot: u32,
        /// Name, for the non-slot fallback.
        sym: Symbol,
    },
    /// Read a dynamic-scope local.
    LoadDyn(Symbol),
    /// Write a dynamic-scope local.
    StoreDyn(Symbol),
    /// Read a cell name: captured scopes innermost-first, then globals,
    /// then builtins.
    LoadCell(Symbol),
    /// Read a module-global (globals then builtins).
    LoadGlobal(Symbol),
    /// Write a module-global.
    StoreGlobal(Symbol),
    /// Dynamic read via the tree walk's fallback resolution order.
    LoadFallback(Symbol),
    /// Generic symbol write honoring `global` declarations and the
    /// frame kind (the tree walk's `write_sym`).
    StoreSym(Symbol),
    /// Pop an object, push its attribute.
    LoadAttr(Symbol),
    /// Pop object then the value beneath it; set the attribute.
    StoreAttr(Symbol),
    /// Pop index then object, push `obj[index]`.
    LoadItem,
    /// Pop index, object, value; execute `obj[index] = value`.
    StoreItem,
    /// Pop `n` values (pushed in order), build a tuple.
    BuildTuple(u32),
    /// Pop `n` values, build a list.
    BuildList(u32),
    /// Pop `n` values, build a set (dedup in insertion order).
    BuildSet(u32),
    /// Pop `n` key/value pairs, build a dict in insertion order.
    BuildDict(u32),
    /// Pop step, upper, lower; push the `__slice__` marker tuple.
    BuildSlice,
    /// Pop an iterable, check it has exactly `n` items, push them
    /// reversed (first target pops first).
    UnpackSeq(u32),
    /// Unary operator on the top of stack.
    Unary(UnaryOp),
    /// Pop right then left, apply a binary operator.
    Binary(BinOp),
    /// Pop right then left, push the comparison result.
    Cmp(CmpOp),
    /// Chained-comparison link: pop right then left; on failure push
    /// `False` and jump to `target`, on success push right (the next
    /// link's left operand).
    CmpJump {
        /// Comparison operator for this link.
        op: CmpOp,
        /// End of the whole chain.
        target: u32,
    },
    // ----- fused superinstructions -----
    //
    // Each fuses a `Tick(n)` with the op that immediately follows it
    // (tick first, then act — the order `flush()` + emit would have
    // produced), collapsing the hottest two-instruction pairs into one
    // dispatch. They carry no jump targets, so `patch()` ignores them.
    /// `Tick(n)` + [`Insn::LoadSlot`] (`n` ≥ 1: the name node ticks).
    TickLoadSlot {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Slot index into the frame's dense local vector.
        slot: u32,
        /// Name, for `UnboundLocalError` and the non-slot fallback.
        sym: Symbol,
    },
    /// `Tick(n)` + [`Insn::LoadGlobal`] (`n` ≥ 1: the name node ticks).
    TickLoadGlobal {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Module-global name.
        sym: Symbol,
    },
    /// `Tick(n)` + [`Insn::Binary`].
    TickBinary {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Binary operator.
        op: BinOp,
    },
    /// `Tick(n)` + [`Insn::Cmp`].
    TickCmp {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Comparison operator.
        op: CmpOp,
    },
    /// `Tick(n)` + [`Insn::Binary`] + [`Insn::StoreSlot`]: the
    /// augmented-assignment fast path for a slot-local target
    /// (`x += e`). `n` may be 0 when the operands flushed.
    TickBinaryStoreSlot {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Binary operator.
        op: BinOp,
        /// Slot index into the frame's dense local vector.
        slot: u32,
        /// Name, for the non-slot fallback.
        sym: Symbol,
    },
    /// `Tick(n)` + [`Insn::Binary`] + [`Insn::StoreGlobal`]: the
    /// augmented-assignment fast path for a module-global target.
    TickBinaryStoreGlobal {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Binary operator.
        op: BinOp,
        /// Module-global name.
        sym: Symbol,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Pop; jump when truthy.
    JumpIfTrue(u32),
    /// `and`: jump keeping the value when falsy, else pop.
    JumpIfFalseOrPop(u32),
    /// `or`: jump keeping the value when truthy, else pop.
    JumpIfTrueOrPop(u32),
    /// Pop an iterable, materialize its value snapshot onto the
    /// iterator stack.
    GetIter,
    /// Push the next iteration value, or pop the iterator and jump to
    /// the loop's `else` block when exhausted.
    ForNext(u32),
    /// Discard the top iterator (the `break` trampoline).
    PopIter,
    /// Pop the callee, open an argument builder.
    CallBegin,
    /// Pop a positional argument into the open builder.
    ArgPos,
    /// Pop a keyword argument into the open builder.
    ArgKw(Symbol),
    /// Pop an iterable, splat it into the positional arguments.
    ArgStar,
    /// Pop a mapping, splat it into the keyword arguments.
    ArgDoubleStar,
    /// Close the builder and call; push the result.
    CallEnd,
    /// Positional-only call fast path: pop `argc` arguments (pushed in
    /// order) then the callee beneath them; push the result. Replaces
    /// the `CallBegin`/`ArgPos`×n/`CallEnd` sequence when every
    /// argument is a plain positional.
    Call(u32),
    /// `Tick(n)` + [`Insn::Call`].
    TickCall {
        /// Pending interpreter steps to settle first.
        n: u32,
        /// Positional argument count.
        argc: u32,
    },
    /// Build a closure from `fn_decls[i]`, popping compiled defaults.
    MakeFunction(u32),
    /// `raise` (`has_exc`: pops the raised value) / bare re-raise.
    Raise {
        /// Whether an explicit exception value is on the stack.
        has_exc: bool,
    },
    /// Failed `assert` (`has_msg`: pops the message value).
    AssertFail {
        /// Whether a message value is on the stack.
        has_msg: bool,
    },
    /// Pop the return value and leave the frame.
    Return,
    /// Leave the frame returning `None`.
    ReturnNone,
    /// Tree-walk trampoline for one statement (`try`, `with`, `class`,
    /// imports, `del`, unsupported targets). `brk`/`cont` are the
    /// enclosing loop's jump targets for escaping `break`/`continue`
    /// flows ([`NO_LOOP`] when there is none).
    ExecStmt {
        /// Index into [`CodeObject::stmts`].
        stmt: u32,
        /// Jump target for an escaping `break`.
        brk: u32,
        /// Jump target for an escaping `continue`.
        cont: u32,
    },
    /// Tree-walk trampoline for one expression (list comprehensions,
    /// unresolved attributes); pushes the result.
    EvalExpr(u32),
}

/// The compiled form of one scope body.
#[derive(Debug, Default)]
pub struct CodeObject {
    /// Flat instruction stream.
    pub insns: Vec<Insn>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Statements executed through the tree-walk trampoline.
    pub stmts: Vec<Stmt>,
    /// Expressions evaluated through the tree-walk trampoline.
    pub exprs: Vec<Expr>,
    /// Nested function declarations for [`Insn::MakeFunction`].
    pub fn_decls: Vec<FnDecl>,
}
