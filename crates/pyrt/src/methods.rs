//! Built-in methods on primitive values (`str`, `list`, `dict`, ...).
//!
//! Each lookup returns a freshly created native closure capturing the
//! receiver, so `s.startswith` is a first-class value exactly like in
//! Python.

use crate::builtins::{int_of, native_value, string_of};
use crate::exc::PyExc;
use crate::interp::{call_value, iter_values};
use crate::value::*;
use crate::vm::Vm;
use std::rc::Rc;

/// Looks up a built-in method on a primitive receiver.
pub fn builtin_method(_vm: &Vm, recv: &Value, name: &str) -> Option<Value> {
    match recv {
        Value::Str(_) => str_method(recv.clone(), name),
        Value::List(_) => list_method(recv.clone(), name),
        Value::Dict(_) => dict_method(recv.clone(), name),
        Value::Set(_) => set_method(recv.clone(), name),
        Value::Tuple(_) => tuple_method(recv.clone(), name),
        _ => None,
    }
}

fn recv_str(recv: &Value) -> Rc<String> {
    match recv {
        Value::Str(s) => s.clone(),
        _ => unreachable!("receiver checked by caller"),
    }
}

fn str_method(recv: Value, name: &str) -> Option<Value> {
    let s = recv_str(&recv);
    let method: Value = match name {
        "startswith" => native_value("startswith", move |_vm, args, _| {
            let prefix = string_of(args.first().ok_or_else(|| miss("startswith"))?, "startswith")?;
            Ok(Value::Bool(s.starts_with(&prefix)))
        }),
        "endswith" => native_value("endswith", move |_vm, args, _| {
            let suffix = string_of(args.first().ok_or_else(|| miss("endswith"))?, "endswith")?;
            Ok(Value::Bool(s.ends_with(&suffix)))
        }),
        "split" => native_value("split", move |_vm, args, _| {
            let parts: Vec<Value> = match args.first() {
                Some(sep) => {
                    let sep = string_of(sep, "split")?;
                    s.split(sep.as_str()).map(Value::str).collect()
                }
                None => s.split_whitespace().map(Value::str).collect(),
            };
            Ok(Value::list(parts))
        }),
        "join" => native_value("join", move |_vm, args, _| {
            let items = iter_values(args.first().ok_or_else(|| miss("join"))?)?;
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::Str(p) => parts.push(p.to_string()),
                    other => {
                        return Err(PyExc::type_error(format!(
                            "sequence item: expected str instance, {} found",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(Value::str(parts.join(s.as_str())))
        }),
        "strip" => native_value("strip", move |_vm, _args, _| {
            Ok(Value::str(s.trim().to_string()))
        }),
        "lstrip" => native_value("lstrip", move |_vm, _args, _| {
            Ok(Value::str(s.trim_start().to_string()))
        }),
        "rstrip" => native_value("rstrip", move |_vm, _args, _| {
            Ok(Value::str(s.trim_end().to_string()))
        }),
        "replace" => native_value("replace", move |_vm, args, _| {
            if args.len() != 2 {
                return Err(miss("replace"));
            }
            let from = string_of(&args[0], "replace")?;
            let to = string_of(&args[1], "replace")?;
            Ok(Value::str(s.replace(&from, &to)))
        }),
        "lower" => native_value("lower", move |_vm, _args, _| {
            Ok(Value::str(s.to_lowercase()))
        }),
        "upper" => native_value("upper", move |_vm, _args, _| {
            Ok(Value::str(s.to_uppercase()))
        }),
        "find" => native_value("find", move |_vm, args, _| {
            let sub = string_of(args.first().ok_or_else(|| miss("find"))?, "find")?;
            Ok(Value::Int(match s.find(&sub) {
                Some(byte_idx) => s[..byte_idx].chars().count() as i64,
                None => -1,
            }))
        }),
        "format" => native_value("format", move |_vm, args, _| {
            // Positional `{}` placeholders only.
            let mut out = String::new();
            let mut idx = 0usize;
            let mut chars = s.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '{' && chars.peek() == Some(&'}') {
                    chars.next();
                    let v = args
                        .get(idx)
                        .ok_or_else(|| PyExc::new("IndexError", "format index out of range"))?;
                    out.push_str(&v.to_display());
                    idx += 1;
                } else {
                    out.push(c);
                }
            }
            Ok(Value::str(out))
        }),
        "encode" | "decode" => native_value(name, move |_vm, _args, _| {
            // Bytes are modeled as strings in this VM.
            Ok(Value::Str(s.clone()))
        }),
        "isdigit" => native_value("isdigit", move |_vm, _args, _| {
            Ok(Value::Bool(
                !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
            ))
        }),
        "isalpha" => native_value("isalpha", move |_vm, _args, _| {
            Ok(Value::Bool(!s.is_empty() && s.chars().all(char::is_alphabetic)))
        }),
        "count" => native_value("count", move |_vm, args, _| {
            let sub = string_of(args.first().ok_or_else(|| miss("count"))?, "count")?;
            if sub.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(&sub).count() as i64))
        }),
        "zfill" => native_value("zfill", move |_vm, args, _| {
            let width = int_of(args.first().ok_or_else(|| miss("zfill"))?, "zfill")? as usize;
            let mut out = s.to_string();
            while out.chars().count() < width {
                out.insert(0, '0');
            }
            Ok(Value::str(out))
        }),
        _ => return None,
    };
    Some(method)
}

fn recv_list(recv: &Value) -> Rc<std::cell::RefCell<Vec<Value>>> {
    match recv {
        Value::List(l) => l.clone(),
        _ => unreachable!("receiver checked by caller"),
    }
}

fn list_method(recv: Value, name: &str) -> Option<Value> {
    let l = recv_list(&recv);
    let method: Value = match name {
        "append" => native_value("append", move |_vm, mut args, _| {
            if args.len() != 1 {
                return Err(miss("append"));
            }
            l.borrow_mut().push(args.remove(0));
            Ok(Value::None)
        }),
        "extend" => native_value("extend", move |_vm, args, _| {
            let items = iter_values(args.first().ok_or_else(|| miss("extend"))?)?;
            l.borrow_mut().extend(items);
            Ok(Value::None)
        }),
        "insert" => native_value("insert", move |_vm, mut args, _| {
            if args.len() != 2 {
                return Err(miss("insert"));
            }
            let v = args.remove(1);
            let idx = int_of(&args[0], "insert")?;
            let mut list = l.borrow_mut();
            let len = list.len() as i64;
            let pos = if idx < 0 { (idx + len).max(0) } else { idx.min(len) };
            list.insert(pos as usize, v);
            Ok(Value::None)
        }),
        "pop" => native_value("pop", move |_vm, args, _| {
            let mut list = l.borrow_mut();
            if list.is_empty() {
                return Err(PyExc::index_error("pop from empty list"));
            }
            let idx = match args.first() {
                Some(v) => {
                    let i = int_of(v, "pop")?;
                    let len = list.len() as i64;
                    let adj = if i < 0 { i + len } else { i };
                    if adj < 0 || adj >= len {
                        return Err(PyExc::index_error("pop"));
                    }
                    adj as usize
                }
                None => list.len() - 1,
            };
            Ok(list.remove(idx))
        }),
        "remove" => native_value("remove", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("remove"))?;
            let mut list = l.borrow_mut();
            match list.iter().position(|v| values_eq(v, needle)) {
                Some(i) => {
                    list.remove(i);
                    Ok(Value::None)
                }
                None => Err(PyExc::value_error("list.remove(x): x not in list")),
            }
        }),
        "index" => native_value("index", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("index"))?;
            let list = l.borrow();
            list.iter()
                .position(|v| values_eq(v, needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| PyExc::value_error("x not in list"))
        }),
        "count" => native_value("count", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("count"))?;
            Ok(Value::Int(
                l.borrow().iter().filter(|v| values_eq(v, needle)).count() as i64,
            ))
        }),
        "reverse" => native_value("reverse", move |_vm, _args, _| {
            l.borrow_mut().reverse();
            Ok(Value::None)
        }),
        "sort" => native_value("sort", move |vm, _args, kwargs| {
            let sorted_fn = vm
                .builtins
                .borrow()
                .get("sorted")
                .expect("sorted is always installed");
            let out = call_value(vm, sorted_fn, vec![Value::List(l.clone())], kwargs)?;
            if let Value::List(new) = out {
                *l.borrow_mut() = new.borrow().clone();
            }
            Ok(Value::None)
        }),
        _ => return None,
    };
    Some(method)
}

fn recv_dict(recv: &Value) -> Rc<std::cell::RefCell<DictObj>> {
    match recv {
        Value::Dict(d) => d.clone(),
        _ => unreachable!("receiver checked by caller"),
    }
}

fn dict_method(recv: Value, name: &str) -> Option<Value> {
    let d = recv_dict(&recv);
    let method: Value = match name {
        "get" => native_value("get", move |_vm, args, _| {
            let key = args.first().ok_or_else(|| miss("get"))?;
            Ok(d.borrow()
                .get(key)
                .cloned()
                .unwrap_or_else(|| args.get(1).cloned().unwrap_or(Value::None)))
        }),
        "keys" => native_value("keys", move |_vm, _args, _| {
            Ok(Value::list(
                d.borrow().iter().map(|(k, _)| k.clone()).collect(),
            ))
        }),
        "values" => native_value("values", move |_vm, _args, _| {
            Ok(Value::list(
                d.borrow().iter().map(|(_, v)| v.clone()).collect(),
            ))
        }),
        "items" => native_value("items", move |_vm, _args, _| {
            Ok(Value::list(
                d.borrow()
                    .iter()
                    .map(|(k, v)| Value::Tuple(Rc::new(vec![k.clone(), v.clone()])))
                    .collect(),
            ))
        }),
        "pop" => native_value("pop", move |_vm, args, _| {
            let key = args.first().ok_or_else(|| miss("pop"))?;
            match d.borrow_mut().remove(key) {
                Some(v) => Ok(v),
                None => match args.get(1) {
                    Some(default) => Ok(default.clone()),
                    None => Err(PyExc::key_error(key)),
                },
            }
        }),
        "setdefault" => native_value("setdefault", move |_vm, args, _| {
            let key = args.first().ok_or_else(|| miss("setdefault"))?;
            let default = args.get(1).cloned().unwrap_or(Value::None);
            let mut dict = d.borrow_mut();
            if let Some(v) = dict.get(key) {
                return Ok(v.clone());
            }
            dict.set(key.clone(), default.clone());
            Ok(default)
        }),
        "update" => native_value("update", move |_vm, args, kwargs| {
            if let Some(Value::Dict(src)) = args.first() {
                let src = src.borrow();
                let mut dst = d.borrow_mut();
                for (k, v) in src.iter() {
                    dst.set(k.clone(), v.clone());
                }
            }
            let mut dst = d.borrow_mut();
            for (k, v) in kwargs {
                dst.set(Value::str(k), v);
            }
            Ok(Value::None)
        }),
        "clear" => native_value("clear", move |_vm, _args, _| {
            *d.borrow_mut() = DictObj::new();
            Ok(Value::None)
        }),
        "copy" => native_value("copy", move |_vm, _args, _| {
            let mut out = DictObj::new();
            for (k, v) in d.borrow().iter() {
                out.set(k.clone(), v.clone());
            }
            Ok(Value::Dict(Rc::new(std::cell::RefCell::new(out))))
        }),
        _ => return None,
    };
    Some(method)
}

fn set_method(recv: Value, name: &str) -> Option<Value> {
    let s = match &recv {
        Value::Set(s) => s.clone(),
        _ => unreachable!("receiver checked by caller"),
    };
    let method: Value = match name {
        "add" => native_value("add", move |_vm, mut args, _| {
            if args.len() != 1 {
                return Err(miss("add"));
            }
            let v = args.remove(0);
            let mut set = s.borrow_mut();
            if !set.iter().any(|x| values_eq(x, &v)) {
                set.push(v);
            }
            Ok(Value::None)
        }),
        "discard" => native_value("discard", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("discard"))?;
            s.borrow_mut().retain(|x| !values_eq(x, needle));
            Ok(Value::None)
        }),
        _ => return None,
    };
    Some(method)
}

fn tuple_method(recv: Value, name: &str) -> Option<Value> {
    let t = match &recv {
        Value::Tuple(t) => t.clone(),
        _ => unreachable!("receiver checked by caller"),
    };
    let method: Value = match name {
        "count" => native_value("count", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("count"))?;
            Ok(Value::Int(
                t.iter().filter(|v| values_eq(v, needle)).count() as i64
            ))
        }),
        "index" => native_value("index", move |_vm, args, _| {
            let needle = args.first().ok_or_else(|| miss("index"))?;
            t.iter()
                .position(|v| values_eq(v, needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| PyExc::value_error("tuple.index(x): x not in tuple"))
        }),
        _ => return None,
    };
    Some(method)
}

fn miss(name: &str) -> PyExc {
    PyExc::type_error(format!("{name}(): wrong number of arguments"))
}
