//! Built-in methods on primitive values (`str`, `list`, `dict`, ...).
//!
//! A method fetch allocates one [`NativeObj::Method`] slab slot pairing
//! a [`MethodKind`] with the receiver — a first-class value exactly
//! like in Python (each fetch is a distinct object), but with no
//! per-fetch closure allocation. Calls dispatch on the kind here.

use crate::builtins::{int_of, string_of};
use crate::exc::PyExc;
use crate::interp::{call_value, iter_values};
use crate::value::*;
use crate::vm::Vm;

/// Identifies one built-in method on one receiver type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MethodKind {
    StrStartswith,
    StrEndswith,
    StrSplit,
    StrJoin,
    StrStrip,
    StrLstrip,
    StrRstrip,
    StrReplace,
    StrLower,
    StrUpper,
    StrFind,
    StrFormat,
    StrEncode,
    StrDecode,
    StrIsdigit,
    StrIsalpha,
    StrCount,
    StrZfill,
    ListAppend,
    ListExtend,
    ListInsert,
    ListPop,
    ListRemove,
    ListIndex,
    ListCount,
    ListReverse,
    ListSort,
    DictGet,
    DictKeys,
    DictValues,
    DictItems,
    DictPop,
    DictSetdefault,
    DictUpdate,
    DictClear,
    DictCopy,
    SetAdd,
    SetDiscard,
    TupleCount,
    TupleIndex,
}

impl MethodKind {
    /// Python-visible method name (for error messages and reprs).
    pub fn name(self) -> &'static str {
        use MethodKind::*;
        match self {
            StrStartswith => "startswith",
            StrEndswith => "endswith",
            StrSplit => "split",
            StrJoin => "join",
            StrStrip => "strip",
            StrLstrip => "lstrip",
            StrRstrip => "rstrip",
            StrReplace => "replace",
            StrLower => "lower",
            StrUpper => "upper",
            StrFind => "find",
            StrFormat => "format",
            StrEncode => "encode",
            StrDecode => "decode",
            StrIsdigit => "isdigit",
            StrIsalpha => "isalpha",
            StrCount | ListCount | TupleCount => "count",
            StrZfill => "zfill",
            ListAppend => "append",
            ListExtend => "extend",
            ListInsert => "insert",
            ListPop | DictPop => "pop",
            ListRemove => "remove",
            ListIndex | TupleIndex => "index",
            ListReverse => "reverse",
            ListSort => "sort",
            DictGet => "get",
            DictKeys => "keys",
            DictValues => "values",
            DictItems => "items",
            DictSetdefault => "setdefault",
            DictUpdate => "update",
            DictClear => "clear",
            DictCopy => "copy",
            SetAdd => "add",
            SetDiscard => "discard",
        }
    }
}

/// Looks up a built-in method on a primitive receiver.
pub fn builtin_method(vm: &Vm, recv: Value, name: &str) -> Option<Value> {
    use MethodKind::*;
    let kind = match recv {
        Value::Str(_) => match name {
            "startswith" => StrStartswith,
            "endswith" => StrEndswith,
            "split" => StrSplit,
            "join" => StrJoin,
            "strip" => StrStrip,
            "lstrip" => StrLstrip,
            "rstrip" => StrRstrip,
            "replace" => StrReplace,
            "lower" => StrLower,
            "upper" => StrUpper,
            "find" => StrFind,
            "format" => StrFormat,
            "encode" => StrEncode,
            "decode" => StrDecode,
            "isdigit" => StrIsdigit,
            "isalpha" => StrIsalpha,
            "count" => StrCount,
            "zfill" => StrZfill,
            _ => return None,
        },
        Value::List(_) => match name {
            "append" => ListAppend,
            "extend" => ListExtend,
            "insert" => ListInsert,
            "pop" => ListPop,
            "remove" => ListRemove,
            "index" => ListIndex,
            "count" => ListCount,
            "reverse" => ListReverse,
            "sort" => ListSort,
            _ => return None,
        },
        Value::Dict(_) => match name {
            "get" => DictGet,
            "keys" => DictKeys,
            "values" => DictValues,
            "items" => DictItems,
            "pop" => DictPop,
            "setdefault" => DictSetdefault,
            "update" => DictUpdate,
            "clear" => DictClear,
            "copy" => DictCopy,
            _ => return None,
        },
        Value::Set(_) => match name {
            "add" => SetAdd,
            "discard" => SetDiscard,
            _ => return None,
        },
        Value::Tuple(_) => match name {
            "count" => TupleCount,
            "index" => TupleIndex,
            _ => return None,
        },
        _ => return None,
    };
    Some(vm.heap.new_method(kind, recv))
}

/// Invokes a built-in method (the call side of [`builtin_method`]).
pub fn call_method(
    vm: &mut Vm,
    kind: MethodKind,
    recv: Value,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    use MethodKind::*;
    match (kind, recv) {
        (
            StrStartswith | StrEndswith | StrSplit | StrJoin | StrStrip | StrLstrip | StrRstrip
            | StrReplace | StrLower | StrUpper | StrFind | StrFormat | StrEncode | StrDecode
            | StrIsdigit | StrIsalpha | StrCount | StrZfill,
            Value::Str(s),
        ) => str_method(&vm.heap, kind, s, recv, args),
        (ListSort, Value::List(l)) => {
            let sorted_fn = vm
                .builtins
                .borrow()
                .get("sorted")
                .expect("sorted is always installed");
            let out = call_value(vm, sorted_fn, vec![recv], kwargs)?;
            if let Value::List(new) = out {
                let items = vm.heap.list(new).borrow().clone();
                *vm.heap.list(l).borrow_mut() = items;
            }
            Ok(Value::None)
        }
        (
            ListAppend | ListExtend | ListInsert | ListPop | ListRemove | ListIndex | ListCount
            | ListReverse,
            Value::List(l),
        ) => list_method(&vm.heap, kind, l, args),
        (
            DictGet | DictKeys | DictValues | DictItems | DictPop | DictSetdefault | DictUpdate
            | DictClear | DictCopy,
            Value::Dict(d),
        ) => dict_method(&vm.heap, kind, d, args, kwargs),
        (SetAdd | SetDiscard, Value::Set(s)) => set_method(&vm.heap, kind, s, args),
        (TupleCount | TupleIndex, Value::Tuple(t)) => tuple_method(&vm.heap, kind, t, args),
        _ => unreachable!("method kind/receiver pairing checked at fetch"),
    }
}

fn str_method(
    heap: &Heap,
    kind: MethodKind,
    sid: u32,
    recv: Value,
    args: Vec<Value>,
) -> Result<Value, PyExc> {
    use MethodKind::*;
    let s = heap.str(sid);
    match kind {
        StrStartswith => {
            let prefix = string_of(heap, args.first().ok_or_else(|| miss("startswith"))?, "startswith")?;
            Ok(Value::Bool(s.starts_with(&prefix)))
        }
        StrEndswith => {
            let suffix = string_of(heap, args.first().ok_or_else(|| miss("endswith"))?, "endswith")?;
            Ok(Value::Bool(s.ends_with(&suffix)))
        }
        StrSplit => {
            let parts: Vec<Value> = match args.first() {
                Some(sep) => {
                    let sep = string_of(heap, sep, "split")?;
                    s.split(sep.as_str()).map(|p| heap.new_str(p)).collect()
                }
                None => s.split_whitespace().map(|p| heap.new_str(p)).collect(),
            };
            Ok(heap.new_list(parts))
        }
        StrJoin => {
            let items = iter_values(heap, *args.first().ok_or_else(|| miss("join"))?)?;
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::Str(p) => parts.push(heap.str(p).to_string()),
                    other => {
                        return Err(PyExc::type_error(format!(
                            "sequence item: expected str instance, {} found",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(heap.new_string(parts.join(s)))
        }
        StrStrip => Ok(heap.new_str(s.trim())),
        StrLstrip => Ok(heap.new_str(s.trim_start())),
        StrRstrip => Ok(heap.new_str(s.trim_end())),
        StrReplace => {
            if args.len() != 2 {
                return Err(miss("replace"));
            }
            let from = string_of(heap, &args[0], "replace")?;
            let to = string_of(heap, &args[1], "replace")?;
            Ok(heap.new_string(s.replace(&from, &to)))
        }
        StrLower => Ok(heap.new_string(s.to_lowercase())),
        StrUpper => Ok(heap.new_string(s.to_uppercase())),
        StrFind => {
            let sub = string_of(heap, args.first().ok_or_else(|| miss("find"))?, "find")?;
            Ok(Value::Int(match s.find(&sub) {
                Some(byte_idx) => s[..byte_idx].chars().count() as i64,
                None => -1,
            }))
        }
        StrFormat => {
            // Positional `{}` placeholders only.
            let mut out = String::new();
            let mut idx = 0usize;
            let mut chars = s.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '{' && chars.peek() == Some(&'}') {
                    chars.next();
                    let v = args
                        .get(idx)
                        .ok_or_else(|| PyExc::new("IndexError", "format index out of range"))?;
                    out.push_str(&v.to_display(heap));
                    idx += 1;
                } else {
                    out.push(c);
                }
            }
            Ok(heap.new_string(out))
        }
        // Bytes are modeled as strings in this VM.
        StrEncode | StrDecode => Ok(recv),
        StrIsdigit => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        StrIsalpha => Ok(Value::Bool(!s.is_empty() && s.chars().all(char::is_alphabetic))),
        StrCount => {
            let sub = string_of(heap, args.first().ok_or_else(|| miss("count"))?, "count")?;
            if sub.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(&sub).count() as i64))
        }
        StrZfill => {
            // Negative widths clamp to 0 (a plain `as usize` would wrap
            // to a huge width and loop effectively forever).
            let width = int_of(args.first().ok_or_else(|| miss("zfill"))?, "zfill")?.max(0) as usize;
            let mut out = s.to_string();
            while out.chars().count() < width {
                out.insert(0, '0');
            }
            Ok(heap.new_string(out))
        }
        _ => unreachable!("str kind dispatched by caller"),
    }
}

fn list_method(heap: &Heap, kind: MethodKind, lid: u32, mut args: Vec<Value>) -> Result<Value, PyExc> {
    use MethodKind::*;
    let l = heap.list(lid);
    match kind {
        ListAppend => {
            if args.len() != 1 {
                return Err(miss("append"));
            }
            l.borrow_mut().push(args.remove(0));
            Ok(Value::None)
        }
        ListExtend => {
            let items = iter_values(heap, *args.first().ok_or_else(|| miss("extend"))?)?;
            l.borrow_mut().extend(items);
            Ok(Value::None)
        }
        ListInsert => {
            if args.len() != 2 {
                return Err(miss("insert"));
            }
            let v = args.remove(1);
            let idx = int_of(&args[0], "insert")?;
            let mut list = l.borrow_mut();
            let len = list.len() as i64;
            let pos = if idx < 0 { (idx + len).max(0) } else { idx.min(len) };
            list.insert(pos as usize, v);
            Ok(Value::None)
        }
        ListPop => {
            let mut list = l.borrow_mut();
            if list.is_empty() {
                return Err(PyExc::index_error("pop from empty list"));
            }
            let idx = match args.first() {
                Some(v) => {
                    let i = int_of(v, "pop")?;
                    let len = list.len() as i64;
                    let adj = if i < 0 { i + len } else { i };
                    if adj < 0 || adj >= len {
                        return Err(PyExc::index_error("pop"));
                    }
                    adj as usize
                }
                None => list.len() - 1,
            };
            Ok(list.remove(idx))
        }
        ListRemove => {
            let needle = *args.first().ok_or_else(|| miss("remove"))?;
            let mut list = l.borrow_mut();
            match list.iter().position(|&v| values_eq(heap, v, needle)) {
                Some(i) => {
                    list.remove(i);
                    Ok(Value::None)
                }
                None => Err(PyExc::value_error("list.remove(x): x not in list")),
            }
        }
        ListIndex => {
            let needle = *args.first().ok_or_else(|| miss("index"))?;
            let list = l.borrow();
            list.iter()
                .position(|&v| values_eq(heap, v, needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| PyExc::value_error("x not in list"))
        }
        ListCount => {
            let needle = *args.first().ok_or_else(|| miss("count"))?;
            Ok(Value::Int(
                l.borrow().iter().filter(|&&v| values_eq(heap, v, needle)).count() as i64,
            ))
        }
        ListReverse => {
            l.borrow_mut().reverse();
            Ok(Value::None)
        }
        _ => unreachable!("list kind dispatched by caller"),
    }
}

fn dict_method(
    heap: &Heap,
    kind: MethodKind,
    did: u32,
    args: Vec<Value>,
    kwargs: Vec<(String, Value)>,
) -> Result<Value, PyExc> {
    use MethodKind::*;
    let d = heap.dict(did);
    match kind {
        DictGet => {
            let key = *args.first().ok_or_else(|| miss("get"))?;
            Ok(d.borrow()
                .get(heap, key)
                .unwrap_or_else(|| args.get(1).copied().unwrap_or(Value::None)))
        }
        DictKeys => Ok(heap.new_list(d.borrow().iter().map(|&(k, _)| k).collect())),
        DictValues => Ok(heap.new_list(d.borrow().iter().map(|&(_, v)| v).collect())),
        DictItems => {
            let pairs: Vec<(Value, Value)> = d.borrow().iter().copied().collect();
            Ok(heap.new_list(
                pairs
                    .into_iter()
                    .map(|(k, v)| heap.new_tuple(vec![k, v]))
                    .collect(),
            ))
        }
        DictPop => {
            let key = *args.first().ok_or_else(|| miss("pop"))?;
            match d.borrow_mut().remove(heap, key) {
                Some(v) => Ok(v),
                None => match args.get(1) {
                    Some(&default) => Ok(default),
                    None => Err(PyExc::key_error(heap, key)),
                },
            }
        }
        DictSetdefault => {
            let key = *args.first().ok_or_else(|| miss("setdefault"))?;
            let default = args.get(1).copied().unwrap_or(Value::None);
            let mut dict = d.borrow_mut();
            if let Some(v) = dict.get(heap, key) {
                return Ok(v);
            }
            dict.set(heap, key, default);
            Ok(default)
        }
        DictUpdate => {
            if let Some(&Value::Dict(src)) = args.first() {
                let pairs: Vec<(Value, Value)> = heap.dict(src).borrow().iter().copied().collect();
                let mut dst = d.borrow_mut();
                for (k, v) in pairs {
                    dst.set(heap, k, v);
                }
            }
            let mut dst = d.borrow_mut();
            for (k, v) in kwargs {
                let key = heap.new_string(k);
                dst.set(heap, key, v);
            }
            Ok(Value::None)
        }
        DictClear => {
            *d.borrow_mut() = DictObj::new();
            Ok(Value::None)
        }
        DictCopy => {
            let pairs: Vec<(Value, Value)> = d.borrow().iter().copied().collect();
            Ok(heap.new_dict_from(pairs))
        }
        _ => unreachable!("dict kind dispatched by caller"),
    }
}

fn set_method(heap: &Heap, kind: MethodKind, sid: u32, mut args: Vec<Value>) -> Result<Value, PyExc> {
    use MethodKind::*;
    let s = heap.set(sid);
    match kind {
        SetAdd => {
            if args.len() != 1 {
                return Err(miss("add"));
            }
            let v = args.remove(0);
            let mut set = s.borrow_mut();
            if !set.iter().any(|&x| values_eq(heap, x, v)) {
                set.push(v);
            }
            Ok(Value::None)
        }
        SetDiscard => {
            let needle = *args.first().ok_or_else(|| miss("discard"))?;
            s.borrow_mut().retain(|&x| !values_eq(heap, x, needle));
            Ok(Value::None)
        }
        _ => unreachable!("set kind dispatched by caller"),
    }
}

fn tuple_method(heap: &Heap, kind: MethodKind, tid: u32, args: Vec<Value>) -> Result<Value, PyExc> {
    use MethodKind::*;
    let t = heap.tuple(tid);
    match kind {
        TupleCount => {
            let needle = *args.first().ok_or_else(|| miss("count"))?;
            Ok(Value::Int(
                t.iter().filter(|&&v| values_eq(heap, v, needle)).count() as i64,
            ))
        }
        TupleIndex => {
            let needle = *args.first().ok_or_else(|| miss("index"))?;
            t.iter()
                .position(|&v| values_eq(heap, v, needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| PyExc::value_error("tuple.index(x): x not in tuple"))
        }
        _ => unreachable!("tuple kind dispatched by caller"),
    }
}

fn miss(name: &str) -> PyExc {
    PyExc::type_error(format!("{name}(): wrong number of arguments"))
}
