//! Built-in functions installed into every VM.

use crate::exc::PyExc;
use crate::interp::{call_value, iter_values};
use crate::value::*;
use crate::vm::Vm;
use std::rc::Rc;

/// Registers a native function into a scope.
pub fn native(
    heap: &Heap,
    scope: &ScopeRef,
    name: &str,
    imp: impl Fn(&mut Vm, Vec<Value>, Vec<(String, Value)>) -> Result<Value, PyExc> + 'static,
) {
    let v = heap.new_native(name, Rc::new(imp));
    scope.borrow_mut().set(name, v);
}

/// Creates a standalone native function value.
pub fn native_value(
    heap: &Heap,
    name: &str,
    imp: impl Fn(&mut Vm, Vec<Value>, Vec<(String, Value)>) -> Result<Value, PyExc> + 'static,
) -> Value {
    heap.new_native(name, Rc::new(imp))
}

fn arity_error(name: &str, expected: &str, got: usize) -> PyExc {
    PyExc::type_error(format!("{name}() takes {expected} arguments ({got} given)"))
}

fn one_arg(name: &'static str, mut args: Vec<Value>) -> Result<Value, PyExc> {
    if args.len() != 1 {
        return Err(arity_error(name, "exactly 1", args.len()));
    }
    Ok(args.remove(0))
}

/// Installs the builtin namespace into a freshly created VM.
pub fn install(vm: &Vm) {
    let b = &vm.builtins;
    let heap = &vm.heap;

    native(heap, b, "print", |vm, args, kwargs| {
        let sep = kwargs
            .iter()
            .find(|(n, _)| n == "sep")
            .map(|(_, v)| v.to_display(&vm.heap))
            .unwrap_or_else(|| " ".to_string());
        let end = kwargs
            .iter()
            .find(|(n, _)| n == "end")
            .map(|(_, v)| v.to_display(&vm.heap))
            .unwrap_or_else(|| "\n".to_string());
        let line: Vec<String> = args.iter().map(|v| v.to_display(&vm.heap)).collect();
        vm.write_stdout(&(line.join(&sep) + &end));
        Ok(Value::None)
    });

    native(heap, b, "len", |vm, args, _| {
        let v = one_arg("len", args)?;
        let n = match v {
            Value::Str(s) => vm.heap.str(s).chars().count(),
            Value::List(l) => vm.heap.list(l).borrow().len(),
            Value::Tuple(t) => vm.heap.tuple(t).len(),
            Value::Dict(d) => vm.heap.dict(d).borrow().len(),
            Value::Set(s) => vm.heap.set(s).borrow().len(),
            other => {
                return Err(PyExc::type_error(format!(
                    "object of type '{}' has no len()",
                    other.type_name()
                )))
            }
        };
        Ok(Value::Int(n as i64))
    });

    native(heap, b, "range", |vm, args, _| {
        let (start, stop, step) = match args.len() {
            1 => (0, int_of(&args[0], "range")?, 1),
            2 => (int_of(&args[0], "range")?, int_of(&args[1], "range")?, 1),
            3 => (
                int_of(&args[0], "range")?,
                int_of(&args[1], "range")?,
                int_of(&args[2], "range")?,
            ),
            n => return Err(arity_error("range", "1 to 3", n)),
        };
        if step == 0 {
            return Err(PyExc::value_error("range() arg 3 must not be zero"));
        }
        // Materialized range; corpus ranges are small, and huge ranges
        // are bounded by the VM fuel anyway.
        const MAX_RANGE: i64 = 4_000_000;
        let mut out = Vec::new();
        let mut i = start;
        while (step > 0 && i < stop) || (step < 0 && i > stop) {
            out.push(Value::Int(i));
            if out.len() as i64 > MAX_RANGE {
                return Err(PyExc::value_error("range too large for this VM"));
            }
            i += step;
        }
        Ok(vm.heap.new_list(out))
    });

    native(heap, b, "str", |vm, args, _| {
        if args.is_empty() {
            return Ok(vm.heap.new_str(""));
        }
        let s = one_arg("str", args)?.to_display(&vm.heap);
        Ok(vm.heap.new_string(s))
    });

    native(heap, b, "repr", |vm, args, _| {
        let s = one_arg("repr", args)?.repr(&vm.heap);
        Ok(vm.heap.new_string(s))
    });

    native(heap, b, "int", |vm, args, _| {
        if args.is_empty() {
            return Ok(Value::Int(0));
        }
        let v = one_arg("int", args)?;
        match v {
            Value::Int(_) => Ok(v),
            Value::Bool(x) => Ok(Value::Int(x as i64)),
            Value::Float(f) => Ok(Value::Int(f as i64)),
            Value::Str(s) => {
                let text = vm.heap.str(s);
                text.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                    PyExc::value_error(format!(
                        "invalid literal for int() with base 10: '{text}'"
                    ))
                })
            }
            other => Err(PyExc::type_error(format!(
                "int() argument must be a string or a number, not '{}'",
                other.type_name()
            ))),
        }
    });

    native(heap, b, "float", |vm, args, _| {
        let v = one_arg("float", args)?;
        match v {
            Value::Float(_) => Ok(v),
            Value::Int(i) => Ok(Value::Float(i as f64)),
            Value::Bool(x) => Ok(Value::Float(x as i64 as f64)),
            Value::Str(s) => {
                let text = vm.heap.str(s);
                text.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                    PyExc::value_error(format!("could not convert string to float: '{text}'"))
                })
            }
            other => Err(PyExc::type_error(format!(
                "float() argument must be a string or a number, not '{}'",
                other.type_name()
            ))),
        }
    });

    native(heap, b, "bool", |vm, args, _| {
        if args.is_empty() {
            return Ok(Value::Bool(false));
        }
        Ok(Value::Bool(one_arg("bool", args)?.truthy(&vm.heap)))
    });

    native(heap, b, "list", |vm, args, _| {
        if args.is_empty() {
            return Ok(vm.heap.new_list(vec![]));
        }
        let items = iter_values(&vm.heap, one_arg("list", args)?)?;
        Ok(vm.heap.new_list(items))
    });

    native(heap, b, "tuple", |vm, args, _| {
        if args.is_empty() {
            return Ok(vm.heap.new_tuple(vec![]));
        }
        let items = iter_values(&vm.heap, one_arg("tuple", args)?)?;
        Ok(vm.heap.new_tuple(items))
    });

    native(heap, b, "dict", |vm, args, kwargs| {
        let mut d = DictObj::new();
        if let Some(&v) = args.first() {
            match v {
                Value::Dict(src) => {
                    let pairs: Vec<(Value, Value)> =
                        vm.heap.dict(src).borrow().iter().copied().collect();
                    for (k, val) in pairs {
                        d.set(&vm.heap, k, val);
                    }
                }
                other => {
                    for pair in iter_values(&vm.heap, other)? {
                        let items = iter_values(&vm.heap, pair)?;
                        if items.len() != 2 {
                            return Err(PyExc::value_error(
                                "dictionary update sequence element is not a pair",
                            ));
                        }
                        d.set(&vm.heap, items[0], items[1]);
                    }
                }
            }
        }
        for (k, v) in kwargs {
            let key = vm.heap.new_string(k);
            d.set(&vm.heap, key, v);
        }
        Ok(vm.heap.new_dict(d))
    });

    native(heap, b, "set", |vm, args, _| {
        let mut out: Vec<Value> = Vec::new();
        if let Some(&v) = args.first() {
            for item in iter_values(&vm.heap, v)? {
                if !out.iter().any(|&x| values_eq(&vm.heap, x, item)) {
                    out.push(item);
                }
            }
        }
        Ok(vm.heap.new_set(out))
    });

    native(heap, b, "isinstance", |vm, args, _| {
        if args.len() != 2 {
            return Err(arity_error("isinstance", "exactly 2", args.len()));
        }
        fn check(heap: &Heap, v: Value, ty: Value) -> Result<bool, PyExc> {
            match ty {
                Value::Class(c) => Ok(match v {
                    Value::Instance(i) => heap.class_isa(heap.instance(i).class, c),
                    _ => false,
                }),
                Value::Native(n) => {
                    // type constructors double as type objects:
                    // isinstance(x, str) etc.
                    Ok(matches!(
                        (heap.native(n).name(), v),
                        ("str", Value::Str(_))
                            | ("int", Value::Int(_) | Value::Bool(_))
                            | ("float", Value::Float(_))
                            | ("bool", Value::Bool(_))
                            | ("list", Value::List(_))
                            | ("tuple", Value::Tuple(_))
                            | ("dict", Value::Dict(_))
                            | ("set", Value::Set(_))
                    ))
                }
                Value::Tuple(types) => {
                    for i in 0..heap.tuple(types).len() {
                        let t = heap.tuple(types)[i];
                        if check(heap, v, t)? {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
                other => Err(PyExc::type_error(format!(
                    "isinstance() arg 2 must be a type, not {}",
                    other.type_name()
                ))),
            }
        }
        Ok(Value::Bool(check(&vm.heap, args[0], args[1])?))
    });

    native(heap, b, "type", |vm, args, _| {
        let v = one_arg("type", args)?;
        let name = match v {
            Value::Instance(i) => vm.heap.class(vm.heap.instance(i).class).name.clone(),
            other => other.type_name().to_string(),
        };
        Ok(vm.heap.new_string(name))
    });

    native(heap, b, "abs", |_vm, args, _| {
        match one_arg("abs", args)? {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(PyExc::type_error(format!(
                "bad operand type for abs(): '{}'",
                other.type_name()
            ))),
        }
    });

    native(heap, b, "min", |vm, args, _| {
        minmax(&vm.heap, "min", args, std::cmp::Ordering::Less)
    });
    native(heap, b, "max", |vm, args, _| {
        minmax(&vm.heap, "max", args, std::cmp::Ordering::Greater)
    });

    native(heap, b, "sum", |vm, args, _| {
        let first = *args.first().ok_or_else(|| arity_error("sum", "at least 1", 0))?;
        let items = iter_values(&vm.heap, first)?;
        let mut acc = Value::Int(0);
        for item in items {
            acc = match (acc, item) {
                (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
                (Value::Int(a), Value::Float(b)) => Value::Float(a as f64 + b),
                (Value::Float(a), Value::Int(b)) => Value::Float(a + b as f64),
                (Value::Float(a), Value::Float(b)) => Value::Float(a + b),
                (_, other) => {
                    return Err(PyExc::type_error(format!(
                        "unsupported operand type for sum: '{}'",
                        other.type_name()
                    )))
                }
            };
        }
        Ok(acc)
    });

    native(heap, b, "sorted", |vm, mut args, kwargs| {
        if args.is_empty() {
            return Err(arity_error("sorted", "at least 1", 0));
        }
        let mut items = iter_values(&vm.heap, args.remove(0))?;
        let key = kwargs.iter().find(|(n, _)| n == "key").map(|&(_, v)| v);
        let reverse = kwargs
            .iter()
            .find(|(n, _)| n == "reverse")
            .map(|(_, v)| v.truthy(&vm.heap))
            .unwrap_or(false);
        // Decorate-sort-undecorate so key functions run through the VM.
        let mut decorated: Vec<(Value, Value)> = Vec::with_capacity(items.len());
        for item in items.drain(..) {
            let k = match key {
                Some(f) => call_value(vm, f, vec![item], vec![])?,
                None => item,
            };
            decorated.push((k, item));
        }
        // Insertion sort: values_cmp may be partial; error on incomparable.
        for i in 1..decorated.len() {
            let mut j = i;
            while j > 0 {
                let ord = values_cmp(&vm.heap, decorated[j - 1].0, decorated[j].0)
                    .ok_or_else(|| PyExc::type_error("'<' not supported between sort keys"))?;
                if ord == std::cmp::Ordering::Greater {
                    decorated.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        let mut out: Vec<Value> = decorated.into_iter().map(|(_, v)| v).collect();
        if reverse {
            out.reverse();
        }
        Ok(vm.heap.new_list(out))
    });

    native(heap, b, "enumerate", |vm, args, _| {
        let items = iter_values(&vm.heap, one_arg("enumerate", args)?)?;
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, v)| vm.heap.new_tuple(vec![Value::Int(i as i64), v]))
            .collect();
        Ok(vm.heap.new_list(out))
    });

    native(heap, b, "zip", |vm, args, _| {
        let mut columns = Vec::new();
        for &a in &args {
            columns.push(iter_values(&vm.heap, a)?);
        }
        let n = columns.iter().map(Vec::len).min().unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<Value> = columns.iter().map(|c| c[i]).collect();
            out.push(vm.heap.new_tuple(row));
        }
        Ok(vm.heap.new_list(out))
    });

    native(heap, b, "getattr", |vm, args, _| {
        match args.len() {
            2 => {
                let name = string_of(&vm.heap, &args[1], "getattr")?;
                crate::interp::get_attr(vm, args[0], &name)
            }
            3 => {
                let name = string_of(&vm.heap, &args[1], "getattr")?;
                Ok(crate::interp::get_attr(vm, args[0], &name).unwrap_or(args[2]))
            }
            n => Err(arity_error("getattr", "2 or 3", n)),
        }
    });

    native(heap, b, "hasattr", |vm, args, _| {
        if args.len() != 2 {
            return Err(arity_error("hasattr", "exactly 2", args.len()));
        }
        let name = string_of(&vm.heap, &args[1], "hasattr")?;
        Ok(Value::Bool(crate::interp::get_attr(vm, args[0], &name).is_ok()))
    });

    native(heap, b, "setattr", |vm, args, _| {
        if args.len() != 3 {
            return Err(arity_error("setattr", "exactly 3", args.len()));
        }
        match args[0] {
            Value::Instance(i) => {
                let name = string_of(&vm.heap, &args[1], "setattr")?;
                vm.heap.instance(i).set_attr(&name, args[2]);
                Ok(Value::None)
            }
            other => Err(PyExc::type_error(format!(
                "setattr target must be an instance, not {}",
                other.type_name()
            ))),
        }
    });

    native(heap, b, "callable", |_vm, args, _| {
        Ok(Value::Bool(matches!(
            one_arg("callable", args)?,
            Value::Func(_) | Value::BoundMethod(_) | Value::Native(_) | Value::Class(_)
        )))
    });
}

fn minmax(
    heap: &Heap,
    name: &'static str,
    args: Vec<Value>,
    want: std::cmp::Ordering,
) -> Result<Value, PyExc> {
    let items = if args.len() == 1 {
        iter_values(heap, args[0])?
    } else {
        args
    };
    let mut best: Option<Value> = None;
    for item in items {
        best = Some(match best {
            None => item,
            Some(cur) => {
                let ord = values_cmp(heap, item, cur)
                    .ok_or_else(|| PyExc::type_error(format!("{name}(): incomparable types")))?;
                if ord == want {
                    item
                } else {
                    cur
                }
            }
        });
    }
    best.ok_or_else(|| PyExc::value_error(format!("{name}() arg is an empty sequence")))
}

pub(crate) fn int_of(v: &Value, ctx: &str) -> Result<i64, PyExc> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::Bool(b) => Ok(*b as i64),
        other => Err(PyExc::type_error(format!(
            "{ctx}: expected int, got {}",
            other.type_name()
        ))),
    }
}

pub(crate) fn float_of(v: &Value, ctx: &str) -> Result<f64, PyExc> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        Value::Bool(b) => Ok(*b as i64 as f64),
        other => Err(PyExc::type_error(format!(
            "{ctx}: expected number, got {}",
            other.type_name()
        ))),
    }
}

pub(crate) fn string_of(heap: &Heap, v: &Value, ctx: &str) -> Result<String, PyExc> {
    match v {
        Value::Str(s) => Ok(heap.str(*s).to_string()),
        other => Err(PyExc::type_error(format!(
            "{ctx}: expected str, got {}",
            other.type_name()
        ))),
    }
}
