//! The virtual machine: owns the clock, fuel, trigger, host interface,
//! captured output, logs, coverage, and the module registry.

use crate::builtins;
use crate::clock::{Fuel, VirtualClock};
use crate::exc::{Flow, PyExc, BUILTIN_EXCEPTIONS};
use crate::host::{HostApi, NoopHost};
use crate::interp::Frame;
use crate::modules;
use crate::prepare::{self, FuncProto, PreparedModule};
use crate::value::{ClassObj, Heap, Scope, ScopeRef, Value};
use pysrc::ast::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Severity of a log record emitted by the interpreted program through
/// the simulated `logging` module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// `logging.debug`
    Debug,
    /// `logging.info`
    Info,
    /// `logging.warning`
    Warning,
    /// `logging.error`
    Error,
    /// `logging.critical`
    Critical,
}

impl Severity {
    /// Upper-case rendering as it appears in log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warning => "WARNING",
            Severity::Error => "ERROR",
            Severity::Critical => "CRITICAL",
        }
    }
}

/// One log line captured from the interpreted program.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Virtual timestamp.
    pub time: f64,
    /// Severity.
    pub severity: Severity,
    /// Component (module) that emitted the record.
    pub component: String,
    /// Message text.
    pub message: String,
}

impl LogRecord {
    /// Renders as a classic log line.
    pub fn render(&self) -> String {
        format!(
            "{:.6} {} [{}] {}",
            self.time,
            self.severity.as_str(),
            self.component,
            self.message
        )
    }
}

/// Result of running a module or calling an entry point.
#[derive(Clone, Debug)]
pub enum VmOutcome {
    /// Completed without an uncaught exception.
    Completed,
    /// An uncaught exception terminated execution.
    Uncaught(PyExc),
}

/// How many interpreter steps may accumulate before the batched tick
/// accounting is settled. Within a batch, `Vm::tick` is one `Cell`
/// increment and compare; the clock/fuel/deadline bookkeeping happens
/// once per batch. The batch is sized so **fuel** exhaustion trips on
/// exactly the same step as per-step accounting (integer math), and
/// the **deadline** check lands within one step of it at exact
/// floating-point boundaries (the clock itself accumulates bit-for-bit
/// like per-step advances; only the trip-step *prediction* divides).
const TICK_BATCH: u64 = 64;

/// Which execution engine runs scope bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Flat-IR bytecode dispatch loop (the default; see
    /// [`crate::bcvm`]).
    Bytecode,
    /// Recursive tree walk — retained as the differential-testing
    /// oracle.
    TreeWalk,
}

/// Versioned language-semantics switch. Each variant pins an observable
/// behavior set so campaign reports stay reproducible across upgrades.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecVersion {
    /// Historical semantics: comprehension targets leak into the
    /// enclosing scope (the default).
    Legacy,
    /// CPython-correct comprehension scoping: the target does not leak.
    Scoped,
}

/// Process-wide engine default override: 0 = unset (consult
/// `PROFIPY_ENGINE`, then fall back to bytecode), 1 = bytecode,
/// 2 = tree walk. Set through [`set_default_engine`]; individual VMs
/// can still be switched per-instance with [`Vm::set_engine`].
static DEFAULT_ENGINE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Sets the process-wide default engine for subsequently created VMs.
/// Intended for bench/CLI processes; tests comparing engines should use
/// [`Vm::set_engine`] (per-instance) instead, since test binaries run
/// multi-threaded.
pub fn set_default_engine(engine: Engine) {
    let v = match engine {
        Engine::Bytecode => 1,
        Engine::TreeWalk => 2,
    };
    DEFAULT_ENGINE.store(v, std::sync::atomic::Ordering::Relaxed);
}

fn default_engine() -> Engine {
    match DEFAULT_ENGINE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => return Engine::Bytecode,
        2 => return Engine::TreeWalk,
        _ => {}
    }
    static FROM_ENV: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("PROFIPY_ENGINE").as_deref() {
        Ok("treewalk") | Ok("tree-walk") | Ok("oracle") => Engine::TreeWalk,
        _ => Engine::Bytecode,
    })
}

fn default_spec_version() -> SpecVersion {
    static FROM_ENV: std::sync::OnceLock<SpecVersion> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("PROFIPY_SPEC").as_deref() {
        Ok("scoped") => SpecVersion::Scoped,
        _ => SpecVersion::Legacy,
    })
}

/// The interpreter state shared across modules of one target program.
pub struct Vm {
    /// The per-VM object heap (typed slabs + short-string interner).
    /// Everything the interpreted program allocates lives here and is
    /// reclaimed in one arena drop with the VM.
    pub heap: Heap,
    /// Virtual clock.
    pub clock: VirtualClock,
    /// Step budget / hog accounting.
    pub fuel: Fuel,
    /// Virtual deadline (absolute clock value); exceeding it raises the
    /// timeout pseudo-exception. Set it through [`Vm::set_deadline`] so
    /// the batched tick accounting is resized.
    pub deadline: Cell<Option<f64>>,
    /// Steps taken since the last batch settlement.
    pending_ticks: Cell<u64>,
    /// Batch size: `tick` settles when `pending_ticks` reaches this.
    /// Never larger than the step at which fuel or deadline would trip.
    tick_limit: Cell<u64>,
    /// The EDFI-style fault trigger shared with the sandbox.
    pub trigger: Rc<Cell<bool>>,
    /// Host services (network, filesystem, env).
    pub host: Rc<dyn HostApi>,
    /// Seeded RNG driving `$CORRUPT`, `random`, and race outcomes.
    pub rng: RefCell<StdRng>,
    stdout: RefCell<String>,
    stderr: RefCell<String>,
    logs: RefCell<Vec<LogRecord>>,
    coverage: RefCell<BTreeSet<u64>>,
    /// Builtin namespace.
    pub(crate) builtins: ScopeRef,
    /// Builtin + user exception classes by name (heap class ids).
    pub(crate) exc_classes: RefCell<HashMap<String, u32>>,
    /// Instantiated native/user module namespaces by import name (heap
    /// module ids).
    pub(crate) modules: RefCell<HashMap<String, u32>>,
    /// Parsed user modules available for `import`.
    user_sources: RefCell<HashMap<String, Rc<pysrc::Module>>>,
    /// Pre-prepared user modules available for `import` (take precedence
    /// over `user_sources`; shared across experiments via `Arc`).
    user_prepared: RefCell<HashMap<String, Arc<PreparedModule>>>,
    /// Prepared scope prototypes keyed by defining node id.
    protos: RefCell<HashMap<u32, Arc<FuncProto>>>,
    /// Component attribution for log records.
    pub(crate) current_component: RefCell<String>,
    /// Exception currently being handled (for bare `raise`).
    pub(crate) handling: RefCell<Vec<PyExc>>,
    /// Python call depth (recursion guard).
    pub(crate) depth: Cell<u32>,
    /// Modules currently being imported (cycle detection).
    importing: RefCell<Vec<String>>,
    /// Recycled bytecode value stacks, so nested calls don't allocate.
    pub(crate) bc_stacks: RefCell<Vec<Vec<Value>>>,
    /// Recycled frame slot vectors (bounded by the recursion limit).
    pub(crate) slot_pool: RefCell<Vec<Vec<Option<Value>>>>,
    /// Recycled positional-argument vectors for the call fast path.
    pub(crate) arg_pool: RefCell<Vec<Vec<Value>>>,
    /// Execution engine for scope bodies.
    engine: Cell<Engine>,
    /// Language-semantics version.
    spec: Cell<SpecVersion>,
}

impl Default for Vm {
    fn default() -> Self {
        Vm::new()
    }
}

impl Vm {
    /// Creates a VM with a [`NoopHost`], unlimited fuel and seed 0.
    pub fn new() -> Vm {
        Vm::with_host(Rc::new(NoopHost::new()), 0)
    }

    /// Creates a VM with the given host and RNG seed.
    pub fn with_host(host: Rc<dyn HostApi>, seed: u64) -> Vm {
        let vm = Vm {
            heap: Heap::new(),
            clock: VirtualClock::new(),
            fuel: Fuel::default(),
            deadline: Cell::new(None),
            pending_ticks: Cell::new(0),
            tick_limit: Cell::new(1),
            trigger: Rc::new(Cell::new(false)),
            host,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            stdout: RefCell::new(String::new()),
            stderr: RefCell::new(String::new()),
            logs: RefCell::new(Vec::new()),
            coverage: RefCell::new(BTreeSet::new()),
            builtins: Scope::new_ref(),
            exc_classes: RefCell::new(HashMap::new()),
            modules: RefCell::new(HashMap::new()),
            user_sources: RefCell::new(HashMap::new()),
            user_prepared: RefCell::new(HashMap::new()),
            protos: RefCell::new(HashMap::new()),
            current_component: RefCell::new("<main>".to_string()),
            handling: RefCell::new(Vec::new()),
            depth: Cell::new(0),
            importing: RefCell::new(Vec::new()),
            bc_stacks: RefCell::new(Vec::new()),
            slot_pool: RefCell::new(Vec::new()),
            arg_pool: RefCell::new(Vec::new()),
            engine: Cell::new(default_engine()),
            spec: Cell::new(default_spec_version()),
        };
        vm.install_exception_classes();
        builtins::install(&vm);
        vm
    }

    /// The execution engine this VM runs scope bodies with.
    pub fn engine(&self) -> Engine {
        self.engine.get()
    }

    /// Switches this VM's execution engine (e.g. to the tree-walk
    /// oracle for differential testing).
    pub fn set_engine(&self, engine: Engine) {
        self.engine.set(engine);
    }

    /// The language-semantics version this VM executes under.
    pub fn spec_version(&self) -> SpecVersion {
        self.spec.get()
    }

    /// Switches this VM's language-semantics version.
    pub fn set_spec_version(&self, spec: SpecVersion) {
        self.spec.set(spec);
    }

    fn install_exception_classes(&self) {
        let mut classes = self.exc_classes.borrow_mut();
        for (name, base) in BUILTIN_EXCEPTIONS {
            let base_class = base.map(|b| *classes.get(b).expect("bases precede subclasses"));
            let class = self.heap.new_class(ClassObj {
                name: name.to_string(),
                base: base_class,
                attrs: RefCell::new(Vec::new()),
                is_exception: true,
            });
            classes.insert(name.to_string(), class);
            self.builtins.borrow_mut().set(name, Value::Class(class));
        }
    }

    /// Registers an additional exception class (used by native modules
    /// such as the simulated urllib, and by `class E(Exception)`).
    pub fn register_exception_class(&self, class: u32) {
        let name = self.heap.class(class).name.clone();
        self.exc_classes.borrow_mut().insert(name, class);
    }

    /// Looks up an exception class by name (heap class id).
    pub fn exception_class(&self, name: &str) -> Option<u32> {
        self.exc_classes.borrow().get(name).copied()
    }

    /// Registers a parsed source module so the target can `import` it.
    /// The module is prepared (names resolved, slots allocated) at
    /// import time.
    pub fn register_source(&self, import_name: &str, module: Rc<pysrc::Module>) {
        self.user_sources
            .borrow_mut()
            .insert(import_name.to_string(), module);
    }

    /// Registers a **prepared** module so the target can `import` it
    /// without re-parsing or re-resolving — the fast path used by the
    /// sandbox for the unchanged workload and fault-free target modules
    /// shared across every experiment of a campaign.
    pub fn register_prepared_source(&self, import_name: &str, prepared: Arc<PreparedModule>) {
        self.install_prepared(&prepared);
        self.user_prepared
            .borrow_mut()
            .insert(import_name.to_string(), prepared);
    }

    /// Installs a prepared module's scope prototypes into the registry.
    pub fn install_prepared(&self, prepared: &PreparedModule) {
        let mut protos = self.protos.borrow_mut();
        for (id, proto) in &prepared.protos {
            protos.insert(*id, proto.clone());
        }
    }

    /// The prepared prototype for a defining node, if known.
    pub(crate) fn proto(&self, id: NodeId) -> Option<Arc<FuncProto>> {
        self.protos.borrow().get(&id.0).cloned()
    }

    /// Registers an on-the-fly prepared prototype (plus anything nested
    /// in it) so repeated executions of the same `def` reuse it.
    pub(crate) fn install_proto(
        &self,
        id: NodeId,
        proto: Arc<FuncProto>,
        nested: HashMap<u32, Arc<FuncProto>>,
    ) {
        let mut protos = self.protos.borrow_mut();
        protos.insert(id.0, proto);
        protos.extend(nested);
    }

    /// Imports a module by name: native modules first, then registered
    /// user sources (executed once and cached).
    ///
    /// # Errors
    ///
    /// Raises `ImportError` for unknown modules and propagates any
    /// exception raised while executing a user module's top level.
    pub fn import_module(&mut self, name: &str) -> Result<u32, PyExc> {
        if let Some(&m) = self.modules.borrow().get(name) {
            return Ok(m);
        }
        if let Some(native) = modules::instantiate_native(self, name) {
            self.modules.borrow_mut().insert(name.to_string(), native);
            return Ok(native);
        }
        let prepared = self.user_prepared.borrow().get(name).cloned();
        let source = match &prepared {
            Some(_) => None,
            None => self.user_sources.borrow().get(name).cloned(),
        };
        if prepared.is_some() || source.is_some() {
            if self.importing.borrow().iter().any(|n| n == name) {
                return Err(PyExc::new(
                    "ImportError",
                    format!("circular import of '{name}'"),
                ));
            }
            self.importing.borrow_mut().push(name.to_string());
            let result = match &prepared {
                Some(pm) => {
                    self.execute_module_namespace(name, &pm.module, pm.module_proto.clone())
                }
                None => {
                    let source = source.expect("checked above");
                    let (module_proto, protos) = prepare::prepare_ast(&source);
                    self.protos.borrow_mut().extend(protos);
                    self.execute_module_namespace(name, &source, module_proto)
                }
            };
            self.importing.borrow_mut().pop();
            let namespace = result?;
            self.modules
                .borrow_mut()
                .insert(name.to_string(), namespace);
            return Ok(namespace);
        }
        Err(PyExc::new(
            "ImportError",
            format!("No module named '{name}'"),
        ))
    }

    fn execute_module_namespace(
        &mut self,
        name: &str,
        source: &pysrc::Module,
        proto: Arc<FuncProto>,
    ) -> Result<u32, PyExc> {
        let globals = Scope::new_ref();
        let prev = std::mem::replace(&mut *self.current_component.borrow_mut(), name.to_string());
        let result = {
            let mut frame = Frame::prepared_module(globals.clone(), proto);
            crate::interp::exec_entry(self, &mut frame, &source.body)
        };
        *self.current_component.borrow_mut() = prev;
        match result {
            Ok(Flow::Return(_)) | Ok(Flow::Break) | Ok(Flow::Continue) | Ok(Flow::Normal) => {}
            Err(e) => return Err(e),
        }
        let module = self.heap.new_module(name);
        for &(n, v) in &globals.borrow().bindings_syms() {
            self.heap.module(module).set_sym(n, v);
        }
        Ok(module)
    }

    /// Runs a module as the `__main__` program, preparing it first
    /// (name resolution + slot allocation, one AST walk).
    ///
    /// # Errors
    ///
    /// Returns the uncaught [`PyExc`], with the traceback rendered to
    /// the captured stderr (like CPython printing a traceback).
    pub fn run_module(&mut self, module: &pysrc::Module) -> Result<(), PyExc> {
        let (module_proto, protos) = prepare::prepare_ast(module);
        self.protos.borrow_mut().extend(protos);
        self.run_module_body(module, module_proto)
    }

    /// Runs an already-prepared module as the `__main__` program,
    /// skipping the prepare pass entirely.
    ///
    /// # Errors
    ///
    /// Returns the uncaught [`PyExc`] (see [`Vm::run_module`]).
    pub fn run_prepared(&mut self, prepared: &PreparedModule) -> Result<(), PyExc> {
        self.install_prepared(prepared);
        self.run_module_body(&prepared.module, prepared.module_proto.clone())
    }

    fn run_module_body(
        &mut self,
        module: &pysrc::Module,
        proto: Arc<FuncProto>,
    ) -> Result<(), PyExc> {
        let globals = Scope::new_ref();
        let prev = std::mem::replace(
            &mut *self.current_component.borrow_mut(),
            module.name.clone(),
        );
        let result = {
            let mut frame = Frame::prepared_module(globals, proto);
            crate::interp::exec_entry(self, &mut frame, &module.body)
        };
        *self.current_component.borrow_mut() = prev;
        // Settle so direct `clock.now()` readers see the full run cost.
        self.settle_observed();
        match result {
            Ok(_) => Ok(()),
            Err(e) => {
                self.stderr.borrow_mut().push_str(&format!(
                    "Traceback (most recent call last):\n{}{}\n",
                    e.traceback
                        .iter()
                        .rev()
                        .map(|f| format!("  File \"<target>\", in {f}\n"))
                        .collect::<String>(),
                    e.one_line()
                ));
                Err(e)
            }
        }
    }

    /// Captured standard output.
    pub fn stdout(&self) -> String {
        self.stdout.borrow().clone()
    }

    /// Captured standard error.
    pub fn stderr(&self) -> String {
        self.stderr.borrow().clone()
    }

    /// Appends to captured stdout.
    pub fn write_stdout(&self, text: &str) {
        self.stdout.borrow_mut().push_str(text);
    }

    /// Appends to captured stderr.
    pub fn write_stderr(&self, text: &str) {
        self.stderr.borrow_mut().push_str(text);
    }

    /// Captured log records.
    pub fn logs(&self) -> Vec<LogRecord> {
        self.logs.borrow().clone()
    }

    /// Emits a log record attributed to the current component.
    pub fn log(&self, severity: Severity, message: impl Into<String>) {
        self.logs.borrow_mut().push(LogRecord {
            time: self.now(),
            severity,
            component: self.current_component.borrow().clone(),
            message: message.into(),
        });
    }

    /// Marks a fault-injection point as covered (coverage
    /// instrumentation, paper §IV-D).
    pub fn mark_covered(&self, point_id: u64) {
        self.coverage.borrow_mut().insert(point_id);
    }

    /// The set of covered injection-point ids.
    pub fn coverage(&self) -> BTreeSet<u64> {
        self.coverage.borrow().clone()
    }

    /// Consumes one step of fuel, advancing the virtual clock.
    ///
    /// Accounting is batched: most calls only bump a pending-step
    /// counter; every [`TICK_BATCH`] steps (or sooner, when fuel or the
    /// deadline is about to trip) the batch is settled in one go. Fuel
    /// exhaustion raises on exactly the same step it would under
    /// per-step accounting; deadline detection within one step of it
    /// (see [`TICK_BATCH`]).
    ///
    /// # Errors
    ///
    /// Raises the timeout pseudo-exception when the budget is exhausted
    /// or the virtual deadline has passed.
    #[inline]
    pub fn tick(&self) -> Result<(), PyExc> {
        let pending = self.pending_ticks.get() + 1;
        self.pending_ticks.set(pending);
        if pending < self.tick_limit.get() {
            return Ok(());
        }
        self.settle_ticks()
    }

    /// Takes `n` interpreter steps, bit-identical to `n` sequential
    /// [`Vm::tick`] calls: settlement happens at exactly the same
    /// accumulated step counts, so fuel exhaustion and deadline trips
    /// surface on the same step with the same clock reading.
    ///
    /// # Errors
    ///
    /// Raises the timeout pseudo-exception exactly as [`Vm::tick`].
    #[inline]
    pub(crate) fn tick_n(&self, n: u32) -> Result<(), PyExc> {
        let pending = self.pending_ticks.get() + n as u64;
        if pending < self.tick_limit.get() {
            self.pending_ticks.set(pending);
            return Ok(());
        }
        self.tick_n_slow(n)
    }

    fn tick_n_slow(&self, mut n: u32) -> Result<(), PyExc> {
        while n > 0 {
            // Invariant between settlements: pending < limit, so the
            // room to the next settlement is at least one step (and at
            // most TICK_BATCH, so the u32 cast is lossless).
            let room = (self.tick_limit.get() - self.pending_ticks.get()) as u32;
            if n < room {
                self.pending_ticks
                    .set(self.pending_ticks.get() + n as u64);
                return Ok(());
            }
            self.pending_ticks.set(self.tick_limit.get());
            self.settle_ticks()?;
            n -= room;
        }
        Ok(())
    }

    /// Settles the accumulated steps: advances the clock, consumes
    /// fuel, checks the deadline, and sizes the next batch.
    fn settle_ticks(&self) -> Result<(), PyExc> {
        let n = self.pending_ticks.replace(0);
        if n > 0 {
            self.clock.advance_steps(n, self.fuel.step_cost_secs());
            if !self.fuel.consume(n) {
                self.tick_limit.set(1);
                return Err(PyExc::timeout());
            }
            if let Some(deadline) = self.deadline.get() {
                if self.clock.now() > deadline {
                    self.tick_limit.set(1);
                    return Err(PyExc::new(
                        "ProfipyFuelExhausted",
                        "virtual deadline exceeded",
                    ));
                }
            }
        }
        self.resize_tick_batch();
        Ok(())
    }

    /// Settles pending steps for an *observation* (clock read, budget
    /// change). Accounting is applied, but an exhaustion discovered
    /// here is left for the next [`Vm::tick`] to raise — which is the
    /// step where it would have surfaced under per-step accounting
    /// anyway (observations never raised).
    fn settle_observed(&self) {
        let n = self.pending_ticks.replace(0);
        if n > 0 {
            self.clock.advance_steps(n, self.fuel.step_cost_secs());
            // Cannot exhaust: `tick` settles (and raises) at the batch
            // limit, which never exceeds the exhausting step, so the
            // pending count here is always below it.
            let _ = self.fuel.consume(n);
        }
        self.resize_tick_batch();
    }

    /// Recomputes the batch size from remaining fuel and deadline
    /// slack, so the next settlement lands on the first step that can
    /// trip (exactly, for fuel; within one step at floating-point
    /// boundaries, for the deadline — the settle re-checks against the
    /// actual accumulated clock either way).
    fn resize_tick_batch(&self) {
        let mut limit = TICK_BATCH.min(self.fuel.steps_until_exhaustion());
        if let Some(deadline) = self.deadline.get() {
            let slack = deadline - self.clock.now();
            let per_step = self.fuel.step_cost_secs();
            let steps = if slack <= 0.0 {
                1
            } else {
                ((slack / per_step).floor() as u64).saturating_add(1)
            };
            limit = limit.min(steps);
        }
        self.tick_limit.set(limit.max(1));
    }

    /// Current virtual time, with pending tick accounting settled —
    /// use this (not `clock.now()`) wherever time is observed.
    pub fn now(&self) -> f64 {
        self.settle_observed();
        self.clock.now()
    }

    /// Advances the virtual clock (e.g. `time.sleep`, simulated I/O
    /// latency), keeping the batched accounting consistent.
    pub fn advance_clock(&self, secs: f64) {
        self.settle_observed();
        self.clock.advance(secs);
        self.resize_tick_batch();
    }

    /// Sets (or clears) the virtual deadline.
    pub fn set_deadline(&self, deadline: Option<f64>) {
        self.settle_observed();
        self.deadline.set(deadline);
        self.resize_tick_batch();
    }

    /// Refills the step budget (round start).
    pub fn refill_fuel(&self, steps: u64) {
        self.settle_observed();
        self.fuel.refill(steps);
        self.resize_tick_batch();
    }

    /// Registers a CPU hog ($HOG fault), which changes the per-step
    /// cost — pending steps are settled at the old cost first.
    pub fn add_hog(&self) {
        self.settle_observed();
        self.fuel.add_hog();
        self.resize_tick_batch();
    }

    /// Clears hogs (container teardown).
    pub fn clear_hogs(&self) {
        self.settle_observed();
        self.fuel.clear_hogs();
        self.resize_tick_batch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_simple_module() {
        let m = pysrc::parse_module("x = 1 + 2\nprint(x)\n", "m.py").unwrap();
        let mut vm = Vm::new();
        vm.run_module(&m).unwrap();
        assert_eq!(vm.stdout(), "3\n");
    }

    #[test]
    fn uncaught_exception_prints_traceback() {
        let m = pysrc::parse_module("raise ValueError('boom')\n", "m.py").unwrap();
        let mut vm = Vm::new();
        let err = vm.run_module(&m).unwrap_err();
        assert_eq!(err.class_name, "ValueError");
        assert!(vm.stderr().contains("ValueError: boom"));
    }

    #[test]
    fn fuel_exhaustion_is_timeout() {
        let m = pysrc::parse_module("while True:\n    pass\n", "m.py").unwrap();
        let mut vm = Vm::new();
        vm.fuel.refill(10_000);
        let err = vm.run_module(&m).unwrap_err();
        assert_eq!(err.class_name, "ProfipyFuelExhausted");
    }

    #[test]
    fn deadline_trips_under_batched_ticks() {
        let m = pysrc::parse_module("while True:\n    pass\n", "m.py").unwrap();
        let mut vm = Vm::new();
        vm.set_deadline(Some(0.01));
        let err = vm.run_module(&m).unwrap_err();
        assert_eq!(err.class_name, "ProfipyFuelExhausted");
        assert_eq!(err.message, "virtual deadline exceeded");
        assert!(vm.clock.now() > 0.01);
    }

    #[test]
    fn observed_time_settles_pending_steps() {
        // A mid-batch `time.time()` must account every step taken so
        // far — the lazy counter may never make time stand still.
        let m = pysrc::parse_module(
            "import time\na = 1\nb = 2\nc = a + b\nprint(time.time() > 0.0)\n",
            "m.py",
        )
        .unwrap();
        let mut vm = Vm::new();
        vm.run_module(&m).unwrap();
        assert_eq!(vm.stdout(), "True\n");
        // After the run, direct clock reads see the settled total.
        assert!(vm.clock.now() > 0.0);
    }

    #[test]
    fn import_error_for_unknown_module() {
        let m = pysrc::parse_module("import nosuchmodule\n", "m.py").unwrap();
        let mut vm = Vm::new();
        let err = vm.run_module(&m).unwrap_err();
        assert_eq!(err.class_name, "ImportError");
    }

    #[test]
    fn user_module_import_executes_once() {
        let lib = pysrc::parse_module("counter = 41\ndef inc():\n    return counter + 1\n", "lib.py")
            .unwrap();
        let main =
            pysrc::parse_module("import mylib\nprint(mylib.inc())\n", "main.py").unwrap();
        let mut vm = Vm::new();
        vm.register_source("mylib", Rc::new(lib));
        vm.run_module(&main).unwrap();
        assert_eq!(vm.stdout(), "42\n");
    }
}
