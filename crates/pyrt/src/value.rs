//! Runtime values for the mini-Python interpreter.

use pysrc::ast;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime value. Aggregate values use `Rc<RefCell<..>>` to get
/// Python's reference/aliasing semantics in a single-threaded VM.
#[derive(Clone)]
pub enum Value {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Immutable string.
    Str(Rc<String>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Immutable tuple.
    Tuple(Rc<Vec<Value>>),
    /// Insertion-ordered dictionary (linear probing is fine at corpus
    /// scale and keeps iteration deterministic).
    Dict(Rc<RefCell<DictObj>>),
    /// Mutable set (represented as an ordered vec of unique values).
    Set(Rc<RefCell<Vec<Value>>>),
    /// User-defined function (or method before binding).
    Func(Rc<FuncObj>),
    /// A callable (user function or native) bound to a receiver.
    BoundMethod(Box<Value>, Box<Value>),
    /// A class object.
    Class(Rc<ClassObj>),
    /// A class instance.
    Instance(Rc<InstanceObj>),
    /// Native (Rust-implemented) function.
    Native(Rc<NativeFn>),
    /// A native module namespace.
    Module(Rc<ModuleObj>),
}

/// Insertion-ordered dictionary object.
#[derive(Default)]
pub struct DictObj {
    entries: Vec<(Value, Value)>,
}

impl DictObj {
    /// Creates an empty dict.
    pub fn new() -> DictObj {
        DictObj::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key by Python equality.
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| values_eq(k, key))
            .map(|(_, v)| v)
    }

    /// Inserts or replaces a key.
    pub fn set(&mut self, key: Value, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| values_eq(k, &key)) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &Value) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| values_eq(k, key))?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> {
        self.entries.iter()
    }
}

/// A user-defined function.
pub struct FuncObj {
    /// Function name (for tracebacks).
    pub name: String,
    /// Parameters.
    pub params: Vec<ast::Param>,
    /// Default values, evaluated once at `def` time (Python semantics),
    /// parallel to `params`.
    pub defaults: Vec<Option<Value>>,
    /// Body statements (shared with the module AST).
    pub body: Rc<Vec<ast::Stmt>>,
    /// Names assigned anywhere in the body (locals), precomputed for
    /// `UnboundLocalError` semantics.
    pub local_names: Vec<String>,
    /// Names declared `global` in the body.
    pub global_names: Vec<String>,
    /// The module globals this function closes over.
    pub globals: ScopeRef,
    /// Enclosing local scopes captured by closures (innermost last).
    pub captured: Vec<ScopeRef>,
}

/// A class object.
pub struct ClassObj {
    /// Class name.
    pub name: String,
    /// Single base class, if any.
    pub base: Option<Rc<ClassObj>>,
    /// Methods and class attributes.
    pub attrs: RefCell<Vec<(String, Value)>>,
    /// True for the built-in exception classes and user subclasses of
    /// them (set at class creation by walking `base`).
    pub is_exception: bool,
}

impl ClassObj {
    /// Looks up an attribute through the inheritance chain.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        if let Some((_, v)) = self.attrs.borrow().iter().find(|(n, _)| n == name) {
            return Some(v.clone());
        }
        self.base.as_ref().and_then(|b| b.lookup(name))
    }

    /// True if `self` is `other` or a subclass of it.
    pub fn isa(&self, other: &ClassObj) -> bool {
        if std::ptr::eq(self, other) || self.name == other.name {
            return true;
        }
        self.base.as_ref().is_some_and(|b| b.isa(other))
    }
}

/// A class instance.
pub struct InstanceObj {
    /// The instance's class.
    pub class: Rc<ClassObj>,
    /// Instance attributes.
    pub attrs: RefCell<Vec<(String, Value)>>,
}

impl InstanceObj {
    /// Reads an instance attribute (not falling back to the class).
    pub fn get_attr(&self, name: &str) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    /// Writes an instance attribute.
    pub fn set_attr(&self, name: &str, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            attrs.push((name.to_string(), value));
        }
    }
}

/// A native module namespace (e.g. the simulated `os`, `urllib`).
pub struct ModuleObj {
    /// Module name.
    pub name: String,
    /// Module attributes.
    pub attrs: RefCell<Vec<(String, Value)>>,
}

impl ModuleObj {
    /// Reads a module attribute.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    /// Writes a module attribute.
    pub fn set(&self, name: &str, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            attrs.push((name.to_string(), value));
        }
    }
}

/// Signature of a native function: `(vm, positional args, keyword args)`.
pub type NativeImpl =
    dyn Fn(&mut crate::vm::Vm, Vec<Value>, Vec<(String, Value)>) -> Result<Value, crate::exc::PyExc>;

/// A named native function.
pub struct NativeFn {
    /// Name (for error messages).
    pub name: String,
    /// Implementation.
    pub imp: Box<NativeImpl>,
}

/// A mutable name→value scope shared by reference.
pub type ScopeRef = Rc<RefCell<Scope>>;

/// A flat name→value binding table.
#[derive(Default)]
pub struct Scope {
    bindings: Vec<(String, Value)>,
}

impl Scope {
    /// Creates an empty scope behind an `Rc<RefCell<..>>`.
    pub fn new_ref() -> ScopeRef {
        Rc::new(RefCell::new(Scope::default()))
    }

    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    }

    /// Binds a name.
    pub fn set(&mut self, name: &str, value: Value) {
        if let Some(slot) = self.bindings.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.bindings.push((name.to_string(), value));
        }
    }

    /// Removes a binding, returning whether it existed.
    pub fn unset(&mut self, name: &str) -> bool {
        let before = self.bindings.len();
        self.bindings.retain(|(n, _)| n != name);
        self.bindings.len() != before
    }

    /// True if the name is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.iter().any(|(n, _)| n == name)
    }

    /// Snapshot of all bindings in insertion order.
    pub fn bindings_vec(&self) -> Vec<(String, Value)> {
        self.bindings.clone()
    }
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Creates a dict value.
    pub fn dict(pairs: Vec<(Value, Value)>) -> Value {
        let mut d = DictObj::new();
        for (k, v) in pairs {
            d.set(k, v);
        }
        Value::Dict(Rc::new(RefCell::new(d)))
    }

    /// Python type name (`type(x).__name__`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::Set(_) => "set",
            Value::Func(_) | Value::BoundMethod(..) | Value::Native(_) => "function",
            Value::Class(_) => "type",
            Value::Instance(_) => "instance",
            Value::Module(_) => "module",
        }
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Set(s) => !s.borrow().is_empty(),
            _ => true,
        }
    }

    /// `repr()` rendering.
    pub fn repr(&self) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                let s = format!("{f}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Value::List(l) => {
                let items: Vec<String> = l.borrow().iter().map(Value::repr).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Tuple(t) => {
                let items: Vec<String> = t.iter().map(Value::repr).collect();
                if items.len() == 1 {
                    format!("({},)", items[0])
                } else {
                    format!("({})", items.join(", "))
                }
            }
            Value::Dict(d) => {
                let items: Vec<String> = d
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.repr(), v.repr()))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            Value::Set(s) => {
                let items: Vec<String> = s.borrow().iter().map(Value::repr).collect();
                if items.is_empty() {
                    "set()".into()
                } else {
                    format!("{{{}}}", items.join(", "))
                }
            }
            Value::Func(f) => format!("<function {}>", f.name),
            Value::BoundMethod(f, _) => match f.as_ref() {
                Value::Func(f) => format!("<bound method {}>", f.name),
                Value::Native(n) => format!("<bound method {}>", n.name),
                other => format!("<bound method {}>", other.type_name()),
            },
            Value::Native(n) => format!("<built-in function {}>", n.name),
            Value::Class(c) => format!("<class '{}'>", c.name),
            Value::Instance(i) => format!("<{} instance>", i.class.name),
            Value::Module(m) => format!("<module '{}'>", m.name),
        }
    }

    /// `str()` rendering (strings print bare, exceptions show message).
    pub fn to_display(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Instance(i) if i.class.is_exception => {
                match i.get_attr("message") {
                    Some(Value::Str(m)) => m.to_string(),
                    Some(v) => v.to_display(),
                    None => String::new(),
                }
            }
            other => other.repr(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr())
    }
}

/// Python `==` equality (deep, numeric-coercing).
pub fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        (Value::Bool(x), Value::Int(y)) | (Value::Int(y), Value::Bool(x)) => (*x as i64) == *y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| values_eq(a, b))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| values_eq(a, b))
        }
        (Value::Dict(x), Value::Dict(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len()
                && x.iter()
                    .all(|(k, v)| y.get(k).is_some_and(|w| values_eq(v, w)))
        }
        (Value::Set(x), Value::Set(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().all(|v| y.iter().any(|w| values_eq(v, w)))
        }
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Func(x), Value::Func(y)) => Rc::ptr_eq(x, y),
        (Value::Native(x), Value::Native(y)) => Rc::ptr_eq(x, y),
        (Value::Module(x), Value::Module(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

/// Identity (`is` operator).
pub fn values_is(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        // CPython interns small ints; our corpus relies only on
        // `is None` / `is True`, but int identity is harmless.
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => Rc::ptr_eq(x, y) || x == y,
        (Value::List(x), Value::List(y)) => Rc::ptr_eq(x, y),
        (Value::Dict(x), Value::Dict(y)) => Rc::ptr_eq(x, y),
        (Value::Set(x), Value::Set(y)) => Rc::ptr_eq(x, y),
        (Value::Tuple(x), Value::Tuple(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

/// Total ordering for `<`/`sorted()` on comparable values.
/// Returns `None` for incomparable types (→ `TypeError`).
pub fn values_cmp(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            for (a, b) in x.iter().zip(y.iter()) {
                match values_cmp(a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            for (a, b) in x.iter().zip(y.iter()) {
                match values_cmp(a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::Int(1)]).truthy());
    }

    #[test]
    fn equality_coerces_numbers() {
        assert!(values_eq(&Value::Int(2), &Value::Float(2.0)));
        assert!(values_eq(&Value::Bool(true), &Value::Int(1)));
        assert!(!values_eq(&Value::Int(2), &Value::str("2")));
    }

    #[test]
    fn dict_insertion_order_preserved() {
        let mut d = DictObj::new();
        d.set(Value::str("b"), Value::Int(1));
        d.set(Value::str("a"), Value::Int(2));
        d.set(Value::str("b"), Value::Int(3));
        let keys: Vec<String> = d.iter().map(|(k, _)| k.to_display()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert!(values_eq(d.get(&Value::str("b")).unwrap(), &Value::Int(3)));
    }

    #[test]
    fn repr_matches_python() {
        assert_eq!(Value::list(vec![Value::Int(1), Value::str("a")]).repr(), "[1, 'a']");
        assert_eq!(Value::Tuple(Rc::new(vec![Value::Int(1)])).repr(), "(1,)");
        assert_eq!(Value::Float(2.0).repr(), "2.0");
    }

    #[test]
    fn compare_orders_sequences_lexicographically() {
        let a = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::list(vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(values_cmp(&a, &b), Some(std::cmp::Ordering::Less));
        assert!(values_cmp(&Value::Int(1), &Value::str("x")).is_none());
    }
}
