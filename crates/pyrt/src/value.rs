//! Runtime values for the mini-Python interpreter.

use crate::intern::{intern, try_intern, Symbol};
use crate::prepare::FuncProto;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A runtime value. Aggregate values use `Rc<RefCell<..>>` to get
/// Python's reference/aliasing semantics in a single-threaded VM.
#[derive(Clone)]
pub enum Value {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Immutable string.
    Str(Rc<String>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Immutable tuple.
    Tuple(Rc<Vec<Value>>),
    /// Insertion-ordered dictionary with a lazy hash index over the
    /// entries (O(1) lookup past a small size, deterministic iteration).
    Dict(Rc<RefCell<DictObj>>),
    /// Mutable set (represented as an ordered vec of unique values).
    Set(Rc<RefCell<Vec<Value>>>),
    /// User-defined function (or method before binding).
    Func(Rc<FuncObj>),
    /// A callable (user function or native) bound to a receiver.
    BoundMethod(Box<Value>, Box<Value>),
    /// A class object.
    Class(Rc<ClassObj>),
    /// A class instance.
    Instance(Rc<InstanceObj>),
    /// Native (Rust-implemented) function.
    Native(Rc<NativeFn>),
    /// A native module namespace.
    Module(Rc<ModuleObj>),
}

/// Entry count past which a [`DictObj`] builds its hash index. Below
/// this a linear scan over the entry vec is faster than hashing.
const DICT_INDEX_THRESHOLD: usize = 8;

/// Insertion-ordered dictionary object.
///
/// Entries live in one insertion-ordered vec (iteration, `repr`, and
/// report output stay deterministic). Once the dict grows past
/// [`DICT_INDEX_THRESHOLD`], a `hash → entry indices` side index makes
/// string/number-keyed access O(1); unhashable keys (lists, dicts)
/// permanently degrade that dict to the linear path, preserving the old
/// anything-goes key semantics.
#[derive(Default)]
pub struct DictObj {
    entries: Vec<(Value, Value)>,
    index: Option<HashMap<u64, Vec<u32>>>,
    unindexable: bool,
}

impl DictObj {
    /// Creates an empty dict.
    pub fn new() -> DictObj {
        DictObj::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, key: &Value) -> Option<usize> {
        self.find_hashed(key, || value_hash(key))
    }

    /// `find` with the key hash supplied lazily, so callers that
    /// already computed it (the `set` path) hash only once.
    fn find_hashed(&self, key: &Value, hash: impl FnOnce() -> Option<u64>) -> Option<usize> {
        if let Some(index) = &self.index {
            let h = hash()?;
            return index
                .get(&h)?
                .iter()
                .copied()
                .find(|&i| values_eq(&self.entries[i as usize].0, key))
                .map(|i| i as usize);
        }
        self.entries.iter().position(|(k, _)| values_eq(k, key))
    }

    /// Looks up a key by Python equality.
    ///
    /// `find` handles both paths: hash-index probe when the index is
    /// live (an unhashable probe key cannot equal any indexed key, so
    /// the `None` short-circuit is exact), linear scan otherwise.
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.find(key).map(|i| &self.entries[i].1)
    }

    fn build_index(&mut self) {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::with_capacity(self.entries.len());
        for (i, (k, _)) in self.entries.iter().enumerate() {
            match value_hash(k) {
                Some(h) => index.entry(h).or_default().push(i as u32),
                None => {
                    self.unindexable = true;
                    return;
                }
            }
        }
        self.index = Some(index);
    }

    /// Inserts or replaces a key.
    pub fn set(&mut self, key: Value, value: Value) {
        let key_hash = value_hash(&key);
        if key_hash.is_none() {
            // Unhashable key: this dict stays on the linear path.
            self.unindexable = true;
            self.index = None;
        } else if self.index.is_none()
            && !self.unindexable
            && self.entries.len() + 1 > DICT_INDEX_THRESHOLD
        {
            self.build_index();
        }
        if let Some(i) = self.find_hashed(&key, || key_hash) {
            self.entries[i].1 = value;
            return;
        }
        let slot = self.entries.len() as u32;
        self.entries.push((key, value));
        if let (Some(index), Some(h)) = (&mut self.index, key_hash) {
            index.entry(h).or_default().push(slot);
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &Value) -> Option<Value> {
        let idx = self.find(key)?;
        let (_, v) = self.entries.remove(idx);
        if self.index.is_some() {
            // Removal shifts every later entry; rebuilding keeps the
            // index simple and removal is rare next to lookup.
            self.build_index();
        }
        Some(v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> {
        self.entries.iter()
    }
}

/// FNV-1a over raw bytes — shared by string hashing here and the
/// prepared-module source stamps in [`crate::prepare`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hashes a value consistently with [`values_eq`]'s coercions
/// (`1 == 1.0 == True` all hash alike), or `None` for unhashable
/// values. Mutable containers are unhashable; identity-compared values
/// (instances, classes, functions, modules) hash by pointer.
pub fn value_hash(v: &Value) -> Option<u64> {
    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    match v {
        Value::None => Some(mix(u64::MAX)),
        Value::Bool(b) => Some(mix(*b as u64)),
        Value::Int(i) => {
            // An int whose f64 projection is lossy (|i| > 2^53) can
            // compare equal to a float (values_eq compares `i as f64`),
            // so such ints must hash through the same projection the
            // equality uses.
            let projected = (*i as f64) as i64;
            Some(mix(if projected == *i { *i as u64 } else { projected as u64 }))
        }
        Value::Float(f) => {
            // Numeric coercion: a float equal to an int must hash as
            // that int (values_eq treats 2 == 2.0).
            if f.is_finite() && f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f)
            {
                Some(mix(*f as i64 as u64))
            } else {
                Some(mix(f.to_bits()))
            }
        }
        Value::Str(s) => Some(fnv1a(s.as_bytes())),
        Value::Tuple(t) => {
            let mut h: u64 = 0x345C_91A7;
            for item in t.iter() {
                h = mix(h ^ value_hash(item)?);
            }
            Some(h)
        }
        Value::Instance(i) => Some(mix(Rc::as_ptr(i) as u64)),
        Value::Class(c) => Some(mix(Rc::as_ptr(c) as u64)),
        Value::Func(f) => Some(mix(Rc::as_ptr(f) as u64)),
        Value::Native(n) => Some(mix(Rc::as_ptr(n) as u64)),
        Value::Module(m) => Some(mix(Rc::as_ptr(m) as u64)),
        Value::List(_) | Value::Dict(_) | Value::Set(_) | Value::BoundMethod(..) => None,
    }
}

/// A user-defined function: the immutable prepared prototype (shared
/// across every call and every experiment that reuses the prepared
/// module) plus the capture environment of this particular `def`.
pub struct FuncObj {
    /// Prepared prototype: name, parameter slots, resolved body.
    pub proto: Arc<FuncProto>,
    /// Default values, evaluated once at `def` time (Python semantics),
    /// parallel to `proto.params`.
    pub defaults: Vec<Option<Value>>,
    /// The module globals this function closes over.
    pub globals: ScopeRef,
    /// Enclosing local scopes captured by closures (innermost last).
    pub captured: Vec<ScopeRef>,
}

impl FuncObj {
    /// Function name (for tracebacks and reprs).
    pub fn name(&self) -> &str {
        &self.proto.name
    }
}

/// A class object.
pub struct ClassObj {
    /// Class name.
    pub name: String,
    /// Single base class, if any.
    pub base: Option<Rc<ClassObj>>,
    /// Methods and class attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
    /// True for the built-in exception classes and user subclasses of
    /// them (set at class creation by walking `base`).
    pub is_exception: bool,
}

impl ClassObj {
    /// Looks up an attribute through the inheritance chain. Uses the
    /// non-inserting intern probe: a never-interned name cannot be a
    /// key of any symbol table.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        self.lookup_sym(try_intern(name)?)
    }

    /// Symbol-keyed attribute lookup through the inheritance chain.
    pub fn lookup_sym(&self, sym: Symbol) -> Option<Value> {
        if let Some((_, v)) = self.attrs.borrow().iter().find(|(n, _)| *n == sym) {
            return Some(v.clone());
        }
        self.base.as_ref().and_then(|b| b.lookup_sym(sym))
    }

    /// True if `self` is `other` or a subclass of it.
    pub fn isa(&self, other: &ClassObj) -> bool {
        if std::ptr::eq(self, other) || self.name == other.name {
            return true;
        }
        self.base.as_ref().is_some_and(|b| b.isa(other))
    }
}

/// A class instance.
pub struct InstanceObj {
    /// The instance's class.
    pub class: Rc<ClassObj>,
    /// Instance attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
}

impl InstanceObj {
    /// Reads an instance attribute (not falling back to the class).
    pub fn get_attr(&self, name: &str) -> Option<Value> {
        self.get_attr_sym(try_intern(name)?)
    }

    /// Symbol-keyed instance attribute read.
    pub fn get_attr_sym(&self, sym: Symbol) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|(_, v)| v.clone())
    }

    /// Writes an instance attribute.
    pub fn set_attr(&self, name: &str, value: Value) {
        self.set_attr_sym(intern(name), value);
    }

    /// Symbol-keyed instance attribute write.
    pub fn set_attr_sym(&self, sym: Symbol, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            attrs.push((sym, value));
        }
    }
}

/// A native module namespace (e.g. the simulated `os`, `urllib`).
pub struct ModuleObj {
    /// Module name.
    pub name: String,
    /// Module attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
}

impl ModuleObj {
    /// Reads a module attribute.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.get_sym(try_intern(name)?)
    }

    /// Symbol-keyed module attribute read.
    pub fn get_sym(&self, sym: Symbol) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|(_, v)| v.clone())
    }

    /// Writes a module attribute.
    pub fn set(&self, name: &str, value: Value) {
        self.set_sym(intern(name), value);
    }

    /// Symbol-keyed module attribute write.
    pub fn set_sym(&self, sym: Symbol, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            attrs.push((sym, value));
        }
    }
}

/// Signature of a native function: `(vm, positional args, keyword args)`.
pub type NativeImpl =
    dyn Fn(&mut crate::vm::Vm, Vec<Value>, Vec<(String, Value)>) -> Result<Value, crate::exc::PyExc>;

/// A named native function.
pub struct NativeFn {
    /// Name (for error messages).
    pub name: String,
    /// Implementation.
    pub imp: Box<NativeImpl>,
}

/// A mutable name→value scope shared by reference.
pub type ScopeRef = Rc<RefCell<Scope>>;

/// A flat symbol→value binding table. Compares are `u32` compares; the
/// string convenience methods intern on the way in and are meant for
/// native-module setup, not the interpreter hot path.
#[derive(Default)]
pub struct Scope {
    bindings: Vec<(Symbol, Value)>,
}

impl Scope {
    /// Creates an empty scope behind an `Rc<RefCell<..>>`.
    pub fn new_ref() -> ScopeRef {
        Rc::new(RefCell::new(Scope::default()))
    }

    /// Looks up a name (non-inserting probe; see [`try_intern`]).
    pub fn get(&self, name: &str) -> Option<Value> {
        self.get_sym(try_intern(name)?)
    }

    /// Symbol-keyed lookup.
    pub fn get_sym(&self, sym: Symbol) -> Option<Value> {
        self.bindings
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|(_, v)| v.clone())
    }

    /// Binds a name.
    pub fn set(&mut self, name: &str, value: Value) {
        self.set_sym(intern(name), value);
    }

    /// Symbol-keyed binding.
    pub fn set_sym(&mut self, sym: Symbol, value: Value) {
        if let Some(slot) = self.bindings.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            self.bindings.push((sym, value));
        }
    }

    /// Removes a binding, returning whether it existed.
    pub fn unset(&mut self, name: &str) -> bool {
        try_intern(name).is_some_and(|sym| self.unset_sym(sym))
    }

    /// Symbol-keyed removal.
    pub fn unset_sym(&mut self, sym: Symbol) -> bool {
        let before = self.bindings.len();
        self.bindings.retain(|(n, _)| *n != sym);
        self.bindings.len() != before
    }

    /// True if the name is bound.
    pub fn contains(&self, name: &str) -> bool {
        try_intern(name).is_some_and(|sym| self.contains_sym(sym))
    }

    /// Symbol-keyed membership test.
    pub fn contains_sym(&self, sym: Symbol) -> bool {
        self.bindings.iter().any(|(n, _)| *n == sym)
    }

    /// Snapshot of all bindings in insertion order (symbol keys).
    pub fn bindings_syms(&self) -> Vec<(Symbol, Value)> {
        self.bindings.clone()
    }
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    /// Creates a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Creates a dict value.
    pub fn dict(pairs: Vec<(Value, Value)>) -> Value {
        let mut d = DictObj::new();
        for (k, v) in pairs {
            d.set(k, v);
        }
        Value::Dict(Rc::new(RefCell::new(d)))
    }

    /// Python type name (`type(x).__name__`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::Set(_) => "set",
            Value::Func(_) | Value::BoundMethod(..) | Value::Native(_) => "function",
            Value::Class(_) => "type",
            Value::Instance(_) => "instance",
            Value::Module(_) => "module",
        }
    }

    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Tuple(t) => !t.is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::Set(s) => !s.borrow().is_empty(),
            _ => true,
        }
    }

    /// `repr()` rendering.
    pub fn repr(&self) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                let s = format!("{f}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
            Value::List(l) => {
                let items: Vec<String> = l.borrow().iter().map(Value::repr).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Tuple(t) => {
                let items: Vec<String> = t.iter().map(Value::repr).collect();
                if items.len() == 1 {
                    format!("({},)", items[0])
                } else {
                    format!("({})", items.join(", "))
                }
            }
            Value::Dict(d) => {
                let items: Vec<String> = d
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.repr(), v.repr()))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            Value::Set(s) => {
                let items: Vec<String> = s.borrow().iter().map(Value::repr).collect();
                if items.is_empty() {
                    "set()".into()
                } else {
                    format!("{{{}}}", items.join(", "))
                }
            }
            Value::Func(f) => format!("<function {}>", f.name()),
            Value::BoundMethod(f, _) => match f.as_ref() {
                Value::Func(f) => format!("<bound method {}>", f.name()),
                Value::Native(n) => format!("<bound method {}>", n.name),
                other => format!("<bound method {}>", other.type_name()),
            },
            Value::Native(n) => format!("<built-in function {}>", n.name),
            Value::Class(c) => format!("<class '{}'>", c.name),
            Value::Instance(i) => format!("<{} instance>", i.class.name),
            Value::Module(m) => format!("<module '{}'>", m.name),
        }
    }

    /// `str()` rendering (strings print bare, exceptions show message).
    pub fn to_display(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            Value::Instance(i) if i.class.is_exception => {
                match i.get_attr_sym(crate::intern::well_known::sym_message()) {
                    Some(Value::Str(m)) => m.to_string(),
                    Some(v) => v.to_display(),
                    None => String::new(),
                }
            }
            other => other.repr(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr())
    }
}

/// Python `==` equality (deep, numeric-coercing).
pub fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        (Value::Bool(x), Value::Int(y)) | (Value::Int(y), Value::Bool(x)) => (*x as i64) == *y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| values_eq(a, b))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| values_eq(a, b))
        }
        (Value::Dict(x), Value::Dict(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len()
                && x.iter()
                    .all(|(k, v)| y.get(k).is_some_and(|w| values_eq(v, w)))
        }
        (Value::Set(x), Value::Set(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().all(|v| y.iter().any(|w| values_eq(v, w)))
        }
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Func(x), Value::Func(y)) => Rc::ptr_eq(x, y),
        (Value::Native(x), Value::Native(y)) => Rc::ptr_eq(x, y),
        (Value::Module(x), Value::Module(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

/// Identity (`is` operator).
pub fn values_is(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        // CPython interns small ints; our corpus relies only on
        // `is None` / `is True`, but int identity is harmless.
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => Rc::ptr_eq(x, y) || x == y,
        (Value::List(x), Value::List(y)) => Rc::ptr_eq(x, y),
        (Value::Dict(x), Value::Dict(y)) => Rc::ptr_eq(x, y),
        (Value::Set(x), Value::Set(y)) => Rc::ptr_eq(x, y),
        (Value::Tuple(x), Value::Tuple(y)) => Rc::ptr_eq(x, y),
        (Value::Instance(x), Value::Instance(y)) => Rc::ptr_eq(x, y),
        (Value::Class(x), Value::Class(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

/// Total ordering for `<`/`sorted()` on comparable values.
/// Returns `None` for incomparable types (→ `TypeError`).
pub fn values_cmp(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
        (Value::Int(x), Value::Float(y)) => (*x as f64).partial_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            for (a, b) in x.iter().zip(y.iter()) {
                match values_cmp(a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            for (a, b) in x.iter().zip(y.iter()) {
                match values_cmp(a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::Int(1)]).truthy());
    }

    #[test]
    fn equality_coerces_numbers() {
        assert!(values_eq(&Value::Int(2), &Value::Float(2.0)));
        assert!(values_eq(&Value::Bool(true), &Value::Int(1)));
        assert!(!values_eq(&Value::Int(2), &Value::str("2")));
    }

    #[test]
    fn dict_insertion_order_preserved() {
        let mut d = DictObj::new();
        d.set(Value::str("b"), Value::Int(1));
        d.set(Value::str("a"), Value::Int(2));
        d.set(Value::str("b"), Value::Int(3));
        let keys: Vec<String> = d.iter().map(|(k, _)| k.to_display()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert!(values_eq(d.get(&Value::str("b")).unwrap(), &Value::Int(3)));
    }

    #[test]
    fn dict_index_kicks_in_and_preserves_semantics() {
        let mut d = DictObj::new();
        for i in 0..100 {
            d.set(Value::str(format!("k{i}")), Value::Int(i));
        }
        assert!(d.index.is_some(), "index built past the threshold");
        assert!(values_eq(d.get(&Value::str("k73")).unwrap(), &Value::Int(73)));
        assert!(d.get(&Value::str("missing")).is_none());
        // Overwrite keeps position; remove keeps order and lookups.
        d.set(Value::str("k10"), Value::Int(-1));
        assert!(values_eq(d.get(&Value::str("k10")).unwrap(), &Value::Int(-1)));
        assert!(d.remove(&Value::str("k50")).is_some());
        assert!(d.get(&Value::str("k50")).is_none());
        assert!(values_eq(d.get(&Value::str("k99")).unwrap(), &Value::Int(99)));
        let keys: Vec<String> = d.iter().map(|(k, _)| k.to_display()).collect();
        assert_eq!(keys[0], "k0");
        assert_eq!(keys.len(), 99);
    }

    #[test]
    fn dict_numeric_coercion_with_index() {
        let mut d = DictObj::new();
        for i in 0..20 {
            d.set(Value::Int(i), Value::Int(i * 10));
        }
        // 5.0 and True coerce to existing int keys even via the index.
        assert!(values_eq(d.get(&Value::Float(5.0)).unwrap(), &Value::Int(50)));
        assert!(values_eq(d.get(&Value::Bool(true)).unwrap(), &Value::Int(10)));
        d.set(Value::Float(7.0), Value::Int(-7));
        assert_eq!(d.len(), 20, "7.0 replaced the int 7 entry");
        assert!(values_eq(d.get(&Value::Int(7)).unwrap(), &Value::Int(-7)));
    }

    #[test]
    fn dict_unhashable_keys_fall_back_to_linear() {
        let mut d = DictObj::new();
        for i in 0..20 {
            d.set(Value::Int(i), Value::Int(i));
        }
        let list_key = Value::list(vec![Value::Int(1)]);
        d.set(list_key.clone(), Value::str("by-list"));
        assert!(d.index.is_none(), "unhashable key drops the index");
        assert!(values_eq(d.get(&list_key).unwrap(), &Value::str("by-list")));
        assert!(values_eq(d.get(&Value::Int(12)).unwrap(), &Value::Int(12)));
    }

    #[test]
    fn value_hash_matches_values_eq() {
        let pairs = [
            (Value::Int(2), Value::Float(2.0)),
            (Value::Bool(true), Value::Int(1)),
            (Value::str("x"), Value::str("x")),
            (
                Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("a")])),
                Value::Tuple(Rc::new(vec![Value::Float(1.0), Value::str("a")])),
            ),
        ];
        for (a, b) in &pairs {
            assert!(values_eq(a, b));
            assert_eq!(value_hash(a), value_hash(b), "{a:?} vs {b:?}");
        }
        assert!(value_hash(&Value::list(vec![])).is_none());
    }

    #[test]
    fn value_hash_agrees_with_eq_beyond_f64_precision() {
        // 2^53 + 1 projects lossily to 2^53 as f64, so values_eq treats
        // it as equal to Float(2^53): the hashes must agree too, or the
        // dict index would miss keys the linear scan matched.
        let big_int = Value::Int((1i64 << 53) + 1);
        let alias_float = Value::Float((1i64 << 53) as f64);
        assert!(values_eq(&big_int, &alias_float));
        assert_eq!(value_hash(&big_int), value_hash(&alias_float));
        // And through an indexed dict:
        let mut d = DictObj::new();
        for i in 0..10 {
            d.set(Value::Int(i), Value::Int(i));
        }
        d.set(big_int.clone(), Value::str("big"));
        assert!(d.index.is_some());
        assert!(values_eq(d.get(&alias_float).unwrap(), &Value::str("big")));
        d.set(alias_float, Value::str("replaced"));
        assert_eq!(d.len(), 11, "aliasing float replaced, not duplicated");
    }

    #[test]
    fn repr_matches_python() {
        assert_eq!(Value::list(vec![Value::Int(1), Value::str("a")]).repr(), "[1, 'a']");
        assert_eq!(Value::Tuple(Rc::new(vec![Value::Int(1)])).repr(), "(1,)");
        assert_eq!(Value::Float(2.0).repr(), "2.0");
    }

    #[test]
    fn compare_orders_sequences_lexicographically() {
        let a = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::list(vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(values_cmp(&a, &b), Some(std::cmp::Ordering::Less));
        assert!(values_cmp(&Value::Int(1), &Value::str("x")).is_none());
    }
}
