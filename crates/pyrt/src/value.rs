//! Runtime values for the mini-Python interpreter.
//!
//! Values are a small `Copy` enum: unboxed immediates (`None`, `Bool`,
//! `Int`, `Float`) plus 32-bit handles into typed slabs owned by the
//! per-`Vm` [`Heap`]. Aliasing is handle equality: copying a `Value`
//! copies the handle, so every binding of the same list/dict/instance
//! refers to the same slab slot, giving Python's reference semantics
//! without per-copy refcount traffic. Slab slots are never freed or
//! reused while the `Vm` lives; the whole arena drops with the `Vm`
//! (campaign VMs are short-lived, so no GC is needed).

use crate::intern::{intern, try_intern, Symbol};
use crate::prepare::FuncProto;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A runtime value: unboxed immediates or a 32-bit handle into one of
/// the [`Heap`]'s typed slabs. 16 bytes, `Copy` — stack pushes, slot
/// writes, and argument passing are plain memcpys with no drop glue.
#[derive(Clone, Copy, Debug)]
pub enum Value {
    /// `None`.
    None,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Immutable string (short strings are interned per-heap).
    Str(u32),
    /// Mutable list.
    List(u32),
    /// Immutable tuple.
    Tuple(u32),
    /// Insertion-ordered dictionary with a lazy hash index over the
    /// entries (O(1) lookup past a small size, deterministic iteration).
    Dict(u32),
    /// Mutable set (represented as an ordered vec of unique values).
    Set(u32),
    /// User-defined function (or method before binding).
    Func(u32),
    /// A callable (user function or native) bound to a receiver.
    BoundMethod(u32),
    /// A class object.
    Class(u32),
    /// A class instance.
    Instance(u32),
    /// Native (Rust-implemented) function or built-in method.
    Native(u32),
    /// A native module namespace.
    Module(u32),
}

/// Entries per slab chunk. Chunked storage keeps allocated objects at
/// fixed addresses (so `get` can hand out references that stay valid
/// for the heap's lifetime) while amortizing allocator calls.
const SLAB_CHUNK: usize = 256;

/// An append-only typed arena: `alloc` hands out dense sequential
/// `u32` ids, `get` resolves an id to a reference that stays valid
/// until the slab is dropped. Interior-mutable (`alloc` takes `&self`)
/// so any `&Vm`/`&Heap` context can create objects.
struct Slab<T> {
    /// Raw chunk pointers (not `Box`/`Vec` elements, so outstanding
    /// `get` references are never invalidated by spine reallocation or
    /// aliased by a uniquely-borrowed owner).
    chunks: RefCell<Vec<*mut T>>,
    len: Cell<u32>,
}

impl<T> Slab<T> {
    fn new() -> Slab<T> {
        Slab {
            chunks: RefCell::new(Vec::new()),
            len: Cell::new(0),
        }
    }

    /// Appends a value, returning its id. Ids are sequential and never
    /// reused, so allocation order is deterministic for a given program
    /// (both engines allocate in the same order, keeping hashes and
    /// reprs engine-independent).
    fn alloc(&self, value: T) -> u32 {
        let id = self.len.get();
        let idx = id as usize;
        let (chunk_idx, offset) = (idx / SLAB_CHUNK, idx % SLAB_CHUNK);
        let mut chunks = self.chunks.borrow_mut();
        if chunk_idx == chunks.len() {
            let mut chunk = Vec::<T>::with_capacity(SLAB_CHUNK);
            let ptr = chunk.as_mut_ptr();
            std::mem::forget(chunk);
            chunks.push(ptr);
        }
        // SAFETY: `offset` is within the chunk's SLAB_CHUNK capacity
        // and this slot has never been initialized — ids are handed out
        // sequentially and never reused, so no live reference points at
        // it and no previous value is overwritten.
        unsafe { chunks[chunk_idx].add(offset).write(value) };
        self.len
            .set(id.checked_add(1).expect("slab full: u32 ids exhausted"));
        id
    }

    /// Resolves an id. The returned reference stays valid for the
    /// slab's whole lifetime (chunks never move and slots are never
    /// dropped until the slab is), but is conservatively tied to
    /// `&self`.
    fn get(&self, id: u32) -> &T {
        assert!(id < self.len.get(), "stale heap handle {id}");
        let idx = id as usize;
        let ptr = self.chunks.borrow()[idx / SLAB_CHUNK];
        // SAFETY: the slot was initialized by `alloc` (id < len); the
        // chunk allocation never moves and is only freed in `drop`, so
        // the reference is valid for the slab's lifetime. The RefCell
        // guard on the spine is released before returning, so `alloc`
        // can run while references from `get` are outstanding — it only
        // writes to never-referenced slots.
        unsafe { &*ptr.add(idx % SLAB_CHUNK) }
    }
}

impl<T> Drop for Slab<T> {
    fn drop(&mut self) {
        let chunks = self.chunks.get_mut();
        let mut remaining = self.len.get() as usize;
        for &ptr in chunks.iter() {
            let live = remaining.min(SLAB_CHUNK);
            // SAFETY: reconstructs the chunk Vec forgotten in `alloc`
            // with its `live` initialized elements; dropping it drops
            // the elements and frees the chunk allocation exactly once.
            drop(unsafe { Vec::from_raw_parts(ptr, live, SLAB_CHUNK) });
            remaining -= live;
        }
    }
}

/// A heap-resident string: immutable text plus a lazily cached FNV-1a
/// hash (0 = not yet computed; a genuine 0 hash just recomputes).
pub struct StrObj {
    text: Box<str>,
    hash: Cell<u64>,
}

/// A callable bound to a receiver (`obj.method`).
#[derive(Clone, Copy)]
pub struct BoundObj {
    /// The unbound callable (`Value::Func` or `Value::Native`).
    pub func: Value,
    /// The receiver prepended to every call.
    pub recv: Value,
}

/// Strings at or below this byte length are interned per-heap: equal
/// short strings share one handle, so the hot comparisons in dict and
/// scope lookups are id compares. Long strings allocate fresh slots.
const MAX_INTERNED_STR: usize = 64;

/// The per-`Vm` object heap: one append-only typed slab per aggregate
/// kind, plus the short-string intern table. All allocation goes
/// through `&self` (interior mutability), so both interpreter engines
/// and native builtins can allocate from shared-borrow contexts.
/// Everything is reclaimed at once when the owning `Vm` drops.
pub struct Heap {
    strs: Slab<StrObj>,
    lists: Slab<RefCell<Vec<Value>>>,
    tuples: Slab<Vec<Value>>,
    dicts: Slab<RefCell<DictObj>>,
    sets: Slab<RefCell<Vec<Value>>>,
    funcs: Slab<FuncObj>,
    bounds: Slab<BoundObj>,
    classes: Slab<ClassObj>,
    instances: Slab<InstanceObj>,
    natives: Slab<NativeObj>,
    modules: Slab<ModuleObj>,
    /// fnv1a(text) → candidate string ids (hash-consing for short
    /// strings; collisions resolved by content compare).
    interned: RefCell<HashMap<u64, Vec<u32>>>,
}

impl Default for Heap {
    fn default() -> Heap {
        Heap::new()
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap {
            strs: Slab::new(),
            lists: Slab::new(),
            tuples: Slab::new(),
            dicts: Slab::new(),
            sets: Slab::new(),
            funcs: Slab::new(),
            bounds: Slab::new(),
            classes: Slab::new(),
            instances: Slab::new(),
            natives: Slab::new(),
            modules: Slab::new(),
            interned: RefCell::new(HashMap::new()),
        }
    }

    // ---- constructors

    /// Creates a string value, interning short strings.
    pub fn new_str(&self, s: &str) -> Value {
        if s.len() <= MAX_INTERNED_STR {
            let h = fnv1a(s.as_bytes());
            if let Some(id) = self.intern_lookup(s, h) {
                return Value::Str(id);
            }
            let id = self.strs.alloc(StrObj {
                text: s.into(),
                hash: Cell::new(h),
            });
            self.interned.borrow_mut().entry(h).or_default().push(id);
            Value::Str(id)
        } else {
            Value::Str(self.strs.alloc(StrObj {
                text: s.into(),
                hash: Cell::new(0),
            }))
        }
    }

    /// Creates a string value from an owned `String` (no copy on the
    /// non-interned path).
    pub fn new_string(&self, s: String) -> Value {
        if s.len() <= MAX_INTERNED_STR {
            return self.new_str(&s);
        }
        Value::Str(self.strs.alloc(StrObj {
            text: s.into_boxed_str(),
            hash: Cell::new(0),
        }))
    }

    fn intern_lookup(&self, s: &str, hash: u64) -> Option<u32> {
        self.interned
            .borrow()
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.str(id) == s)
    }

    /// Creates a list value.
    pub fn new_list(&self, items: Vec<Value>) -> Value {
        Value::List(self.lists.alloc(RefCell::new(items)))
    }

    /// Creates a tuple value.
    pub fn new_tuple(&self, items: Vec<Value>) -> Value {
        Value::Tuple(self.tuples.alloc(items))
    }

    /// Creates a dict value from a prepared [`DictObj`].
    pub fn new_dict(&self, dict: DictObj) -> Value {
        Value::Dict(self.dicts.alloc(RefCell::new(dict)))
    }

    /// Creates a dict value from key/value pairs (later keys replace
    /// earlier equal keys, like repeated assignment).
    pub fn new_dict_from(&self, pairs: Vec<(Value, Value)>) -> Value {
        let mut d = DictObj::new();
        for (k, v) in pairs {
            d.set(self, k, v);
        }
        self.new_dict(d)
    }

    /// Creates a set value (caller guarantees uniqueness).
    pub fn new_set(&self, items: Vec<Value>) -> Value {
        Value::Set(self.sets.alloc(RefCell::new(items)))
    }

    /// Creates a function value.
    pub fn new_func(&self, func: FuncObj) -> Value {
        Value::Func(self.funcs.alloc(func))
    }

    /// Creates a bound method value.
    pub fn new_bound(&self, func: Value, recv: Value) -> Value {
        Value::BoundMethod(self.bounds.alloc(BoundObj { func, recv }))
    }

    /// Creates a class object, returning its id (wrap in
    /// [`Value::Class`] for a value).
    pub fn new_class(&self, class: ClassObj) -> u32 {
        self.classes.alloc(class)
    }

    /// Creates a class instance value.
    pub fn new_instance(&self, instance: InstanceObj) -> Value {
        Value::Instance(self.instances.alloc(instance))
    }

    /// Creates a named native-function value.
    pub fn new_native(&self, name: &str, imp: Rc<NativeImpl>) -> Value {
        Value::Native(self.natives.alloc(NativeObj::Fn {
            name: name.into(),
            imp,
        }))
    }

    /// Creates a built-in method value bound to `recv`. Each fetch
    /// allocates a fresh slot, matching Python (and the previous
    /// representation): two fetches of `s.upper` are distinct objects.
    pub fn new_method(&self, kind: crate::methods::MethodKind, recv: Value) -> Value {
        Value::Native(self.natives.alloc(NativeObj::Method { kind, recv }))
    }

    /// Creates a module namespace, returning its id (wrap in
    /// [`Value::Module`] for a value).
    pub fn new_module(&self, name: &str) -> u32 {
        self.modules.alloc(ModuleObj {
            name: name.to_string(),
            attrs: RefCell::new(Vec::new()),
        })
    }

    // ---- accessors

    /// String text for a `Value::Str` handle.
    pub fn str(&self, id: u32) -> &str {
        &self.strs.get(id).text
    }

    /// Cached FNV-1a hash of a string.
    pub fn str_hash(&self, id: u32) -> u64 {
        let obj = self.strs.get(id);
        let h = obj.hash.get();
        if h != 0 {
            return h;
        }
        let h = fnv1a(obj.text.as_bytes());
        obj.hash.set(h);
        h
    }

    /// List storage for a `Value::List` handle.
    pub fn list(&self, id: u32) -> &RefCell<Vec<Value>> {
        self.lists.get(id)
    }

    /// Tuple items for a `Value::Tuple` handle.
    pub fn tuple(&self, id: u32) -> &[Value] {
        self.tuples.get(id)
    }

    /// Dict storage for a `Value::Dict` handle.
    pub fn dict(&self, id: u32) -> &RefCell<DictObj> {
        self.dicts.get(id)
    }

    /// Set storage for a `Value::Set` handle.
    pub fn set(&self, id: u32) -> &RefCell<Vec<Value>> {
        self.sets.get(id)
    }

    /// Function object for a `Value::Func` handle.
    pub fn func(&self, id: u32) -> &FuncObj {
        self.funcs.get(id)
    }

    /// Bound-method object for a `Value::BoundMethod` handle.
    pub fn bound(&self, id: u32) -> &BoundObj {
        self.bounds.get(id)
    }

    /// Class object for a `Value::Class` handle.
    pub fn class(&self, id: u32) -> &ClassObj {
        self.classes.get(id)
    }

    /// Instance object for a `Value::Instance` handle.
    pub fn instance(&self, id: u32) -> &InstanceObj {
        self.instances.get(id)
    }

    /// Native object for a `Value::Native` handle.
    pub fn native(&self, id: u32) -> &NativeObj {
        self.natives.get(id)
    }

    /// Module object for a `Value::Module` handle.
    pub fn module(&self, id: u32) -> &ModuleObj {
        self.modules.get(id)
    }

    // ---- class helpers (need the heap to walk the base chain)

    /// Looks up a class attribute through the inheritance chain. Uses
    /// the non-inserting intern probe: a never-interned name cannot be
    /// a key of any symbol table.
    pub fn class_lookup(&self, class: u32, name: &str) -> Option<Value> {
        self.class_lookup_sym(class, try_intern(name)?)
    }

    /// Symbol-keyed class attribute lookup through the inheritance
    /// chain.
    pub fn class_lookup_sym(&self, class: u32, sym: Symbol) -> Option<Value> {
        let mut id = class;
        loop {
            let c = self.class(id);
            if let Some((_, v)) = c.attrs.borrow().iter().find(|(n, _)| *n == sym) {
                return Some(*v);
            }
            id = c.base?;
        }
    }

    /// True if `class` is `other` or a subclass of it (name equality
    /// also counts, matching the previous representation where
    /// same-named exception classes from different registrations
    /// matched).
    pub fn class_isa(&self, class: u32, other: u32) -> bool {
        let other_name = &self.class(other).name;
        let mut id = class;
        loop {
            if id == other {
                return true;
            }
            let c = self.class(id);
            if c.name == *other_name {
                return true;
            }
            match c.base {
                Some(base) => id = base,
                None => return false,
            }
        }
    }
}

/// Entry count past which a [`DictObj`] builds its hash index. Below
/// this a linear scan over the entry vec is faster than hashing.
const DICT_INDEX_THRESHOLD: usize = 8;

/// Insertion-ordered dictionary object.
///
/// Entries live in one insertion-ordered vec (iteration, `repr`, and
/// report output stay deterministic). Once the dict grows past
/// [`DICT_INDEX_THRESHOLD`], a `hash → entry indices` side index makes
/// string/number-keyed access O(1); unhashable keys (lists, dicts)
/// permanently degrade that dict to the linear path, preserving the old
/// anything-goes key semantics.
#[derive(Default)]
pub struct DictObj {
    entries: Vec<(Value, Value)>,
    index: Option<HashMap<u64, Vec<u32>>>,
    unindexable: bool,
}

impl DictObj {
    /// Creates an empty dict.
    pub fn new() -> DictObj {
        DictObj::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn find(&self, heap: &Heap, key: Value) -> Option<usize> {
        self.find_hashed(heap, key, || value_hash(heap, key))
    }

    /// `find` with the key hash supplied lazily, so callers that
    /// already computed it (the `set` path) hash only once.
    fn find_hashed(
        &self,
        heap: &Heap,
        key: Value,
        hash: impl FnOnce() -> Option<u64>,
    ) -> Option<usize> {
        if let Some(index) = &self.index {
            let h = hash()?;
            return index
                .get(&h)?
                .iter()
                .copied()
                .find(|&i| values_eq(heap, self.entries[i as usize].0, key))
                .map(|i| i as usize);
        }
        self.entries
            .iter()
            .position(|&(k, _)| values_eq(heap, k, key))
    }

    /// Looks up a key by Python equality.
    ///
    /// `find` handles both paths: hash-index probe when the index is
    /// live (an unhashable probe key cannot equal any indexed key, so
    /// the `None` short-circuit is exact), linear scan otherwise.
    pub fn get(&self, heap: &Heap, key: Value) -> Option<Value> {
        self.find(heap, key).map(|i| self.entries[i].1)
    }

    fn build_index(&mut self, heap: &Heap) {
        let mut index: HashMap<u64, Vec<u32>> = HashMap::with_capacity(self.entries.len());
        for (i, &(k, _)) in self.entries.iter().enumerate() {
            match value_hash(heap, k) {
                Some(h) => index.entry(h).or_default().push(i as u32),
                None => {
                    self.unindexable = true;
                    return;
                }
            }
        }
        self.index = Some(index);
    }

    /// Inserts or replaces a key.
    pub fn set(&mut self, heap: &Heap, key: Value, value: Value) {
        let key_hash = value_hash(heap, key);
        if key_hash.is_none() {
            // Unhashable key: this dict stays on the linear path.
            self.unindexable = true;
            self.index = None;
        } else if self.index.is_none()
            && !self.unindexable
            && self.entries.len() + 1 > DICT_INDEX_THRESHOLD
        {
            self.build_index(heap);
        }
        if let Some(i) = self.find_hashed(heap, key, || key_hash) {
            self.entries[i].1 = value;
            return;
        }
        let slot = self.entries.len() as u32;
        self.entries.push((key, value));
        if let (Some(index), Some(h)) = (&mut self.index, key_hash) {
            index.entry(h).or_default().push(slot);
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, heap: &Heap, key: Value) -> Option<Value> {
        let idx = self.find(heap, key)?;
        let (_, v) = self.entries.remove(idx);
        if self.index.is_some() {
            // Removal shifts every later entry; rebuilding keeps the
            // index simple and removal is rare next to lookup.
            self.build_index(heap);
        }
        Some(v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Value, Value)> {
        self.entries.iter()
    }
}

/// FNV-1a over raw bytes — shared by string hashing here and the
/// prepared-module source stamps in [`crate::prepare`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hashes a value consistently with [`values_eq`]'s coercions
/// (`1 == 1.0 == True` all hash alike), or `None` for unhashable
/// values. Mutable containers are unhashable; identity-compared values
/// (instances, classes, functions, modules) hash by handle (tagged per
/// slab, so `Instance#0` and `Class#0` hash apart).
pub fn value_hash(heap: &Heap, v: Value) -> Option<u64> {
    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    match v {
        Value::None => Some(mix(u64::MAX)),
        Value::Bool(b) => Some(mix(b as u64)),
        Value::Int(i) => {
            // An int whose f64 projection is lossy (|i| > 2^53) can
            // compare equal to a float (values_eq compares `i as f64`),
            // so such ints must hash through the same projection the
            // equality uses.
            let projected = (i as f64) as i64;
            Some(mix(if projected == i { i as u64 } else { projected as u64 }))
        }
        Value::Float(f) => {
            // Numeric coercion: a float equal to an int must hash as
            // that int (values_eq treats 2 == 2.0).
            if f.is_finite() && f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f)
            {
                Some(mix(f as i64 as u64))
            } else {
                Some(mix(f.to_bits()))
            }
        }
        Value::Str(s) => Some(heap.str_hash(s)),
        Value::Tuple(t) => {
            let mut h: u64 = 0x345C_91A7;
            for &item in heap.tuple(t) {
                h = mix(h ^ value_hash(heap, item)?);
            }
            Some(h)
        }
        Value::Instance(i) => Some(mix((1u64 << 32) | i as u64)),
        Value::Class(c) => Some(mix((2u64 << 32) | c as u64)),
        Value::Func(f) => Some(mix((3u64 << 32) | f as u64)),
        Value::Native(n) => Some(mix((4u64 << 32) | n as u64)),
        Value::Module(m) => Some(mix((5u64 << 32) | m as u64)),
        Value::List(_) | Value::Dict(_) | Value::Set(_) | Value::BoundMethod(_) => None,
    }
}

/// A user-defined function: the immutable prepared prototype (shared
/// across every call and every experiment that reuses the prepared
/// module) plus the capture environment of this particular `def`.
pub struct FuncObj {
    /// Prepared prototype: name, parameter slots, resolved body.
    pub proto: Arc<FuncProto>,
    /// Default values, evaluated once at `def` time (Python semantics),
    /// parallel to `proto.params`.
    pub defaults: Vec<Option<Value>>,
    /// The module globals this function closes over.
    pub globals: ScopeRef,
    /// Enclosing local scopes captured by closures (innermost last).
    pub captured: Vec<ScopeRef>,
}

impl FuncObj {
    /// Function name (for tracebacks and reprs).
    pub fn name(&self) -> &str {
        &self.proto.name
    }
}

/// A class object.
pub struct ClassObj {
    /// Class name.
    pub name: String,
    /// Single base class (slab id), if any.
    pub base: Option<u32>,
    /// Methods and class attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
    /// True for the built-in exception classes and user subclasses of
    /// them (set at class creation by walking `base`).
    pub is_exception: bool,
}

/// A class instance.
pub struct InstanceObj {
    /// The instance's class (slab id).
    pub class: u32,
    /// Instance attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
}

impl InstanceObj {
    /// Reads an instance attribute (not falling back to the class).
    pub fn get_attr(&self, name: &str) -> Option<Value> {
        self.get_attr_sym(try_intern(name)?)
    }

    /// Symbol-keyed instance attribute read.
    pub fn get_attr_sym(&self, sym: Symbol) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|&(_, v)| v)
    }

    /// Writes an instance attribute.
    pub fn set_attr(&self, name: &str, value: Value) {
        self.set_attr_sym(intern(name), value);
    }

    /// Symbol-keyed instance attribute write.
    pub fn set_attr_sym(&self, sym: Symbol, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            attrs.push((sym, value));
        }
    }
}

/// A native module namespace (e.g. the simulated `os`, `urllib`).
pub struct ModuleObj {
    /// Module name.
    pub name: String,
    /// Module attributes, symbol-keyed.
    pub attrs: RefCell<Vec<(Symbol, Value)>>,
}

impl ModuleObj {
    /// Reads a module attribute.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.get_sym(try_intern(name)?)
    }

    /// Symbol-keyed module attribute read.
    pub fn get_sym(&self, sym: Symbol) -> Option<Value> {
        self.attrs
            .borrow()
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|&(_, v)| v)
    }

    /// Writes a module attribute.
    pub fn set(&self, name: &str, value: Value) {
        self.set_sym(intern(name), value);
    }

    /// Symbol-keyed module attribute write.
    pub fn set_sym(&self, sym: Symbol, value: Value) {
        let mut attrs = self.attrs.borrow_mut();
        if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            attrs.push((sym, value));
        }
    }
}

/// Signature of a native function: `(vm, positional args, keyword args)`.
pub type NativeImpl =
    dyn Fn(&mut crate::vm::Vm, Vec<Value>, Vec<(String, Value)>) -> Result<Value, crate::exc::PyExc>;

/// A native callable: either a named Rust function, or a built-in
/// method kind bound to its receiver (the latter avoids allocating a
/// fresh closure per attribute fetch — the hot path for `l.append`,
/// `s.split`, etc.).
pub enum NativeObj {
    /// Named native function.
    Fn {
        /// Name (for error messages).
        name: Box<str>,
        /// Implementation.
        imp: Rc<NativeImpl>,
    },
    /// Built-in method on a primitive receiver.
    Method {
        /// Which method (dispatched in [`crate::methods`]).
        kind: crate::methods::MethodKind,
        /// The receiver.
        recv: Value,
    },
}

impl NativeObj {
    /// Callable name (for error messages and reprs).
    pub fn name(&self) -> &str {
        match self {
            NativeObj::Fn { name, .. } => name,
            NativeObj::Method { kind, .. } => kind.name(),
        }
    }
}

/// A mutable name→value scope shared by reference.
pub type ScopeRef = Rc<RefCell<Scope>>;

/// A flat symbol→value binding table. Compares are `u32` compares; the
/// string convenience methods intern on the way in and are meant for
/// native-module setup, not the interpreter hot path.
#[derive(Default)]
pub struct Scope {
    bindings: Vec<(Symbol, Value)>,
}

impl Scope {
    /// Creates an empty scope behind an `Rc<RefCell<..>>`.
    pub fn new_ref() -> ScopeRef {
        Rc::new(RefCell::new(Scope::default()))
    }

    /// Looks up a name (non-inserting probe; see [`try_intern`]).
    pub fn get(&self, name: &str) -> Option<Value> {
        self.get_sym(try_intern(name)?)
    }

    /// Symbol-keyed lookup.
    pub fn get_sym(&self, sym: Symbol) -> Option<Value> {
        self.bindings
            .iter()
            .find(|(n, _)| *n == sym)
            .map(|&(_, v)| v)
    }

    /// Binds a name.
    pub fn set(&mut self, name: &str, value: Value) {
        self.set_sym(intern(name), value);
    }

    /// Symbol-keyed binding.
    pub fn set_sym(&mut self, sym: Symbol, value: Value) {
        if let Some(slot) = self.bindings.iter_mut().find(|(n, _)| *n == sym) {
            slot.1 = value;
        } else {
            self.bindings.push((sym, value));
        }
    }

    /// Removes a binding, returning whether it existed.
    pub fn unset(&mut self, name: &str) -> bool {
        try_intern(name).is_some_and(|sym| self.unset_sym(sym))
    }

    /// Symbol-keyed removal.
    pub fn unset_sym(&mut self, sym: Symbol) -> bool {
        let before = self.bindings.len();
        self.bindings.retain(|(n, _)| *n != sym);
        self.bindings.len() != before
    }

    /// True if the name is bound.
    pub fn contains(&self, name: &str) -> bool {
        try_intern(name).is_some_and(|sym| self.contains_sym(sym))
    }

    /// Symbol-keyed membership test.
    pub fn contains_sym(&self, sym: Symbol) -> bool {
        self.bindings.iter().any(|(n, _)| *n == sym)
    }

    /// Snapshot of all bindings in insertion order (symbol keys).
    pub fn bindings_syms(&self) -> Vec<(Symbol, Value)> {
        self.bindings.clone()
    }
}

impl Value {
    /// Python type name (`type(x).__name__`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
            Value::Set(_) => "set",
            Value::Func(_) | Value::BoundMethod(_) | Value::Native(_) => "function",
            Value::Class(_) => "type",
            Value::Instance(_) => "instance",
            Value::Module(_) => "module",
        }
    }

    /// Python truthiness.
    pub fn truthy(self, heap: &Heap) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => b,
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            Value::Str(s) => !heap.str(s).is_empty(),
            Value::List(l) => !heap.list(l).borrow().is_empty(),
            Value::Tuple(t) => !heap.tuple(t).is_empty(),
            Value::Dict(d) => !heap.dict(d).borrow().is_empty(),
            Value::Set(s) => !heap.set(s).borrow().is_empty(),
            _ => true,
        }
    }

    /// `repr()` rendering.
    pub fn repr(self, heap: &Heap) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                let s = format!("{f}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            Value::Str(s) => format!(
                "'{}'",
                heap.str(s).replace('\\', "\\\\").replace('\'', "\\'")
            ),
            Value::List(l) => {
                let items: Vec<String> =
                    heap.list(l).borrow().iter().map(|v| v.repr(heap)).collect();
                format!("[{}]", items.join(", "))
            }
            Value::Tuple(t) => {
                let items: Vec<String> = heap.tuple(t).iter().map(|v| v.repr(heap)).collect();
                if items.len() == 1 {
                    format!("({},)", items[0])
                } else {
                    format!("({})", items.join(", "))
                }
            }
            Value::Dict(d) => {
                let items: Vec<String> = heap
                    .dict(d)
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.repr(heap), v.repr(heap)))
                    .collect();
                format!("{{{}}}", items.join(", "))
            }
            Value::Set(s) => {
                let items: Vec<String> =
                    heap.set(s).borrow().iter().map(|v| v.repr(heap)).collect();
                if items.is_empty() {
                    "set()".into()
                } else {
                    format!("{{{}}}", items.join(", "))
                }
            }
            Value::Func(f) => format!("<function {}>", heap.func(f).name()),
            Value::BoundMethod(b) => match heap.bound(b).func {
                Value::Func(f) => format!("<bound method {}>", heap.func(f).name()),
                Value::Native(n) => format!("<bound method {}>", heap.native(n).name()),
                other => format!("<bound method {}>", other.type_name()),
            },
            Value::Native(n) => format!("<built-in function {}>", heap.native(n).name()),
            Value::Class(c) => format!("<class '{}'>", heap.class(c).name),
            Value::Instance(i) => {
                format!("<{} instance>", heap.class(heap.instance(i).class).name)
            }
            Value::Module(m) => format!("<module '{}'>", heap.module(m).name),
        }
    }

    /// `str()` rendering (strings print bare, exceptions show message).
    pub fn to_display(self, heap: &Heap) -> String {
        match self {
            Value::Str(s) => heap.str(s).to_string(),
            Value::Instance(i) if heap.class(heap.instance(i).class).is_exception => {
                match heap
                    .instance(i)
                    .get_attr_sym(crate::intern::well_known::sym_message())
                {
                    Some(Value::Str(m)) => heap.str(m).to_string(),
                    Some(v) => v.to_display(heap),
                    None => String::new(),
                }
            }
            other => other.repr(heap),
        }
    }
}

/// Python `==` equality (deep, numeric-coercing).
pub fn values_eq(heap: &Heap, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => x as f64 == y,
        (Value::Bool(x), Value::Int(y)) | (Value::Int(y), Value::Bool(x)) => (x as i64) == y,
        (Value::Str(x), Value::Str(y)) => x == y || heap.str(x) == heap.str(y),
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (heap.list(x).borrow(), heap.list(y).borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(&a, &b)| values_eq(heap, a, b))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            let (x, y) = (heap.tuple(x), heap.tuple(y));
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(&a, &b)| values_eq(heap, a, b))
        }
        (Value::Dict(x), Value::Dict(y)) => {
            let (x, y) = (heap.dict(x).borrow(), heap.dict(y).borrow());
            x.len() == y.len()
                && x.iter()
                    .all(|&(k, v)| y.get(heap, k).is_some_and(|w| values_eq(heap, v, w)))
        }
        (Value::Set(x), Value::Set(y)) => {
            let (x, y) = (heap.set(x).borrow(), heap.set(y).borrow());
            x.len() == y.len()
                && x.iter()
                    .all(|&v| y.iter().any(|&w| values_eq(heap, v, w)))
        }
        (Value::Class(x), Value::Class(y)) => x == y,
        (Value::Instance(x), Value::Instance(y)) => x == y,
        (Value::Func(x), Value::Func(y)) => x == y,
        (Value::Native(x), Value::Native(y)) => x == y,
        (Value::Module(x), Value::Module(y)) => x == y,
        _ => false,
    }
}

/// Identity (`is` operator).
pub fn values_is(heap: &Heap, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::None, Value::None) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        // CPython interns small ints; our corpus relies only on
        // `is None` / `is True`, but int identity is harmless.
        (Value::Int(x), Value::Int(y)) => x == y,
        // Equal-content strings are `is`-identical (matching the old
        // representation); short strings usually share a handle anyway.
        (Value::Str(x), Value::Str(y)) => x == y || heap.str(x) == heap.str(y),
        (Value::List(x), Value::List(y)) => x == y,
        (Value::Dict(x), Value::Dict(y)) => x == y,
        (Value::Set(x), Value::Set(y)) => x == y,
        (Value::Tuple(x), Value::Tuple(y)) => x == y,
        (Value::Instance(x), Value::Instance(y)) => x == y,
        (Value::Class(x), Value::Class(y)) => x == y,
        _ => false,
    }
}

/// Total ordering for `<`/`sorted()` on comparable values.
/// Returns `None` for incomparable types (→ `TypeError`).
pub fn values_cmp(heap: &Heap, a: Value, b: Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(&y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(&y),
        (Value::Int(x), Value::Float(y)) => (x as f64).partial_cmp(&y),
        (Value::Float(x), Value::Int(y)) => x.partial_cmp(&(y as f64)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(&y)),
        (Value::Str(x), Value::Str(y)) => Some(heap.str(x).cmp(heap.str(y))),
        (Value::List(x), Value::List(y)) => {
            let (x, y) = (heap.list(x).borrow(), heap.list(y).borrow());
            for (&a, &b) in x.iter().zip(y.iter()) {
                match values_cmp(heap, a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            let (x, y) = (heap.tuple(x), heap.tuple(y));
            for (&a, &b) in x.iter().zip(y.iter()) {
                match values_cmp(heap, a, b)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(x.len().cmp(&y.len()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        let h = Heap::new();
        assert!(!Value::None.truthy(&h));
        assert!(!Value::Int(0).truthy(&h));
        assert!(Value::Int(3).truthy(&h));
        assert!(!h.new_str("").truthy(&h));
        assert!(h.new_str("x").truthy(&h));
        assert!(!h.new_list(vec![]).truthy(&h));
        assert!(h.new_list(vec![Value::Int(1)]).truthy(&h));
    }

    #[test]
    fn equality_coerces_numbers() {
        let h = Heap::new();
        assert!(values_eq(&h, Value::Int(2), Value::Float(2.0)));
        assert!(values_eq(&h, Value::Bool(true), Value::Int(1)));
        assert!(!values_eq(&h, Value::Int(2), h.new_str("2")));
    }

    #[test]
    fn value_is_copy_and_small() {
        assert_eq!(std::mem::size_of::<Value>(), 16);
        fn assert_copy<T: Copy>() {}
        assert_copy::<Value>();
    }

    #[test]
    fn short_strings_are_interned_long_are_not() {
        let h = Heap::new();
        let (a, b) = (h.new_str("hello"), h.new_string("hello".to_string()));
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => assert_eq!(x, y, "short strings share a handle"),
            _ => unreachable!(),
        }
        let long = "x".repeat(100);
        let (c, d) = (h.new_str(&long), h.new_str(&long));
        match (c, d) {
            (Value::Str(x), Value::Str(y)) => assert_ne!(x, y, "long strings allocate fresh"),
            _ => unreachable!(),
        }
        // Content equality and identity still hold either way.
        assert!(values_eq(&h, c, d));
        assert!(values_is(&h, c, d));
    }

    #[test]
    fn slab_references_survive_growth() {
        let h = Heap::new();
        let first = match h.new_list(vec![Value::Int(42)]) {
            Value::List(id) => id,
            _ => unreachable!(),
        };
        let early: *const _ = h.list(first);
        // Push enough lists to span multiple chunks.
        for i in 0..(SLAB_CHUNK as i64 * 3) {
            h.new_list(vec![Value::Int(i)]);
        }
        assert_eq!(early, h.list(first) as *const _, "slot address is stable");
        assert!(matches!(h.list(first).borrow()[0], Value::Int(42)));
    }

    #[test]
    fn dict_insertion_order_preserved() {
        let h = Heap::new();
        let mut d = DictObj::new();
        d.set(&h, h.new_str("b"), Value::Int(1));
        d.set(&h, h.new_str("a"), Value::Int(2));
        d.set(&h, h.new_str("b"), Value::Int(3));
        let keys: Vec<String> = d.iter().map(|&(k, _)| k.to_display(&h)).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert!(values_eq(&h, d.get(&h, h.new_str("b")).unwrap(), Value::Int(3)));
    }

    #[test]
    fn dict_index_kicks_in_and_preserves_semantics() {
        let h = Heap::new();
        let mut d = DictObj::new();
        for i in 0..100 {
            d.set(&h, h.new_string(format!("k{i}")), Value::Int(i));
        }
        assert!(d.index.is_some(), "index built past the threshold");
        assert!(values_eq(&h, d.get(&h, h.new_str("k73")).unwrap(), Value::Int(73)));
        assert!(d.get(&h, h.new_str("missing")).is_none());
        // Overwrite keeps position; remove keeps order and lookups.
        d.set(&h, h.new_str("k10"), Value::Int(-1));
        assert!(values_eq(&h, d.get(&h, h.new_str("k10")).unwrap(), Value::Int(-1)));
        assert!(d.remove(&h, h.new_str("k50")).is_some());
        assert!(d.get(&h, h.new_str("k50")).is_none());
        assert!(values_eq(&h, d.get(&h, h.new_str("k99")).unwrap(), Value::Int(99)));
        let keys: Vec<String> = d.iter().map(|&(k, _)| k.to_display(&h)).collect();
        assert_eq!(keys[0], "k0");
        assert_eq!(keys.len(), 99);
    }

    #[test]
    fn dict_numeric_coercion_with_index() {
        let h = Heap::new();
        let mut d = DictObj::new();
        for i in 0..20 {
            d.set(&h, Value::Int(i), Value::Int(i * 10));
        }
        // 5.0 and True coerce to existing int keys even via the index.
        assert!(values_eq(&h, d.get(&h, Value::Float(5.0)).unwrap(), Value::Int(50)));
        assert!(values_eq(&h, d.get(&h, Value::Bool(true)).unwrap(), Value::Int(10)));
        d.set(&h, Value::Float(7.0), Value::Int(-7));
        assert_eq!(d.len(), 20, "7.0 replaced the int 7 entry");
        assert!(values_eq(&h, d.get(&h, Value::Int(7)).unwrap(), Value::Int(-7)));
    }

    #[test]
    fn dict_unhashable_keys_fall_back_to_linear() {
        let h = Heap::new();
        let mut d = DictObj::new();
        for i in 0..20 {
            d.set(&h, Value::Int(i), Value::Int(i));
        }
        let list_key = h.new_list(vec![Value::Int(1)]);
        d.set(&h, list_key, h.new_str("by-list"));
        assert!(d.index.is_none(), "unhashable key drops the index");
        assert!(values_eq(&h, d.get(&h, list_key).unwrap(), h.new_str("by-list")));
        assert!(values_eq(&h, d.get(&h, Value::Int(12)).unwrap(), Value::Int(12)));
    }

    #[test]
    fn value_hash_matches_values_eq() {
        let h = Heap::new();
        let pairs = [
            (Value::Int(2), Value::Float(2.0)),
            (Value::Bool(true), Value::Int(1)),
            (h.new_str("x"), h.new_str("x")),
            (
                h.new_tuple(vec![Value::Int(1), h.new_str("a")]),
                h.new_tuple(vec![Value::Float(1.0), h.new_str("a")]),
            ),
        ];
        for &(a, b) in &pairs {
            assert!(values_eq(&h, a, b));
            assert_eq!(value_hash(&h, a), value_hash(&h, b), "{a:?} vs {b:?}");
        }
        assert!(value_hash(&h, h.new_list(vec![])).is_none());
    }

    #[test]
    fn value_hash_agrees_with_eq_beyond_f64_precision() {
        // 2^53 + 1 projects lossily to 2^53 as f64, so values_eq treats
        // it as equal to Float(2^53): the hashes must agree too, or the
        // dict index would miss keys the linear scan matched.
        let h = Heap::new();
        let big_int = Value::Int((1i64 << 53) + 1);
        let alias_float = Value::Float((1i64 << 53) as f64);
        assert!(values_eq(&h, big_int, alias_float));
        assert_eq!(value_hash(&h, big_int), value_hash(&h, alias_float));
        // And through an indexed dict:
        let mut d = DictObj::new();
        for i in 0..10 {
            d.set(&h, Value::Int(i), Value::Int(i));
        }
        d.set(&h, big_int, h.new_str("big"));
        assert!(d.index.is_some());
        assert!(values_eq(&h, d.get(&h, alias_float).unwrap(), h.new_str("big")));
        d.set(&h, alias_float, h.new_str("replaced"));
        assert_eq!(d.len(), 11, "aliasing float replaced, not duplicated");
    }

    #[test]
    fn repr_matches_python() {
        let h = Heap::new();
        assert_eq!(
            h.new_list(vec![Value::Int(1), h.new_str("a")]).repr(&h),
            "[1, 'a']"
        );
        assert_eq!(h.new_tuple(vec![Value::Int(1)]).repr(&h), "(1,)");
        assert_eq!(Value::Float(2.0).repr(&h), "2.0");
    }

    #[test]
    fn compare_orders_sequences_lexicographically() {
        let h = Heap::new();
        let a = h.new_list(vec![Value::Int(1), Value::Int(2)]);
        let b = h.new_list(vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(values_cmp(&h, a, b), Some(std::cmp::Ordering::Less));
        assert!(values_cmp(&h, Value::Int(1), h.new_str("x")).is_none());
    }
}
