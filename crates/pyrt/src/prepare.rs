//! The one-shot prepare/resolve pass.
//!
//! Before a module executes, this pass walks its AST exactly once and
//! resolves every identifier:
//!
//! * each `def`/`lambda`/`class` body becomes a [`FuncProto`] — name,
//!   parameter slots, `global` declarations, and an [`Arc`]-shared body
//!   (cloned once here instead of once per `def` execution),
//! * every local of a non-capturing function gets a **slot index** so
//!   its frame is a dense `Vec<Option<Value>>` instead of a name→value
//!   scan table,
//! * every `Name` and `Attribute` node gets a [`NameRes`] entry in a
//!   dense [`NameTable`] keyed by AST `NodeId`, so the interpreter
//!   never compares strings (or even hashes) on the hot path.
//!
//! Functions whose locals can escape — those containing a nested `def`,
//! a `lambda`, or a list comprehension (whose leaky write-only target
//! semantics predate this pass and are preserved bit-for-bit) — keep a
//! dynamic symbol-keyed scope so closures capture by reference exactly
//! as before. Class bodies always use a dynamic scope.
//!
//! The result ([`PreparedModule`]) is immutable, `Send + Sync`, and
//! cacheable: the campaign layer prepares each module once per campaign
//! (and memoizes across campaigns) instead of re-analyzing identical
//! ASTs in every experiment.

use crate::intern::{intern, Symbol};
use pysrc::ast::*;
use std::collections::HashMap;
use std::sync::Arc;

/// How a `Name` (or `Attribute`) node resolves, decided at prepare time.
#[derive(Clone, Copy, Debug)]
pub enum NameRes {
    /// Not covered by the table (synthesized node): resolve dynamically.
    Unprepared,
    /// A slot-allocated local of a non-capturing function.
    Local {
        /// Index into the frame's slot vector.
        slot: u32,
        /// The name, for error messages and fallbacks.
        sym: Symbol,
    },
    /// A local by assignment analysis, living in a dynamic scope
    /// (capturing functions and class bodies).
    DynLocal(Symbol),
    /// Not local: search captured scopes, then globals, then builtins.
    Cell(Symbol),
    /// Module-level name: globals then builtins.
    Global(Symbol),
    /// Declared `global` inside a function: globals then builtins.
    GlobalDecl(Symbol),
    /// The attribute name of an `Attribute` node.
    Attr(Symbol),
}

/// Dense `NodeId → NameRes` side table for one module (or one
/// on-the-fly prepared function). Lookup is a bounds check + index.
#[derive(Debug, Default)]
pub struct NameTable {
    base: u32,
    entries: Vec<NameRes>,
}

impl NameTable {
    fn from_pairs(pairs: &[(u32, NameRes)]) -> NameTable {
        let Some(base) = pairs.iter().map(|(id, _)| *id).min() else {
            return NameTable::default();
        };
        let max = pairs.iter().map(|(id, _)| *id).max().unwrap_or(base);
        let mut entries = vec![NameRes::Unprepared; (max - base + 1) as usize];
        for (id, res) in pairs {
            entries[(id - base) as usize] = *res;
        }
        NameTable { base, entries }
    }

    /// Resolution for a node, or [`NameRes::Unprepared`] if unknown.
    #[inline]
    pub fn res(&self, id: NodeId) -> NameRes {
        match self.entries.get(id.0.wrapping_sub(self.base) as usize) {
            Some(r) => *r,
            None => NameRes::Unprepared,
        }
    }
}

/// A prepared parameter: symbol, destination slot, and kind.
#[derive(Clone, Copy, Debug)]
pub struct ProtoParam {
    /// Parameter name.
    pub sym: Symbol,
    /// Destination slot in a slot frame (index into `FuncProto::slots`);
    /// ignored by dynamic frames.
    pub slot: u32,
    /// Positional / `*args` / `**kwargs`.
    pub kind: ParamKind,
}

/// The immutable, shareable prototype of one scope (function, lambda,
/// class body, or module top level).
#[derive(Debug)]
pub struct FuncProto {
    /// Name for tracebacks (`<module>`, `<lambda>`, class or def name).
    pub name: String,
    /// Prepared parameters in declaration order (empty for classes and
    /// modules).
    pub params: Vec<ProtoParam>,
    /// Body statements, cloned out of the AST exactly once. For class
    /// bodies and module protos this is empty — they execute the AST
    /// in place.
    pub body: Arc<Vec<Stmt>>,
    /// Slot → name mapping for slot frames (empty when `dynamic`).
    pub slots: Vec<Symbol>,
    /// All assignment-analysis locals including params (used by dynamic
    /// frames and by the fallback resolution path).
    pub local_syms: Vec<Symbol>,
    /// Names declared `global` in the body.
    pub global_decls: Vec<Symbol>,
    /// Per-module resolution table shared by every proto of the module.
    pub table: Arc<NameTable>,
    /// True when the frame must keep a dynamic scope: the body contains
    /// a nested `def`/`lambda` (closures capture the scope by
    /// reference) or a list comprehension (whose target writes into the
    /// dynamic scope without becoming a readable local — preserved,
    /// see module docs).
    pub dynamic: bool,
    /// Lazily compiled bytecode for this scope's body (see
    /// [`crate::compile`]); shared by every VM running the proto.
    pub(crate) compiled: std::sync::OnceLock<Arc<crate::ir::CodeObject>>,
}

impl FuncProto {
    /// Slot index of a symbol, if it is a slot-allocated local.
    pub fn slot_of(&self, sym: Symbol) -> Option<u32> {
        self.slots.iter().position(|s| *s == sym).map(|i| i as u32)
    }

    /// An empty dynamic proto (used for ad-hoc module frames created
    /// without a prepare pass; everything falls back to dynamic
    /// resolution).
    pub fn empty_module() -> Arc<FuncProto> {
        use std::sync::OnceLock;
        static EMPTY: OnceLock<Arc<FuncProto>> = OnceLock::new();
        EMPTY
            .get_or_init(|| {
                Arc::new(FuncProto {
                    name: "<module>".to_string(),
                    params: Vec::new(),
                    body: Arc::new(Vec::new()),
                    slots: Vec::new(),
                    local_syms: Vec::new(),
                    global_decls: Vec::new(),
                    table: Arc::new(NameTable::default()),
                    dynamic: true,
                    compiled: std::sync::OnceLock::new(),
                })
            })
            .clone()
    }
}

/// A fully prepared module: the AST plus every scope's prototype.
#[derive(Debug)]
pub struct PreparedModule {
    /// The parsed module this was prepared from.
    pub module: Arc<Module>,
    /// Prototype for the module top level.
    pub module_proto: Arc<FuncProto>,
    /// Prototypes keyed by defining node id (`FuncDef`/`ClassDef`
    /// statement id, `Lambda` expression id).
    pub protos: HashMap<u32, Arc<FuncProto>>,
    /// Hash ([`source_hash64`]) of the source text this module was
    /// parsed from, when known. Consumers substituting this artifact
    /// for a source file (the sandbox deploy fast path) verify it so a
    /// stale artifact can never silently replace changed source.
    pub source_hash: Option<u64>,
}

/// FNV-1a hash of a source text, for [`PreparedModule::source_hash`].
pub fn source_hash64(text: &str) -> u64 {
    crate::value::fnv1a(text.as_bytes())
}

/// Prepares a module for execution (one AST walk), producing the
/// shareable, cacheable artifact (without a source-text stamp; see
/// [`prepare_hashed`]).
pub fn prepare(module: Arc<Module>) -> Arc<PreparedModule> {
    let (module_proto, protos) = prepare_ast(&module);
    Arc::new(PreparedModule {
        module,
        module_proto,
        protos,
        source_hash: None,
    })
}

/// Prepares a module and stamps it with the hash of the source text it
/// was parsed from, enabling deploy-time staleness verification.
pub fn prepare_hashed(module: Arc<Module>, source_text: &str) -> Arc<PreparedModule> {
    let (module_proto, protos) = prepare_ast(&module);
    Arc::new(PreparedModule {
        module,
        module_proto,
        protos,
        source_hash: Some(source_hash64(source_text)),
    })
}

/// Prepares a module AST in place (no ownership transfer): returns the
/// module-level prototype and the prototypes of every nested scope.
pub fn prepare_ast(module: &Module) -> (Arc<FuncProto>, HashMap<u32, Arc<FuncProto>>) {
    // Bulk-intern every identifier of the module under one interner
    // write lock; the per-identifier `intern` calls during resolution
    // then all hit the read-lock fast path.
    let mut idents: Vec<&str> = Vec::new();
    pysrc::visit::walk_identifiers(&module.body, &mut |n| idents.push(n));
    crate::intern::intern_all(idents);
    let mut cx = PrepareCx::default();
    cx.resolve_block(&module.body, &ScopeInfo::module());
    let table = Arc::new(NameTable::from_pairs(&cx.resolutions));
    let module_proto = Arc::new(FuncProto {
        name: "<module>".to_string(),
        params: Vec::new(),
        body: Arc::new(Vec::new()),
        slots: Vec::new(),
        local_syms: Vec::new(),
        global_decls: Vec::new(),
        table: table.clone(),
        dynamic: true,
        compiled: std::sync::OnceLock::new(),
    });
    let protos = cx
        .protos
        .into_iter()
        .map(|(id, p)| {
            (
                id,
                Arc::new(FuncProto {
                    table: table.clone(),
                    ..p
                }),
            )
        })
        .collect();
    (module_proto, protos)
}

/// Prepares a single function on the fly (safety net for code executed
/// without a module-level prepare pass, e.g. ad-hoc frames in tests).
/// Returns the function's proto plus protos for anything nested in it.
pub fn prepare_function(
    name: &str,
    params: &[Param],
    body: &[Stmt],
) -> (Arc<FuncProto>, HashMap<u32, Arc<FuncProto>>) {
    let mut cx = PrepareCx::default();
    let raw = cx.resolve_function(name, params, body);
    finish_on_the_fly(cx, raw)
}

/// Prepares a single lambda on the fly (same safety net as
/// [`prepare_function`]).
pub fn prepare_lambda(
    params: &[Param],
    body: &Expr,
) -> (Arc<FuncProto>, HashMap<u32, Arc<FuncProto>>) {
    let mut cx = PrepareCx::default();
    let raw = cx.resolve_lambda(params, body);
    finish_on_the_fly(cx, raw)
}

/// Prepares a single class body on the fly.
pub fn prepare_class(
    name: &str,
    body: &[Stmt],
) -> (Arc<FuncProto>, HashMap<u32, Arc<FuncProto>>) {
    let mut cx = PrepareCx::default();
    let raw = cx.resolve_class(name, body);
    finish_on_the_fly(cx, raw)
}

fn finish_on_the_fly(
    cx: PrepareCx,
    raw: FuncProto,
) -> (Arc<FuncProto>, HashMap<u32, Arc<FuncProto>>) {
    let table = Arc::new(NameTable::from_pairs(&cx.resolutions));
    let proto = Arc::new(FuncProto {
        table: table.clone(),
        ..raw
    });
    let nested = cx
        .protos
        .into_iter()
        .map(|(id, p)| {
            (
                id,
                Arc::new(FuncProto {
                    table: table.clone(),
                    ..p
                }),
            )
        })
        .collect();
    (proto, nested)
}

/// What kind of scope the resolver is currently inside.
struct ScopeInfo {
    kind: ScopeKind,
    /// Locals of this scope (assignment analysis + params).
    locals: Vec<Symbol>,
    /// `global`-declared names of this scope.
    global_decls: Vec<Symbol>,
    /// Slot allocation, parallel to `locals`, for slot frames.
    slotted: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum ScopeKind {
    Module,
    Function,
    Class,
}

impl ScopeInfo {
    fn module() -> ScopeInfo {
        ScopeInfo {
            kind: ScopeKind::Module,
            locals: Vec::new(),
            global_decls: Vec::new(),
            slotted: false,
        }
    }
}

#[derive(Default)]
struct PrepareCx {
    resolutions: Vec<(u32, NameRes)>,
    protos: HashMap<u32, FuncProto>,
}

impl PrepareCx {
    fn record(&mut self, id: NodeId, res: NameRes) {
        if id != NodeId::DUMMY {
            self.resolutions.push((id.0, res));
        }
    }

    fn resolve_name(&mut self, id: NodeId, name: &str, scope: &ScopeInfo) {
        let sym = intern(name);
        let res = if scope.global_decls.contains(&sym) {
            NameRes::GlobalDecl(sym)
        } else {
            match scope.kind {
                ScopeKind::Module => NameRes::Global(sym),
                ScopeKind::Function | ScopeKind::Class => {
                    if scope.locals.contains(&sym) {
                        if scope.slotted {
                            let slot = scope
                                .locals
                                .iter()
                                .position(|s| *s == sym)
                                .expect("checked contains") as u32;
                            NameRes::Local { slot, sym }
                        } else {
                            NameRes::DynLocal(sym)
                        }
                    } else {
                        NameRes::Cell(sym)
                    }
                }
            }
        };
        self.record(id, res);
    }

    /// Resolves all expressions of one scope's statement block and
    /// prepares nested scopes.
    fn resolve_block(&mut self, body: &[Stmt], scope: &ScopeInfo) {
        for stmt in body {
            self.resolve_stmt(stmt, scope);
        }
    }

    fn resolve_stmt(&mut self, stmt: &Stmt, scope: &ScopeInfo) {
        match &stmt.kind {
            StmtKind::Expr(e) => self.resolve_expr(e, scope),
            StmtKind::Assign { targets, value } => {
                for t in targets {
                    self.resolve_expr(t, scope);
                }
                self.resolve_expr(value, scope);
            }
            StmtKind::AugAssign { target, value, .. } => {
                self.resolve_expr(target, scope);
                self.resolve_expr(value, scope);
            }
            StmtKind::Return(v) => {
                if let Some(v) = v {
                    self.resolve_expr(v, scope);
                }
            }
            StmtKind::Pass | StmtKind::Break | StmtKind::Continue | StmtKind::Global(_) => {}
            StmtKind::Del(targets) => {
                for t in targets {
                    self.resolve_expr(t, scope);
                }
            }
            StmtKind::Assert { test, msg } => {
                self.resolve_expr(test, scope);
                if let Some(m) = msg {
                    self.resolve_expr(m, scope);
                }
            }
            StmtKind::Import(_) | StmtKind::FromImport { .. } => {
                // Imports bind by plain string; the write path falls
                // back to symbol resolution against the proto.
            }
            StmtKind::If { branches, orelse } => {
                for (test, body) in branches {
                    self.resolve_expr(test, scope);
                    self.resolve_block(body, scope);
                }
                self.resolve_block(orelse, scope);
            }
            StmtKind::While { test, body, orelse } => {
                self.resolve_expr(test, scope);
                self.resolve_block(body, scope);
                self.resolve_block(orelse, scope);
            }
            StmtKind::For {
                target,
                iter,
                body,
                orelse,
            } => {
                self.resolve_expr(target, scope);
                self.resolve_expr(iter, scope);
                self.resolve_block(body, scope);
                self.resolve_block(orelse, scope);
            }
            StmtKind::FuncDef { name, params, body } => {
                // Defaults evaluate at `def` time in the enclosing scope.
                for p in params {
                    if let Some(d) = &p.default {
                        self.resolve_expr(d, scope);
                    }
                }
                let proto = self.resolve_function(name, params, body);
                self.protos.insert(stmt.id.0, proto);
            }
            StmtKind::ClassDef { name, bases, body } => {
                for b in bases {
                    self.resolve_expr(b, scope);
                }
                let proto = self.resolve_class(name, body);
                self.protos.insert(stmt.id.0, proto);
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                self.resolve_block(body, scope);
                for h in handlers {
                    if let Some(t) = &h.exc_type {
                        self.resolve_expr(t, scope);
                    }
                    self.resolve_block(&h.body, scope);
                }
                self.resolve_block(orelse, scope);
                self.resolve_block(finalbody, scope);
            }
            StmtKind::Raise { exc, cause } => {
                if let Some(e) = exc {
                    self.resolve_expr(e, scope);
                }
                if let Some(c) = cause {
                    self.resolve_expr(c, scope);
                }
            }
            StmtKind::With { items, body } => {
                for (ctx, target) in items {
                    self.resolve_expr(ctx, scope);
                    if let Some(t) = target {
                        self.resolve_expr(t, scope);
                    }
                }
                self.resolve_block(body, scope);
            }
        }
    }

    fn resolve_expr(&mut self, expr: &Expr, scope: &ScopeInfo) {
        match &expr.kind {
            ExprKind::Name(n) => self.resolve_name(expr.id, n, scope),
            ExprKind::Attribute { value, attr } => {
                self.resolve_expr(value, scope);
                self.record(expr.id, NameRes::Attr(intern(attr)));
            }
            ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Bool(_) | ExprKind::NoneLit => {}
            ExprKind::Subscript { value, index } => {
                self.resolve_expr(value, scope);
                self.resolve_expr(index, scope);
            }
            ExprKind::Slice { lower, upper, step } => {
                for part in [lower, upper, step].into_iter().flatten() {
                    self.resolve_expr(part, scope);
                }
            }
            ExprKind::Call { func, args } => {
                self.resolve_expr(func, scope);
                for a in args {
                    self.resolve_expr(a.value(), scope);
                }
            }
            ExprKind::Unary { operand, .. } => self.resolve_expr(operand, scope),
            ExprKind::Binary { left, right, .. } => {
                self.resolve_expr(left, scope);
                self.resolve_expr(right, scope);
            }
            ExprKind::BoolOp { values, .. } => {
                for v in values {
                    self.resolve_expr(v, scope);
                }
            }
            ExprKind::Compare {
                left, comparators, ..
            } => {
                self.resolve_expr(left, scope);
                for c in comparators {
                    self.resolve_expr(c, scope);
                }
            }
            ExprKind::Lambda { params, body } => {
                for p in params {
                    if let Some(d) = &p.default {
                        self.resolve_expr(d, scope);
                    }
                }
                let proto = self.resolve_lambda(params, body);
                self.protos.insert(expr.id.0, proto);
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.resolve_expr(test, scope);
                self.resolve_expr(body, scope);
                self.resolve_expr(orelse, scope);
            }
            ExprKind::Tuple(items) | ExprKind::List(items) | ExprKind::Set(items) => {
                for i in items {
                    self.resolve_expr(i, scope);
                }
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.resolve_expr(k, scope);
                    self.resolve_expr(v, scope);
                }
            }
            ExprKind::ListComp {
                elt,
                target,
                iter,
                ifs,
            } => {
                // The comprehension target writes into the scope but is
                // *not* an assignment-analysis local (pre-refactor
                // semantics, preserved): resolve it as a plain name.
                self.resolve_expr(target, scope);
                self.resolve_expr(iter, scope);
                for cond in ifs {
                    self.resolve_expr(cond, scope);
                }
                self.resolve_expr(elt, scope);
            }
            ExprKind::Starred(inner) => self.resolve_expr(inner, scope),
        }
    }

    /// Prepares one function scope and returns its proto (table is
    /// patched in by the caller once the whole module is resolved).
    fn resolve_function(&mut self, name: &str, params: &[Param], body: &[Stmt]) -> FuncProto {
        let global_decls = syms(&crate::interp::collect_global_decls(body));
        let mut local_names = crate::interp::collect_assigned_names(body);
        for p in params {
            if !local_names.iter().any(|n| n == &p.name) {
                local_names.push(p.name.clone());
            }
        }
        let local_syms = syms(&local_names);
        // A parameter that is also declared `global` is degenerate
        // (CPython rejects it at compile time; the old interpreter
        // bound the argument into a locals scope that reads never
        // consulted). It has no slot, so a slot frame would misbind it
        // — keep such functions on the dynamic scope, which reproduces
        // the old behavior exactly.
        let param_is_global = params
            .iter()
            .any(|p| global_decls.contains(&intern(&p.name)));
        let dynamic = param_is_global || block_needs_dynamic_scope(body);
        // Slot allocation excludes `global`-declared names (they always
        // resolve to the module scope).
        let slots: Vec<Symbol> = if dynamic {
            Vec::new()
        } else {
            local_syms
                .iter()
                .copied()
                .filter(|s| !global_decls.contains(s))
                .collect()
        };
        let scope = ScopeInfo {
            kind: ScopeKind::Function,
            locals: if dynamic { local_syms.clone() } else { slots.clone() },
            global_decls: global_decls.clone(),
            slotted: !dynamic,
        };
        self.resolve_block(body, &scope);
        let proto_params = params
            .iter()
            .map(|p| {
                let sym = intern(&p.name);
                ProtoParam {
                    sym,
                    slot: slots.iter().position(|s| *s == sym).unwrap_or(0) as u32,
                    kind: p.kind,
                }
            })
            .collect();
        FuncProto {
            name: name.to_string(),
            params: proto_params,
            body: Arc::new(body.to_vec()),
            slots,
            local_syms,
            global_decls,
            table: Arc::new(NameTable::default()),
            dynamic,
            compiled: std::sync::OnceLock::new(),
        }
    }

    /// Prepares a lambda: a function whose body is a synthesized
    /// `return <expr>` statement, created once here instead of on every
    /// evaluation of the lambda expression.
    fn resolve_lambda(&mut self, params: &[Param], body: &Expr) -> FuncProto {
        let ret = Stmt::synth(StmtKind::Return(Some(body.clone())));
        self.resolve_function("<lambda>", params, std::slice::from_ref(&ret))
    }

    /// Prepares a class body: always a dynamic scope (the class dict).
    fn resolve_class(&mut self, name: &str, body: &[Stmt]) -> FuncProto {
        let global_decls = syms(&crate::interp::collect_global_decls(body));
        let local_syms = syms(&crate::interp::collect_assigned_names(body));
        let scope = ScopeInfo {
            kind: ScopeKind::Class,
            locals: local_syms.clone(),
            global_decls: global_decls.clone(),
            slotted: false,
        };
        self.resolve_block(body, &scope);
        FuncProto {
            name: name.to_string(),
            params: Vec::new(),
            body: Arc::new(Vec::new()),
            slots: Vec::new(),
            local_syms,
            global_decls,
            table: Arc::new(NameTable::default()),
            dynamic: true,
            compiled: std::sync::OnceLock::new(),
        }
    }
}

fn syms(names: &[String]) -> Vec<Symbol> {
    crate::intern::intern_all(names.iter().map(String::as_str))
}

/// Does this scope body force a dynamic (capturable) locals scope?
///
/// True when the body contains a nested `def` or `lambda` (either may
/// capture this scope by reference) or a list comprehension (its target
/// write must stay invisible to assignment analysis — pre-refactor
/// behavior). The check does not descend into nested `def` or `class`
/// bodies: those are separate scopes that capture the *class/def
/// execution* environment, not this frame's slot storage.
fn block_needs_dynamic_scope(body: &[Stmt]) -> bool {
    fn expr_has_lambda_or_comp(e: &Expr) -> bool {
        let mut found = false;
        pysrc::visit::walk_expr(e, &mut |ex| {
            if matches!(ex.kind, ExprKind::Lambda { .. } | ExprKind::ListComp { .. }) {
                found = true;
            }
        });
        found
    }
    fn walk(body: &[Stmt]) -> bool {
        body.iter().any(|s| match &s.kind {
            // A nested def itself forces dynamic scope.
            StmtKind::FuncDef { .. } => true,
            // Class bodies don't capture this frame, but their base
            // expressions evaluate here.
            StmtKind::ClassDef { bases, .. } => bases.iter().any(expr_has_lambda_or_comp),
            StmtKind::If { branches, orelse } => {
                branches
                    .iter()
                    .any(|(t, b)| expr_has_lambda_or_comp(t) || walk(b))
                    || walk(orelse)
            }
            StmtKind::While { test, body, orelse } => {
                expr_has_lambda_or_comp(test) || walk(body) || walk(orelse)
            }
            StmtKind::For {
                target,
                iter,
                body,
                orelse,
            } => {
                expr_has_lambda_or_comp(target)
                    || expr_has_lambda_or_comp(iter)
                    || walk(body)
                    || walk(orelse)
            }
            StmtKind::Try {
                body,
                handlers,
                orelse,
                finalbody,
            } => {
                walk(body)
                    || handlers.iter().any(|h| {
                        h.exc_type.as_ref().is_some_and(expr_has_lambda_or_comp)
                            || walk(&h.body)
                    })
                    || walk(orelse)
                    || walk(finalbody)
            }
            StmtKind::With { items, body } => {
                items.iter().any(|(c, t)| {
                    expr_has_lambda_or_comp(c) || t.as_ref().is_some_and(expr_has_lambda_or_comp)
                }) || walk(body)
            }
            StmtKind::Expr(e) => expr_has_lambda_or_comp(e),
            StmtKind::Assign { targets, value } => {
                targets.iter().any(expr_has_lambda_or_comp) || expr_has_lambda_or_comp(value)
            }
            StmtKind::AugAssign { target, value, .. } => {
                expr_has_lambda_or_comp(target) || expr_has_lambda_or_comp(value)
            }
            StmtKind::Return(Some(e)) => expr_has_lambda_or_comp(e),
            StmtKind::Assert { test, msg } => {
                expr_has_lambda_or_comp(test) || msg.as_ref().is_some_and(expr_has_lambda_or_comp)
            }
            StmtKind::Del(targets) => targets.iter().any(expr_has_lambda_or_comp),
            StmtKind::Raise { exc, cause } => {
                exc.as_ref().is_some_and(expr_has_lambda_or_comp)
                    || cause.as_ref().is_some_and(expr_has_lambda_or_comp)
            }
            _ => false,
        })
    }
    walk(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(src: &str) -> Arc<PreparedModule> {
        prepare(Arc::new(pysrc::parse_module(src, "m.py").unwrap()))
    }

    #[test]
    fn leaf_function_gets_slots() {
        let pm = prep("def f(a, b):\n    c = a + b\n    return c\n");
        let (_, proto) = pm
            .protos
            .iter()
            .next()
            .expect("one proto for f");
        assert!(!proto.dynamic);
        assert_eq!(proto.slots.len(), 3, "a, b, c");
        assert_eq!(proto.params.len(), 2);
        let syms: Vec<&str> = proto.slots.iter().map(|s| s.as_str()).collect();
        assert!(syms.contains(&"a") && syms.contains(&"b") && syms.contains(&"c"));
    }

    #[test]
    fn nested_def_forces_dynamic_scope() {
        let pm = prep(concat!(
            "def outer():\n",
            "    x = 1\n",
            "    def inner():\n",
            "        return x\n",
            "    return inner\n",
        ));
        let outer = pm
            .protos
            .values()
            .find(|p| p.name == "outer")
            .expect("outer prepared");
        let inner = pm
            .protos
            .values()
            .find(|p| p.name == "inner")
            .expect("inner prepared");
        assert!(outer.dynamic, "closure-captured scope stays dynamic");
        assert!(!inner.dynamic, "leaf closure body gets slots");
        assert_eq!(inner.slots.len(), 0, "inner has no locals");
    }

    #[test]
    fn global_decls_excluded_from_slots() {
        let pm = prep("def f():\n    global g\n    g = 1\n    h = 2\n");
        let proto = pm.protos.values().next().unwrap();
        assert!(!proto.dynamic);
        assert_eq!(proto.slots.len(), 1);
        assert_eq!(proto.slots[0].as_str(), "h");
        assert_eq!(proto.global_decls.len(), 1);
        assert_eq!(proto.global_decls[0].as_str(), "g");
    }

    #[test]
    fn comprehension_keeps_scope_dynamic() {
        let pm = prep("def f(xs):\n    ys = [x for x in xs]\n    return ys\n");
        let proto = pm.protos.values().next().unwrap();
        assert!(proto.dynamic, "list comp target semantics need a scope");
    }

    #[test]
    fn module_names_resolve_global_and_attrs_resolve() {
        let pm = prep("x = 1\ny = x.bit_length\n");
        let module = &pm.module;
        let mut saw_global = false;
        let mut saw_attr = false;
        for stmt in &module.body {
            pysrc::visit::walk_exprs(stmt, &mut |e| match pm.module_proto.table.res(e.id) {
                NameRes::Global(_) => saw_global = true,
                NameRes::Attr(sym) => {
                    assert_eq!(sym.as_str(), "bit_length");
                    saw_attr = true;
                }
                _ => {}
            });
        }
        assert!(saw_global && saw_attr);
    }
}
