//! Lowering from the prepare-time-resolved AST to the flat bytecode of
//! [`crate::ir`].
//!
//! The compiler walks a scope body exactly the way the tree walk
//! executes it and emits instructions whose *observable* behavior —
//! side-effect order, error identity, and interpreter-step accounting —
//! is bit-for-bit the tree walk's:
//!
//! * Every node the tree walk would `vm.tick()` on entry adds one to a
//!   pending-step counter; the counter is flushed as one
//!   [`Insn::Tick`] before the next instruction that can fault or have
//!   an observable effect (and at every label/jump). Pure
//!   stack-construction instructions never force a flush, so straight
//!   runs of literals batch their steps.
//! * Statements with deep cold semantics (`try`, `with`, `class`,
//!   imports, `del`, unsupported assignment shapes) and expressions
//!   with scope quirks (list comprehensions, unresolved attributes)
//!   compile to tree-walk trampolines over AST clones held by the code
//!   object — those nodes tick themselves, so no pending step is
//!   counted for them.
//!
//! Compilation is cached on [`FuncProto::compiled`] (a `OnceLock`), so
//! a prepared module shared across a campaign compiles each scope at
//! most once, process-wide.

use crate::intern::intern;
use crate::ir::{CodeObject, Const, FnDecl, Insn, NO_LOOP};
use crate::prepare::{self, FuncProto, NameRes};
use crate::vm::Vm;
use pysrc::ast::*;
use std::sync::Arc;

/// The compiled body of a function scope, compiling (and caching) on
/// first use. Returns a reference into the proto's cache — the hot call
/// path pays no refcount traffic.
pub fn func_code<'p>(vm: &Vm, proto: &'p Arc<FuncProto>) -> &'p CodeObject {
    proto
        .compiled
        .get_or_init(|| Arc::new(compile(vm, proto, &proto.body)))
        .as_ref()
}

/// Like [`func_code`], but hands out an owned `Arc` so the caller can
/// keep the code alive without holding a borrow of the prototype (the
/// call hot path mutates the frame while executing the code).
pub fn func_code_arc(vm: &Vm, proto: &Arc<FuncProto>) -> Arc<CodeObject> {
    proto
        .compiled
        .get_or_init(|| Arc::new(compile(vm, proto, &proto.body)))
        .clone()
}

/// The compiled body of a module scope (module protos carry an empty
/// `body`; the statements live in the AST), cached on the module proto.
pub fn module_code<'p>(vm: &Vm, proto: &'p Arc<FuncProto>, body: &[Stmt]) -> &'p CodeObject {
    proto
        .compiled
        .get_or_init(|| Arc::new(compile(vm, proto, body)))
        .as_ref()
}

/// Compiles one scope body against its prototype's resolution table.
pub fn compile(vm: &Vm, proto: &Arc<FuncProto>, body: &[Stmt]) -> CodeObject {
    let mut c = Compiler {
        vm,
        proto,
        code: CodeObject::default(),
        labels: Vec::new(),
        pending: 0,
        loops: Vec::new(),
    };
    c.block(body);
    c.flush();
    c.patch();
    c.code
}

/// An enclosing loop's jump targets (label ids until patched).
#[derive(Clone, Copy)]
struct LoopCtx {
    brk: u32,
    cont: u32,
}

struct Compiler<'a> {
    vm: &'a Vm,
    proto: &'a Arc<FuncProto>,
    code: CodeObject,
    /// Label id → bound instruction index.
    labels: Vec<u32>,
    /// Interpreter steps counted since the last flush.
    pending: u32,
    loops: Vec<LoopCtx>,
}

/// Narrows a pool index / instruction offset to the bytecode's 32-bit
/// operand width. Real inputs are nowhere near 2^32 entries, but a
/// silent `as u32` truncation here would produce wrong jump targets or
/// pool slots instead of an error, so the conversion is checked.
fn idx32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| panic!("{what} index {n} overflows the u32 operand width"))
}

impl Compiler<'_> {
    // ----- emission plumbing -----

    fn emit(&mut self, i: Insn) {
        self.code.insns.push(i);
    }

    /// Counts one interpreter step (a `vm.tick()` the tree walk makes
    /// at node entry).
    fn tick(&mut self) {
        self.pending += 1;
    }

    /// Emits the pending steps before an instruction that can fault or
    /// observably act.
    fn flush(&mut self) {
        if self.pending > 0 {
            let n = self.pending;
            self.pending = 0;
            self.emit(Insn::Tick(n));
        }
    }

    /// Takes the whole pending-step count for fusion into the next
    /// instruction. The fused forms settle the steps before acting —
    /// the exact order `flush()` + emit would have produced.
    fn take_pending(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }

    /// Emits a binary operator, fusing pending steps when there are any.
    fn emit_binary(&mut self, op: BinOp) {
        match self.take_pending() {
            0 => self.emit(Insn::Binary(op)),
            n => self.emit(Insn::TickBinary { n, op }),
        }
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(u32::MAX);
        idx32(self.labels.len() - 1, "label")
    }

    fn bind(&mut self, label: u32) {
        self.flush();
        self.labels[label as usize] = idx32(self.code.insns.len(), "instruction");
    }

    /// Rewrites label ids into absolute instruction indices.
    fn patch(&mut self) {
        let labels = &self.labels;
        let fix = |t: &mut u32| {
            if *t != NO_LOOP {
                *t = labels[*t as usize];
            }
        };
        for insn in &mut self.code.insns {
            match insn {
                Insn::Jump(t)
                | Insn::JumpIfFalse(t)
                | Insn::JumpIfTrue(t)
                | Insn::JumpIfFalseOrPop(t)
                | Insn::JumpIfTrueOrPop(t)
                | Insn::ForNext(t)
                | Insn::CmpJump { target: t, .. } => fix(t),
                Insn::ExecStmt { brk, cont, .. } => {
                    fix(brk);
                    fix(cont);
                }
                _ => {}
            }
        }
    }

    fn const_idx(&mut self, c: Const) -> u32 {
        self.code.consts.push(c);
        idx32(self.code.consts.len() - 1, "constant")
    }

    // ----- trampolines -----

    /// Compiles a statement to the tree-walk trampoline. The statement
    /// ticks itself, so no pending step is counted here — but pending
    /// steps from *earlier* nodes must land first.
    fn fallback_stmt(&mut self, stmt: &Stmt) {
        self.flush();
        self.code.stmts.push(stmt.clone());
        let idx = idx32(self.code.stmts.len() - 1, "statement pool");
        let ctx = self.loops.last().copied();
        self.emit(Insn::ExecStmt {
            stmt: idx,
            brk: ctx.map_or(NO_LOOP, |c| c.brk),
            cont: ctx.map_or(NO_LOOP, |c| c.cont),
        });
    }

    /// Compiles an expression to the tree-walk trampoline (it ticks
    /// itself).
    fn fallback_expr(&mut self, expr: &Expr) {
        self.flush();
        self.code.exprs.push(expr.clone());
        let idx = idx32(self.code.exprs.len() - 1, "expression pool");
        self.emit(Insn::EvalExpr(idx));
    }

    // ----- statements -----

    fn block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.tick();
                self.expr(e);
                self.emit(Insn::Pop);
            }
            StmtKind::Assign { targets, value } => {
                if !targets.iter().all(|t| self.store_supported(t)) {
                    return self.fallback_stmt(stmt);
                }
                self.tick();
                self.expr(value);
                for (i, t) in targets.iter().enumerate() {
                    if i < targets.len() - 1 {
                        self.emit(Insn::Dup);
                    }
                    self.store(t);
                }
            }
            StmtKind::AugAssign { target, op, value } => {
                // The tree walk evaluates the target as an expression
                // (old value), then the rhs, applies the operator, and
                // re-evaluates the target's object/index for the store
                // — the double evaluation is pinned by tests.
                if !matches!(
                    target.kind,
                    ExprKind::Name(_) | ExprKind::Attribute { .. } | ExprKind::Subscript { .. }
                ) || !self.store_supported(target)
                {
                    return self.fallback_stmt(stmt);
                }
                // Slot-local / module-global `x op= e` fuses the step
                // settle, the operator, and the write into one
                // instruction — the hottest statement shape in loops.
                if matches!(target.kind, ExprKind::Name(_)) {
                    match self.proto.table.res(target.id) {
                        NameRes::Local { slot, sym } => {
                            self.tick();
                            self.expr(target);
                            self.expr(value);
                            let n = self.take_pending();
                            self.emit(Insn::TickBinaryStoreSlot {
                                n,
                                op: *op,
                                slot,
                                sym,
                            });
                            return;
                        }
                        NameRes::Global(sym) | NameRes::GlobalDecl(sym) => {
                            self.tick();
                            self.expr(target);
                            self.expr(value);
                            let n = self.take_pending();
                            self.emit(Insn::TickBinaryStoreGlobal { n, op: *op, sym });
                            return;
                        }
                        _ => {}
                    }
                }
                self.tick();
                self.expr(target);
                self.expr(value);
                self.emit_binary(*op);
                self.store(target);
            }
            StmtKind::Return(v) => {
                self.tick();
                match v {
                    Some(e) => {
                        self.expr(e);
                        self.flush();
                        self.emit(Insn::Return);
                    }
                    None => {
                        self.flush();
                        self.emit(Insn::ReturnNone);
                    }
                }
            }
            StmtKind::Pass => self.tick(),
            StmtKind::Break => {
                self.tick();
                self.flush();
                match self.loops.last() {
                    Some(ctx) => self.emit(Insn::Jump(ctx.brk)),
                    // Outside any loop the flow escapes the frame and
                    // the caller treats it as a plain `None` return.
                    None => self.emit(Insn::ReturnNone),
                }
            }
            StmtKind::Continue => {
                self.tick();
                self.flush();
                match self.loops.last() {
                    Some(ctx) => self.emit(Insn::Jump(ctx.cont)),
                    None => self.emit(Insn::ReturnNone),
                }
            }
            StmtKind::Assert { test, msg } => {
                self.tick();
                self.expr(test);
                self.flush();
                let ok = self.new_label();
                self.emit(Insn::JumpIfTrue(ok));
                let has_msg = msg.is_some();
                if let Some(m) = msg {
                    self.expr(m);
                    self.flush();
                }
                self.emit(Insn::AssertFail { has_msg });
                self.bind(ok);
            }
            StmtKind::Raise { exc, cause: _ } => {
                self.tick();
                match exc {
                    Some(e) => {
                        self.expr(e);
                        self.flush();
                        self.emit(Insn::Raise { has_exc: true });
                    }
                    None => {
                        self.flush();
                        self.emit(Insn::Raise { has_exc: false });
                    }
                }
            }
            StmtKind::Global(_) => self.tick(), // handled by analysis
            StmtKind::If { branches, orelse } => {
                self.tick();
                let end = self.new_label();
                for (test, body) in branches {
                    self.expr(test);
                    self.flush();
                    let next = self.new_label();
                    self.emit(Insn::JumpIfFalse(next));
                    self.block(body);
                    self.flush();
                    self.emit(Insn::Jump(end));
                    self.bind(next);
                }
                self.block(orelse);
                self.bind(end);
            }
            StmtKind::While { test, body, orelse } => {
                self.tick();
                let start = self.new_label();
                let orelse_l = self.new_label();
                let end = self.new_label();
                self.bind(start);
                self.expr(test);
                self.flush();
                self.emit(Insn::JumpIfFalse(orelse_l));
                self.loops.push(LoopCtx {
                    brk: end,
                    cont: start,
                });
                self.block(body);
                self.loops.pop();
                self.flush();
                self.emit(Insn::Jump(start));
                self.bind(orelse_l);
                self.compile_loop_orelse(orelse, end);
                self.bind(end);
            }
            StmtKind::For {
                target,
                iter,
                body,
                orelse,
            } => {
                if !self.store_supported(target) {
                    return self.fallback_stmt(stmt);
                }
                self.tick();
                self.expr(iter);
                self.flush();
                self.emit(Insn::GetIter);
                let start = self.new_label();
                let trampoline = self.new_label();
                let orelse_l = self.new_label();
                let end = self.new_label();
                self.bind(start);
                self.emit(Insn::ForNext(orelse_l));
                self.store(target);
                self.loops.push(LoopCtx {
                    brk: trampoline,
                    cont: start,
                });
                self.block(body);
                self.loops.pop();
                self.flush();
                self.emit(Insn::Jump(start));
                // `break` lands here so the iterator is discarded.
                self.bind(trampoline);
                self.emit(Insn::PopIter);
                self.emit(Insn::Jump(end));
                self.bind(orelse_l);
                self.compile_loop_orelse(orelse, end);
                self.bind(end);
            }
            StmtKind::FuncDef { name, params, body } => {
                self.tick();
                let decl = self.make_fn_decl(stmt.id, name, params, body);
                self.compile_defaults(params);
                self.emit(Insn::MakeFunction(decl));
                self.flush();
                self.emit(Insn::StoreSym(intern(name)));
            }
            // Deep, cold, or scope-quirky statements run through the
            // tree walk — one implementation site for both engines.
            StmtKind::ClassDef { .. }
            | StmtKind::Try { .. }
            | StmtKind::With { .. }
            | StmtKind::Import(_)
            | StmtKind::FromImport { .. }
            | StmtKind::Del(_) => self.fallback_stmt(stmt),
        }
    }

    /// A loop's `else` block swallows `break`/`continue` flows escaping
    /// it (the tree walk discards them); both jump targets collapse to
    /// the loop's end.
    fn compile_loop_orelse(&mut self, orelse: &[Stmt], end: u32) {
        if orelse.is_empty() {
            return;
        }
        self.loops.push(LoopCtx { brk: end, cont: end });
        self.block(orelse);
        self.loops.pop();
    }

    fn make_fn_decl(&mut self, id: NodeId, name: &str, params: &[Param], body: &[Stmt]) -> u32 {
        let proto = match self.vm.proto(id) {
            Some(p) => p,
            None => {
                let (p, nested) = prepare::prepare_function(name, params, body);
                self.vm.install_proto(id, p.clone(), nested);
                p
            }
        };
        self.code.fn_decls.push(FnDecl {
            proto,
            has_default: params.iter().map(|p| p.default.is_some()).collect(),
        });
        idx32(self.code.fn_decls.len() - 1, "fn decl")
    }

    /// Compiles parameter defaults in declaration order (each evaluates
    /// — and ticks — at `def` time in the enclosing scope).
    fn compile_defaults(&mut self, params: &[Param]) {
        for p in params {
            if let Some(d) = &p.default {
                self.expr(d);
            }
        }
    }

    // ----- assignment targets -----

    /// Whether a target shape lowers natively; anything else falls back
    /// to the tree walk statement (which also produces the runtime
    /// `SyntaxError` for non-targets).
    fn store_supported(&self, target: &Expr) -> bool {
        match &target.kind {
            ExprKind::Name(_) | ExprKind::Attribute { .. } | ExprKind::Subscript { .. } => true,
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                items.iter().all(|t| self.store_supported(t))
            }
            _ => false,
        }
    }

    /// Compiles a store of the top of stack into `target` (the tree
    /// walk's `assign_target`: no step for the target node itself;
    /// nested object/index evaluations tick as expressions).
    fn store(&mut self, target: &Expr) {
        match &target.kind {
            ExprKind::Name(n) => {
                self.flush();
                match self.proto.table.res(target.id) {
                    NameRes::Local { slot, sym } => self.emit(Insn::StoreSlot { slot, sym }),
                    NameRes::DynLocal(sym) => self.emit(Insn::StoreDyn(sym)),
                    NameRes::Global(sym) | NameRes::GlobalDecl(sym) => {
                        self.emit(Insn::StoreGlobal(sym))
                    }
                    NameRes::Cell(sym) => self.emit(Insn::StoreSym(sym)),
                    NameRes::Unprepared | NameRes::Attr(_) => {
                        self.emit(Insn::StoreSym(intern(n)))
                    }
                }
            }
            ExprKind::Attribute { value: obj, attr } => {
                let sym = match self.proto.table.res(target.id) {
                    NameRes::Attr(s) => s,
                    _ => intern(attr),
                };
                self.expr(obj);
                self.flush();
                self.emit(Insn::StoreAttr(sym));
            }
            ExprKind::Subscript { value: obj, index } => {
                self.expr(obj);
                self.expr(index);
                self.flush();
                self.emit(Insn::StoreItem);
            }
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                self.flush();
                self.emit(Insn::UnpackSeq(idx32(items.len(), "unpack target")));
                for t in items {
                    self.store(t);
                }
            }
            _ => unreachable!("store_supported() gated"),
        }
    }

    // ----- expressions -----

    fn expr(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::Num(Number::Int(v)) => {
                self.tick();
                let i = self.const_idx(Const::Int(*v));
                self.emit(Insn::Const(i));
            }
            ExprKind::Num(Number::Float(v)) => {
                self.tick();
                let i = self.const_idx(Const::Float(*v));
                self.emit(Insn::Const(i));
            }
            ExprKind::Str(s) => {
                self.tick();
                let i = self.const_idx(Const::Str(Arc::from(s.as_str())));
                self.emit(Insn::Const(i));
            }
            ExprKind::Bool(b) => {
                self.tick();
                let i = self.const_idx(Const::Bool(*b));
                self.emit(Insn::Const(i));
            }
            ExprKind::NoneLit => {
                self.tick();
                let i = self.const_idx(Const::None);
                self.emit(Insn::Const(i));
            }
            ExprKind::Name(n) => {
                self.tick();
                match self.proto.table.res(expr.id) {
                    // Slot and global reads fuse the flush into the load
                    // (`pending` ≥ 1: the name node just ticked).
                    NameRes::Local { slot, sym } => {
                        let n = self.take_pending();
                        self.emit(Insn::TickLoadSlot { n, slot, sym });
                    }
                    NameRes::Global(sym) | NameRes::GlobalDecl(sym) => {
                        let n = self.take_pending();
                        self.emit(Insn::TickLoadGlobal { n, sym });
                    }
                    NameRes::DynLocal(sym) => {
                        self.flush();
                        self.emit(Insn::LoadDyn(sym));
                    }
                    NameRes::Cell(sym) => {
                        self.flush();
                        self.emit(Insn::LoadCell(sym));
                    }
                    NameRes::Unprepared | NameRes::Attr(_) => {
                        self.flush();
                        self.emit(Insn::LoadFallback(intern(n)));
                    }
                }
            }
            ExprKind::Attribute { value, .. } => match self.proto.table.res(expr.id) {
                NameRes::Attr(sym) => {
                    self.tick();
                    self.expr(value);
                    self.flush();
                    self.emit(Insn::LoadAttr(sym));
                }
                // Unresolved attribute nodes use the tree walk's
                // non-inserting intern probe; don't intern here.
                _ => self.fallback_expr(expr),
            },
            ExprKind::Subscript { value, index } => {
                self.tick();
                self.expr(value);
                self.expr(index);
                self.flush();
                self.emit(Insn::LoadItem);
            }
            ExprKind::Slice { lower, upper, step } => {
                self.tick();
                for part in [lower, upper, step] {
                    match part {
                        Some(e) => self.expr(e),
                        None => {
                            let i = self.const_idx(Const::None);
                            self.emit(Insn::Const(i));
                        }
                    }
                }
                self.emit(Insn::BuildSlice);
            }
            ExprKind::Call { func, args } => {
                self.tick();
                // Positional-only calls — the overwhelmingly common
                // shape — skip the argument builder entirely.
                if args.iter().all(|a| matches!(a, Arg::Pos(_))) {
                    self.expr(func);
                    for a in args {
                        if let Arg::Pos(e) = a {
                            self.expr(e);
                        }
                    }
                    let argc = idx32(args.len(), "call argument");
                    match self.take_pending() {
                        0 => self.emit(Insn::Call(argc)),
                        n => self.emit(Insn::TickCall { n, argc }),
                    }
                    return;
                }
                self.expr(func);
                self.emit(Insn::CallBegin);
                for a in args {
                    match a {
                        Arg::Pos(e) => {
                            self.expr(e);
                            self.emit(Insn::ArgPos);
                        }
                        Arg::Kw(n, e) => {
                            self.expr(e);
                            self.emit(Insn::ArgKw(intern(n)));
                        }
                        Arg::Star(e) => {
                            self.expr(e);
                            self.flush();
                            self.emit(Insn::ArgStar);
                        }
                        Arg::DoubleStar(e) => {
                            self.expr(e);
                            self.flush();
                            self.emit(Insn::ArgDoubleStar);
                        }
                    }
                }
                self.flush();
                self.emit(Insn::CallEnd);
            }
            ExprKind::Unary { op, operand } => {
                self.tick();
                self.expr(operand);
                self.flush();
                self.emit(Insn::Unary(*op));
            }
            ExprKind::Binary { left, op, right } => {
                self.tick();
                self.expr(left);
                self.expr(right);
                self.emit_binary(*op);
            }
            ExprKind::BoolOp { op, values } => {
                self.tick();
                let end = self.new_label();
                for (i, v) in values.iter().enumerate() {
                    self.expr(v);
                    if i < values.len() - 1 {
                        self.flush();
                        match op {
                            BoolOpKind::And => self.emit(Insn::JumpIfFalseOrPop(end)),
                            BoolOpKind::Or => self.emit(Insn::JumpIfTrueOrPop(end)),
                        }
                    }
                }
                self.bind(end);
            }
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } => {
                self.tick();
                self.expr(left);
                let end = self.new_label();
                let last = ops.len() - 1;
                for (i, (op, comp)) in ops.iter().zip(comparators).enumerate() {
                    self.expr(comp);
                    if i < last {
                        self.flush();
                        self.emit(Insn::CmpJump {
                            op: *op,
                            target: end,
                        });
                    } else {
                        match self.take_pending() {
                            0 => self.emit(Insn::Cmp(*op)),
                            n => self.emit(Insn::TickCmp { n, op: *op }),
                        }
                    }
                }
                self.bind(end);
            }
            ExprKind::Lambda { params, .. } => {
                self.tick();
                let decl = self.lambda_decl(expr);
                self.compile_defaults(params);
                self.emit(Insn::MakeFunction(decl));
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.tick();
                self.expr(test);
                self.flush();
                let alt = self.new_label();
                let end = self.new_label();
                self.emit(Insn::JumpIfFalse(alt));
                self.expr(body);
                self.flush();
                self.emit(Insn::Jump(end));
                self.bind(alt);
                self.expr(orelse);
                self.bind(end);
            }
            ExprKind::Tuple(items) => {
                self.tick();
                for i in items {
                    self.expr(i);
                }
                self.emit(Insn::BuildTuple(idx32(items.len(), "tuple item")));
            }
            ExprKind::List(items) => {
                self.tick();
                for i in items {
                    self.expr(i);
                }
                self.emit(Insn::BuildList(idx32(items.len(), "list item")));
            }
            ExprKind::Set(items) => {
                self.tick();
                for i in items {
                    self.expr(i);
                }
                self.emit(Insn::BuildSet(idx32(items.len(), "set item")));
            }
            ExprKind::Dict(pairs) => {
                self.tick();
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
                self.emit(Insn::BuildDict(idx32(pairs.len(), "dict pair")));
            }
            // The comprehension-target scope quirk (and its
            // spec-version switch) lives in the tree walk; starred
            // expressions outside call/assignment reproduce its
            // runtime SyntaxError.
            ExprKind::ListComp { .. } | ExprKind::Starred(_) => self.fallback_expr(expr),
        }
    }

    fn lambda_decl(&mut self, expr: &Expr) -> u32 {
        let ExprKind::Lambda { params, body } = &expr.kind else {
            unreachable!("caller matched Lambda");
        };
        let proto = match self.vm.proto(expr.id) {
            Some(p) => p,
            None => {
                let (p, nested) = prepare::prepare_lambda(params, body);
                self.vm.install_proto(expr.id, p.clone(), nested);
                p
            }
        };
        self.code.fn_decls.push(FnDecl {
            proto,
            has_default: params.iter().map(|p| p.default.is_some()).collect(),
        });
        idx32(self.code.fn_decls.len() - 1, "fn decl")
    }
}
