//! Simulated standard-library modules available to the target program.
//!
//! These are the modules the paper's campaigns inject into (Table I:
//! "API calls to the urllib and os Python modules") plus the support
//! modules the corpus needs (`time`, `random`, `logging`, `threading`)
//! and the ProFIPy runtime support module `profipy_rt` that the mutator
//! links injected code against (`$CORRUPT`, `$HOG`, `$TIMEOUT`,
//! trigger, coverage probes).

use crate::builtins::{float_of, int_of, native_value, string_of};
use crate::exc::PyExc;
use crate::host::TransportError;
use crate::interp::call_value;
use crate::value::*;
use crate::vm::{Severity, Vm};
use rand::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Instantiates a native module by import name, or `None` if the name
/// is not a native module.
pub fn instantiate_native(vm: &mut Vm, name: &str) -> Option<Rc<ModuleObj>> {
    match name {
        "os" => Some(os_module()),
        "urllib" => Some(urllib_module(vm)),
        "time" => Some(time_module()),
        "random" => Some(random_module()),
        "logging" => Some(logging_module()),
        "threading" => Some(threading_module(vm)),
        "profipy_rt" => Some(profipy_rt_module()),
        _ => None,
    }
}

fn module(name: &str) -> Rc<ModuleObj> {
    Rc::new(ModuleObj {
        name: name.to_string(),
        attrs: RefCell::new(Vec::new()),
    })
}

// ---------- os ----------

fn os_module() -> Rc<ModuleObj> {
    let m = module("os");
    m.set(
        "getenv",
        native_value("getenv", |vm, args, _| {
            let name = string_of(args.first().ok_or_else(|| arg_err("getenv"))?, "getenv")?;
            Ok(match vm.host.getenv(&name) {
                Some(v) => Value::str(v),
                None => args.get(1).cloned().unwrap_or(Value::None),
            })
        }),
    );
    m.set(
        "path_exists",
        native_value("path_exists", |vm, args, _| {
            let p = string_of(
                args.first().ok_or_else(|| arg_err("path_exists"))?,
                "path_exists",
            )?;
            Ok(Value::Bool(vm.host.path_exists(&p)))
        }),
    );
    m.set(
        "read_file",
        native_value("read_file", |vm, args, _| {
            let p = string_of(args.first().ok_or_else(|| arg_err("read_file"))?, "read_file")?;
            match vm.host.read_file(&p) {
                Ok(contents) => Ok(Value::str(contents)),
                Err(msg) => Err(PyExc::new("IOError", msg)),
            }
        }),
    );
    m.set(
        "write_file",
        native_value("write_file", |vm, args, _| {
            if args.len() < 2 {
                return Err(arg_err("write_file"));
            }
            let p = string_of(&args[0], "write_file")?;
            let data = args[1].to_display();
            vm.host
                .write_file(&p, &data)
                .map_err(|msg| PyExc::new("IOError", msg))?;
            Ok(Value::None)
        }),
    );
    m.set(
        "execute",
        native_value("execute", |vm, args, _| {
            // `os.execute(cmd, arg1, arg2, ...)` — the paper's §III WPF
            // target (`utils.execute` invoking iptables/dnsmasq/e2fsck).
            let mut argv = Vec::new();
            for a in &args {
                argv.push(a.to_display());
            }
            if argv.is_empty() {
                return Err(arg_err("execute"));
            }
            let (code, out) = vm.host.execute(&argv);
            if code != 0 {
                return Err(PyExc::new(
                    "OSError",
                    format!("command '{}' failed with exit code {code}: {out}", argv[0]),
                ));
            }
            Ok(Value::Tuple(Rc::new(vec![
                Value::Int(code as i64),
                Value::str(out),
            ])))
        }),
    );
    m
}

// ---------- urllib ----------

fn urllib_module(vm: &mut Vm) -> Rc<ModuleObj> {
    let m = module("urllib");
    // Exception classes the simulated transport raises.
    let os_error = vm
        .exception_class("OSError")
        .expect("OSError is a builtin exception");
    for name in ["ConnectTimeoutError", "ProtocolError", "HTTPError"] {
        let class = Rc::new(ClassObj {
            name: name.to_string(),
            base: Some(os_error.clone()),
            attrs: RefCell::new(Vec::new()),
            is_exception: true,
        });
        vm.register_exception_class(class.clone());
        m.set(name, Value::Class(class));
    }

    m.set(
        "request",
        native_value("request", |vm, args, kwargs| {
            // urllib.request(method, url, body='', timeout=5.0) -> response dict
            if args.len() < 2 {
                return Err(arg_err("request"));
            }
            let method = string_of(&args[0], "request")?;
            let url = string_of(&args[1], "request")?;
            let body = match args.get(2) {
                Some(Value::Str(s)) => s.to_string(),
                Some(Value::None) | None => String::new(),
                Some(other) => other.to_display(),
            };
            let timeout = kwargs
                .iter()
                .find(|(n, _)| n == "timeout")
                .map(|(_, v)| float_of(v, "timeout"))
                .transpose()?
                .unwrap_or(5.0);
            http_request(vm, &method, &url, &body, timeout)
        }),
    );
    m.set(
        "quote",
        native_value("quote", |_vm, args, _| {
            let s = string_of(args.first().ok_or_else(|| arg_err("quote"))?, "quote")?;
            let mut out = String::new();
            for c in s.chars() {
                if c.is_ascii_alphanumeric() || "-_.~/".contains(c) {
                    out.push(c);
                } else {
                    for b in c.to_string().as_bytes() {
                        out.push_str(&format!("%{b:02X}"));
                    }
                }
            }
            Ok(Value::str(out))
        }),
    );
    m.set(
        "urlencode",
        native_value("urlencode", |_vm, args, _| {
            let d = match args.first() {
                Some(Value::Dict(d)) => d.clone(),
                _ => return Err(arg_err("urlencode")),
            };
            let parts: Vec<String> = d
                .borrow()
                .iter()
                .map(|(k, v)| format!("{}={}", k.to_display(), v.to_display()))
                .collect();
            Ok(Value::str(parts.join("&")))
        }),
    );
    m
}

/// Performs a simulated HTTP request through the host, translating
/// transport errors to the exception classes the paper's campaigns
/// inject and observe.
fn http_request(
    vm: &mut Vm,
    method: &str,
    url: &str,
    body: &str,
    timeout: f64,
) -> Result<Value, PyExc> {
    let (result, elapsed) = vm
        .host
        .http_request(vm.now(), method, url, body, timeout);
    vm.advance_clock(elapsed);
    match result {
        Ok(resp) => {
            let d = Value::dict(vec![
                (Value::str("status"), Value::Int(resp.status as i64)),
                (Value::str("data"), Value::str(resp.body)),
            ]);
            Ok(d)
        }
        Err(TransportError::Timeout) => Err(PyExc::new(
            "ConnectTimeoutError",
            format!("timed out after {timeout}s: {method} {url}"),
        )),
        Err(TransportError::ConnectionRefused) => Err(PyExc::new(
            "ConnectionRefusedError",
            format!("connection refused: {method} {url}"),
        )),
        Err(TransportError::Reset) => Err(PyExc::new(
            "ProtocolError",
            format!("connection reset during {method} {url}"),
        )),
    }
}

// ---------- time ----------

fn time_module() -> Rc<ModuleObj> {
    let m = module("time");
    m.set(
        "time",
        native_value("time", |vm, _args, _| Ok(Value::Float(vm.now()))),
    );
    m.set(
        "monotonic",
        native_value("monotonic", |vm, _args, _| Ok(Value::Float(vm.now()))),
    );
    m.set(
        "sleep",
        native_value("sleep", |vm, args, _| {
            let secs = float_of(args.first().ok_or_else(|| arg_err("sleep"))?, "sleep")?;
            vm.advance_clock(secs.max(0.0));
            // Sleeping still burns a little fuel so sleep loops terminate.
            vm.tick()?;
            Ok(Value::None)
        }),
    );
    m
}

// ---------- random ----------

fn random_module() -> Rc<ModuleObj> {
    let m = module("random");
    m.set(
        "random",
        native_value("random", |vm, _args, _| {
            Ok(Value::Float(vm.rng.borrow_mut().gen::<f64>()))
        }),
    );
    m.set(
        "randint",
        native_value("randint", |vm, args, _| {
            if args.len() != 2 {
                return Err(arg_err("randint"));
            }
            let a = int_of(&args[0], "randint")?;
            let b = int_of(&args[1], "randint")?;
            if a > b {
                return Err(PyExc::value_error("empty range for randint()"));
            }
            Ok(Value::Int(vm.rng.borrow_mut().gen_range(a..=b)))
        }),
    );
    m.set(
        "choice",
        native_value("choice", |vm, args, _| {
            let items = crate::interp::iter_values(args.first().ok_or_else(|| arg_err("choice"))?)?;
            if items.is_empty() {
                return Err(PyExc::new("IndexError", "cannot choose from an empty sequence"));
            }
            let i = vm.rng.borrow_mut().gen_range(0..items.len());
            Ok(items[i].clone())
        }),
    );
    m.set(
        "seed",
        native_value("seed", |_vm, _args, _| Ok(Value::None)),
    );
    m
}

// ---------- logging ----------

fn log_fn(name: &'static str, severity: Severity) -> Value {
    native_value(name, move |vm, args, _| {
        let msg = args.first().map(Value::to_display).unwrap_or_default();
        vm.log(severity, msg);
        Ok(Value::None)
    })
}

fn logging_module() -> Rc<ModuleObj> {
    let m = module("logging");
    m.set("debug", log_fn("debug", Severity::Debug));
    m.set("info", log_fn("info", Severity::Info));
    m.set("warning", log_fn("warning", Severity::Warning));
    m.set("error", log_fn("error", Severity::Error));
    m.set("critical", log_fn("critical", Severity::Critical));
    m.set(
        "getLogger",
        native_value("getLogger", |_vm, args, _| {
            // Loggers attribute records to the component named at
            // getLogger() time.
            let component = match args.first() {
                Some(Value::Str(s)) => s.to_string(),
                _ => "root".to_string(),
            };
            let logger = Rc::new(ModuleObj {
                name: format!("logger:{component}"),
                attrs: RefCell::new(Vec::new()),
            });
            for (name, sev) in [
                ("debug", Severity::Debug),
                ("info", Severity::Info),
                ("warning", Severity::Warning),
                ("error", Severity::Error),
                ("critical", Severity::Critical),
            ] {
                let component = component.clone();
                logger.set(
                    name,
                    native_value(name, move |vm: &mut Vm, args: Vec<Value>, _| {
                        let msg = args.first().map(Value::to_display).unwrap_or_default();
                        let prev = std::mem::replace(
                            &mut *vm.current_component.borrow_mut(),
                            component.clone(),
                        );
                        vm.log(sev, msg);
                        *vm.current_component.borrow_mut() = prev;
                        Ok(Value::None)
                    }),
                );
            }
            Ok(Value::Module(logger))
        }),
    );
    m
}

// ---------- threading ----------

fn threading_module(vm: &mut Vm) -> Rc<ModuleObj> {
    let m = module("threading");
    // Deterministic cooperative model: `Thread.start()` runs the target
    // to completion synchronously. CPU hogs are modeled separately via
    // `profipy_rt.hog()` which starves the *whole* VM — see DESIGN.md.
    let thread_class = Rc::new(ClassObj {
        name: "Thread".to_string(),
        base: None,
        attrs: RefCell::new(Vec::new()),
        is_exception: false,
    });
    thread_class.attrs.borrow_mut().push((
        crate::intern::intern("start"),
        native_value("start", |vm, args, _| {
            let recv = args.first().cloned().ok_or_else(|| arg_err("start"))?;
            if let Value::Instance(inst) = &recv {
                if let Some(target) = inst.get_attr("_target") {
                    let call_args = match inst.get_attr("_args") {
                        Some(Value::Tuple(t)) => t.to_vec(),
                        Some(Value::List(l)) => l.borrow().clone(),
                        _ => Vec::new(),
                    };
                    call_value(vm, target, call_args, vec![])?;
                }
                inst.set_attr("_started", Value::Bool(true));
            }
            Ok(Value::None)
        }),
    ));
    thread_class.attrs.borrow_mut().push((
        crate::intern::intern("join"),
        native_value("join", |_vm, _args, _| Ok(Value::None)),
    ));
    thread_class.attrs.borrow_mut().push((
        crate::intern::intern("__init__"),
        native_value("__init__", |_vm, args, kwargs| {
            let recv = args.first().cloned().ok_or_else(|| arg_err("Thread"))?;
            if let Value::Instance(inst) = &recv {
                for (n, v) in kwargs {
                    match n.as_str() {
                        "target" => inst.set_attr("_target", v),
                        "args" => inst.set_attr("_args", v),
                        "daemon" => inst.set_attr("daemon", v),
                        _ => {}
                    }
                }
            }
            Ok(Value::None)
        }),
    ));
    let _ = vm; // classes need no VM state at construction
    m.set("Thread", Value::Class(thread_class));
    m
}

// ---------- profipy_rt ----------

/// Builds the ProFIPy runtime-support module. The mutator emits calls
/// into this module:
///
/// * `profipy_rt.trigger()` — EDFI-style fault switch (paper §IV-B).
/// * `profipy_rt.cov(id)` — coverage probe (paper §IV-D).
/// * `profipy_rt.corrupt(v)` — `$CORRUPT` directive.
/// * `profipy_rt.hog()` — `$HOG` directive (stale CPU-hog thread).
/// * `profipy_rt.delay(secs)` — `$TIMEOUT` directive.
fn profipy_rt_module() -> Rc<ModuleObj> {
    let m = module("profipy_rt");
    m.set(
        "trigger",
        native_value("trigger", |vm, _args, _| {
            Ok(Value::Bool(vm.trigger.get()))
        }),
    );
    m.set(
        "cov",
        native_value("cov", |vm, args, _| {
            let id = int_of(args.first().ok_or_else(|| arg_err("cov"))?, "cov")?;
            vm.mark_covered(id as u64);
            Ok(Value::None)
        }),
    );
    m.set(
        "corrupt",
        native_value("corrupt", |vm, args, _| {
            let v = args.first().cloned().ok_or_else(|| arg_err("corrupt"))?;
            Ok(corrupt_value(vm, v))
        }),
    );
    m.set(
        "hog",
        native_value("hog", |vm, _args, _| {
            vm.add_hog();
            vm.host.note_hog();
            Ok(Value::None)
        }),
    );
    m.set(
        "delay",
        native_value("delay", |vm, args, _| {
            let secs = float_of(args.first().ok_or_else(|| arg_err("delay"))?, "delay")?;
            vm.advance_clock(secs.max(0.0));
            vm.tick()?;
            Ok(Value::None)
        }),
    );
    m
}

/// `$CORRUPT` semantics: strings get characters randomly replaced
/// (including non-ASCII substitutions — the paper's §V-B "non-ASCII
/// string → 400 Bad Request" failure), ints become random negatives,
/// everything else becomes `None`.
pub fn corrupt_value(vm: &Vm, v: Value) -> Value {
    let mut rng = vm.rng.borrow_mut();
    match v {
        Value::Str(s) => {
            let mut chars: Vec<char> = s.chars().collect();
            if chars.is_empty() {
                chars.push('\u{00bf}');
            }
            // Corrupt one or two characters. A minority of the
            // substitutions are non-ASCII — those are the inputs the
            // paper's server rejects with 400 Bad Request; ASCII
            // corruptions produce wrong-but-well-formed inputs whose
            // failures surface later (missing keys, failed checks).
            let n = rng.gen_range(1..=2.min(chars.len()));
            for _ in 0..n {
                let i = rng.gen_range(0..chars.len());
                chars[i] = if rng.gen_bool(0.2) {
                    char::from_u32(rng.gen_range(0xA1..0x17F)).unwrap_or('\u{00bf}')
                } else {
                    char::from(rng.gen_range(b'a'..=b'z'))
                };
            }
            Value::str(chars.into_iter().collect::<String>())
        }
        Value::Int(_) => Value::Int(-(rng.gen_range(1..10_000i64))),
        Value::Float(_) => Value::Float(-rng.gen::<f64>() * 1e6),
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::None,
    }
}

fn arg_err(name: &str) -> PyExc {
    PyExc::type_error(format!("{name}(): missing required argument"))
}
