//! Simulated standard-library modules available to the target program.
//!
//! These are the modules the paper's campaigns inject into (Table I:
//! "API calls to the urllib and os Python modules") plus the support
//! modules the corpus needs (`time`, `random`, `logging`, `threading`)
//! and the ProFIPy runtime support module `profipy_rt` that the mutator
//! links injected code against (`$CORRUPT`, `$HOG`, `$TIMEOUT`,
//! trigger, coverage probes).

use crate::builtins::{float_of, int_of, native_value, string_of};
use crate::exc::PyExc;
use crate::host::TransportError;
use crate::interp::call_value;
use crate::value::*;
use crate::vm::{Severity, Vm};
use rand::Rng;
use std::cell::RefCell;

/// Instantiates a native module by import name, or `None` if the name
/// is not a native module. Returns the module's heap handle.
pub fn instantiate_native(vm: &mut Vm, name: &str) -> Option<u32> {
    match name {
        "os" => Some(os_module(vm)),
        "urllib" => Some(urllib_module(vm)),
        "time" => Some(time_module(vm)),
        "random" => Some(random_module(vm)),
        "logging" => Some(logging_module(vm)),
        "threading" => Some(threading_module(vm)),
        "profipy_rt" => Some(profipy_rt_module(vm)),
        _ => None,
    }
}

// ---------- os ----------

fn os_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("os");
    let mo = heap.module(m);
    mo.set(
        "getenv",
        native_value(heap, "getenv", |vm, args, _| {
            let name = string_of(
                &vm.heap,
                args.first().ok_or_else(|| arg_err("getenv"))?,
                "getenv",
            )?;
            Ok(match vm.host.getenv(&name) {
                Some(v) => vm.heap.new_string(v),
                None => args.get(1).copied().unwrap_or(Value::None),
            })
        }),
    );
    mo.set(
        "path_exists",
        native_value(heap, "path_exists", |vm, args, _| {
            let p = string_of(
                &vm.heap,
                args.first().ok_or_else(|| arg_err("path_exists"))?,
                "path_exists",
            )?;
            Ok(Value::Bool(vm.host.path_exists(&p)))
        }),
    );
    mo.set(
        "read_file",
        native_value(heap, "read_file", |vm, args, _| {
            let p = string_of(
                &vm.heap,
                args.first().ok_or_else(|| arg_err("read_file"))?,
                "read_file",
            )?;
            match vm.host.read_file(&p) {
                Ok(contents) => Ok(vm.heap.new_string(contents)),
                Err(msg) => Err(PyExc::new("IOError", msg)),
            }
        }),
    );
    mo.set(
        "write_file",
        native_value(heap, "write_file", |vm, args, _| {
            if args.len() < 2 {
                return Err(arg_err("write_file"));
            }
            let p = string_of(&vm.heap, &args[0], "write_file")?;
            let data = args[1].to_display(&vm.heap);
            vm.host
                .write_file(&p, &data)
                .map_err(|msg| PyExc::new("IOError", msg))?;
            Ok(Value::None)
        }),
    );
    mo.set(
        "execute",
        native_value(heap, "execute", |vm, args, _| {
            // `os.execute(cmd, arg1, arg2, ...)` — the paper's §III WPF
            // target (`utils.execute` invoking iptables/dnsmasq/e2fsck).
            let mut argv = Vec::new();
            for a in &args {
                argv.push(a.to_display(&vm.heap));
            }
            if argv.is_empty() {
                return Err(arg_err("execute"));
            }
            let (code, out) = vm.host.execute(&argv);
            if code != 0 {
                return Err(PyExc::new(
                    "OSError",
                    format!("command '{}' failed with exit code {code}: {out}", argv[0]),
                ));
            }
            let out = vm.heap.new_string(out);
            Ok(vm.heap.new_tuple(vec![Value::Int(code as i64), out]))
        }),
    );
    m
}

// ---------- urllib ----------

fn urllib_module(vm: &mut Vm) -> u32 {
    let m = vm.heap.new_module("urllib");
    // Exception classes the simulated transport raises.
    let os_error = vm
        .exception_class("OSError")
        .expect("OSError is a builtin exception");
    for name in ["ConnectTimeoutError", "ProtocolError", "HTTPError"] {
        let class = vm.heap.new_class(ClassObj {
            name: name.to_string(),
            base: Some(os_error),
            attrs: RefCell::new(Vec::new()),
            is_exception: true,
        });
        vm.register_exception_class(class);
        vm.heap.module(m).set(name, Value::Class(class));
    }

    let heap = &vm.heap;
    let mo = heap.module(m);
    mo.set(
        "request",
        native_value(heap, "request", |vm, args, kwargs| {
            // urllib.request(method, url, body='', timeout=5.0) -> response dict
            if args.len() < 2 {
                return Err(arg_err("request"));
            }
            let method = string_of(&vm.heap, &args[0], "request")?;
            let url = string_of(&vm.heap, &args[1], "request")?;
            let body = match args.get(2) {
                Some(Value::Str(s)) => vm.heap.str(*s).to_string(),
                Some(Value::None) | None => String::new(),
                Some(other) => other.to_display(&vm.heap),
            };
            let timeout = kwargs
                .iter()
                .find(|(n, _)| n == "timeout")
                .map(|(_, v)| float_of(v, "timeout"))
                .transpose()?
                .unwrap_or(5.0);
            http_request(vm, &method, &url, &body, timeout)
        }),
    );
    mo.set(
        "quote",
        native_value(heap, "quote", |vm, args, _| {
            let s = string_of(
                &vm.heap,
                args.first().ok_or_else(|| arg_err("quote"))?,
                "quote",
            )?;
            let mut out = String::new();
            for c in s.chars() {
                if c.is_ascii_alphanumeric() || "-_.~/".contains(c) {
                    out.push(c);
                } else {
                    for b in c.to_string().as_bytes() {
                        out.push_str(&format!("%{b:02X}"));
                    }
                }
            }
            Ok(vm.heap.new_string(out))
        }),
    );
    mo.set(
        "urlencode",
        native_value(heap, "urlencode", |vm, args, _| {
            let d = match args.first() {
                Some(Value::Dict(d)) => *d,
                _ => return Err(arg_err("urlencode")),
            };
            let pairs: Vec<(Value, Value)> =
                vm.heap.dict(d).borrow().iter().copied().collect();
            let parts: Vec<String> = pairs
                .iter()
                .map(|&(k, v)| format!("{}={}", k.to_display(&vm.heap), v.to_display(&vm.heap)))
                .collect();
            Ok(vm.heap.new_string(parts.join("&")))
        }),
    );
    m
}

/// Performs a simulated HTTP request through the host, translating
/// transport errors to the exception classes the paper's campaigns
/// inject and observe.
fn http_request(
    vm: &mut Vm,
    method: &str,
    url: &str,
    body: &str,
    timeout: f64,
) -> Result<Value, PyExc> {
    let (result, elapsed) = vm
        .host
        .http_request(vm.now(), method, url, body, timeout);
    vm.advance_clock(elapsed);
    match result {
        Ok(resp) => {
            let status_key = vm.heap.new_str("status");
            let data_key = vm.heap.new_str("data");
            let data = vm.heap.new_string(resp.body);
            Ok(vm.heap.new_dict_from(vec![
                (status_key, Value::Int(resp.status as i64)),
                (data_key, data),
            ]))
        }
        Err(TransportError::Timeout) => Err(PyExc::new(
            "ConnectTimeoutError",
            format!("timed out after {timeout}s: {method} {url}"),
        )),
        Err(TransportError::ConnectionRefused) => Err(PyExc::new(
            "ConnectionRefusedError",
            format!("connection refused: {method} {url}"),
        )),
        Err(TransportError::Reset) => Err(PyExc::new(
            "ProtocolError",
            format!("connection reset during {method} {url}"),
        )),
    }
}

// ---------- time ----------

fn time_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("time");
    let mo = heap.module(m);
    mo.set(
        "time",
        native_value(heap, "time", |vm, _args, _| Ok(Value::Float(vm.now()))),
    );
    mo.set(
        "monotonic",
        native_value(heap, "monotonic", |vm, _args, _| Ok(Value::Float(vm.now()))),
    );
    mo.set(
        "sleep",
        native_value(heap, "sleep", |vm, args, _| {
            let secs = float_of(args.first().ok_or_else(|| arg_err("sleep"))?, "sleep")?;
            vm.advance_clock(secs.max(0.0));
            // Sleeping still burns a little fuel so sleep loops terminate.
            vm.tick()?;
            Ok(Value::None)
        }),
    );
    m
}

// ---------- random ----------

fn random_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("random");
    let mo = heap.module(m);
    mo.set(
        "random",
        native_value(heap, "random", |vm, _args, _| {
            Ok(Value::Float(vm.rng.borrow_mut().gen::<f64>()))
        }),
    );
    mo.set(
        "randint",
        native_value(heap, "randint", |vm, args, _| {
            if args.len() != 2 {
                return Err(arg_err("randint"));
            }
            let a = int_of(&args[0], "randint")?;
            let b = int_of(&args[1], "randint")?;
            if a > b {
                return Err(PyExc::value_error("empty range for randint()"));
            }
            Ok(Value::Int(vm.rng.borrow_mut().gen_range(a..=b)))
        }),
    );
    mo.set(
        "choice",
        native_value(heap, "choice", |vm, args, _| {
            let src = *args.first().ok_or_else(|| arg_err("choice"))?;
            let items = crate::interp::iter_values(&vm.heap, src)?;
            if items.is_empty() {
                return Err(PyExc::new("IndexError", "cannot choose from an empty sequence"));
            }
            let i = vm.rng.borrow_mut().gen_range(0..items.len());
            Ok(items[i])
        }),
    );
    mo.set(
        "seed",
        native_value(heap, "seed", |_vm, _args, _| Ok(Value::None)),
    );
    m
}

// ---------- logging ----------

fn log_fn(heap: &Heap, name: &'static str, severity: Severity) -> Value {
    native_value(heap, name, move |vm, args, _| {
        let msg = args
            .first()
            .map(|v| v.to_display(&vm.heap))
            .unwrap_or_default();
        vm.log(severity, msg);
        Ok(Value::None)
    })
}

fn logging_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("logging");
    let mo = heap.module(m);
    mo.set("debug", log_fn(heap, "debug", Severity::Debug));
    mo.set("info", log_fn(heap, "info", Severity::Info));
    mo.set("warning", log_fn(heap, "warning", Severity::Warning));
    mo.set("error", log_fn(heap, "error", Severity::Error));
    mo.set("critical", log_fn(heap, "critical", Severity::Critical));
    mo.set(
        "getLogger",
        native_value(heap, "getLogger", |vm, args, _| {
            // Loggers attribute records to the component named at
            // getLogger() time.
            let component = match args.first() {
                Some(Value::Str(s)) => vm.heap.str(*s).to_string(),
                _ => "root".to_string(),
            };
            let logger = vm.heap.new_module(&format!("logger:{component}"));
            for (name, sev) in [
                ("debug", Severity::Debug),
                ("info", Severity::Info),
                ("warning", Severity::Warning),
                ("error", Severity::Error),
                ("critical", Severity::Critical),
            ] {
                let component = component.clone();
                let f = native_value(
                    &vm.heap,
                    name,
                    move |vm: &mut Vm, args: Vec<Value>, _| {
                        let msg = args
                            .first()
                            .map(|v| v.to_display(&vm.heap))
                            .unwrap_or_default();
                        let prev = std::mem::replace(
                            &mut *vm.current_component.borrow_mut(),
                            component.clone(),
                        );
                        vm.log(sev, msg);
                        *vm.current_component.borrow_mut() = prev;
                        Ok(Value::None)
                    },
                );
                vm.heap.module(logger).set(name, f);
            }
            Ok(Value::Module(logger))
        }),
    );
    m
}

// ---------- threading ----------

fn threading_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("threading");
    // Deterministic cooperative model: `Thread.start()` runs the target
    // to completion synchronously. CPU hogs are modeled separately via
    // `profipy_rt.hog()` which starves the *whole* VM — see DESIGN.md.
    let thread_class = heap.new_class(ClassObj {
        name: "Thread".to_string(),
        base: None,
        attrs: RefCell::new(Vec::new()),
        is_exception: false,
    });
    heap.class(thread_class).attrs.borrow_mut().push((
        crate::intern::intern("start"),
        native_value(heap, "start", |vm, args, _| {
            let recv = args.first().copied().ok_or_else(|| arg_err("start"))?;
            if let Value::Instance(i) = recv {
                let target = vm.heap.instance(i).get_attr("_target");
                if let Some(target) = target {
                    let call_args = match vm.heap.instance(i).get_attr("_args") {
                        Some(Value::Tuple(t)) => vm.heap.tuple(t).to_vec(),
                        Some(Value::List(l)) => vm.heap.list(l).borrow().clone(),
                        _ => Vec::new(),
                    };
                    call_value(vm, target, call_args, vec![])?;
                }
                vm.heap.instance(i).set_attr("_started", Value::Bool(true));
            }
            Ok(Value::None)
        }),
    ));
    heap.class(thread_class).attrs.borrow_mut().push((
        crate::intern::intern("join"),
        native_value(heap, "join", |_vm, _args, _| Ok(Value::None)),
    ));
    heap.class(thread_class).attrs.borrow_mut().push((
        crate::intern::intern("__init__"),
        native_value(heap, "__init__", |vm, args, kwargs| {
            let recv = args.first().copied().ok_or_else(|| arg_err("Thread"))?;
            if let Value::Instance(i) = recv {
                for (n, v) in kwargs {
                    match n.as_str() {
                        "target" => vm.heap.instance(i).set_attr("_target", v),
                        "args" => vm.heap.instance(i).set_attr("_args", v),
                        "daemon" => vm.heap.instance(i).set_attr("daemon", v),
                        _ => {}
                    }
                }
            }
            Ok(Value::None)
        }),
    ));
    heap.module(m).set("Thread", Value::Class(thread_class));
    m
}

// ---------- profipy_rt ----------

/// Builds the ProFIPy runtime-support module. The mutator emits calls
/// into this module:
///
/// * `profipy_rt.trigger()` — EDFI-style fault switch (paper §IV-B).
/// * `profipy_rt.cov(id)` — coverage probe (paper §IV-D).
/// * `profipy_rt.corrupt(v)` — `$CORRUPT` directive.
/// * `profipy_rt.hog()` — `$HOG` directive (stale CPU-hog thread).
/// * `profipy_rt.delay(secs)` — `$TIMEOUT` directive.
fn profipy_rt_module(vm: &Vm) -> u32 {
    let heap = &vm.heap;
    let m = heap.new_module("profipy_rt");
    let mo = heap.module(m);
    mo.set(
        "trigger",
        native_value(heap, "trigger", |vm, _args, _| {
            Ok(Value::Bool(vm.trigger.get()))
        }),
    );
    mo.set(
        "cov",
        native_value(heap, "cov", |vm, args, _| {
            let id = int_of(args.first().ok_or_else(|| arg_err("cov"))?, "cov")?;
            vm.mark_covered(id as u64);
            Ok(Value::None)
        }),
    );
    mo.set(
        "corrupt",
        native_value(heap, "corrupt", |vm, args, _| {
            let v = args.first().copied().ok_or_else(|| arg_err("corrupt"))?;
            Ok(corrupt_value(vm, v))
        }),
    );
    mo.set(
        "hog",
        native_value(heap, "hog", |vm, _args, _| {
            vm.add_hog();
            vm.host.note_hog();
            Ok(Value::None)
        }),
    );
    mo.set(
        "delay",
        native_value(heap, "delay", |vm, args, _| {
            let secs = float_of(args.first().ok_or_else(|| arg_err("delay"))?, "delay")?;
            vm.advance_clock(secs.max(0.0));
            vm.tick()?;
            Ok(Value::None)
        }),
    );
    m
}

/// `$CORRUPT` semantics: strings get characters randomly replaced
/// (including non-ASCII substitutions — the paper's §V-B "non-ASCII
/// string → 400 Bad Request" failure), ints become random negatives,
/// everything else becomes `None`.
pub fn corrupt_value(vm: &Vm, v: Value) -> Value {
    let mut rng = vm.rng.borrow_mut();
    match v {
        Value::Str(s) => {
            let mut chars: Vec<char> = vm.heap.str(s).chars().collect();
            if chars.is_empty() {
                chars.push('\u{00bf}');
            }
            // Corrupt one or two characters. A minority of the
            // substitutions are non-ASCII — those are the inputs the
            // paper's server rejects with 400 Bad Request; ASCII
            // corruptions produce wrong-but-well-formed inputs whose
            // failures surface later (missing keys, failed checks).
            let n = rng.gen_range(1..=2.min(chars.len()));
            for _ in 0..n {
                let i = rng.gen_range(0..chars.len());
                chars[i] = if rng.gen_bool(0.2) {
                    char::from_u32(rng.gen_range(0xA1..0x17F)).unwrap_or('\u{00bf}')
                } else {
                    char::from(rng.gen_range(b'a'..=b'z'))
                };
            }
            vm.heap.new_string(chars.into_iter().collect::<String>())
        }
        Value::Int(_) => Value::Int(-(rng.gen_range(1..10_000i64))),
        Value::Float(_) => Value::Float(-rng.gen::<f64>() * 1e6),
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::None,
    }
}

fn arg_err(name: &str) -> PyExc {
    PyExc::type_error(format!("{name}(): missing required argument"))
}
