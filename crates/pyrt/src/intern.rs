//! Process-global string interner for identifiers.
//!
//! Every identifier the interpreter touches (variable names, attribute
//! names, parameter names) becomes a [`Symbol`] exactly once, at
//! parse/prepare time. From then on name comparison is a pointer
//! compare and resolution back to text is a plain field read — no lock
//! anywhere on the execution path.
//!
//! Interned strings are leaked (`Box::leak`), which is the standard
//! trade for `&'static str` resolution: the set of distinct
//! identifiers across a campaign is bounded by the source corpus, not
//! by the number of experiments, so memory growth stops as soon as
//! every module has been prepared once. The interner is shared across
//! threads (interning itself takes a lock; symbol use never does), so
//! prepared programs cached by the campaign engine resolve to the same
//! symbols on every worker.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned identifier: a handle to the unique leaked copy of the
/// string. Equality is a pointer compare — valid because the interner
/// guarantees one allocation per distinct string.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        std::ptr::eq(self.0.as_ptr(), other.0.as_ptr())
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.0.as_ptr() as usize);
    }
}

fn interner() -> &'static RwLock<HashMap<&'static str, Symbol>> {
    static INTERNER: OnceLock<RwLock<HashMap<&'static str, Symbol>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Interns a string, returning its symbol. Already-interned strings hit
/// the shared read lock; only genuinely new strings take the write
/// lock (double-checked).
pub fn intern(s: &str) -> Symbol {
    let lock = interner();
    if let Some(&sym) = lock.read().expect("interner poisoned").get(s) {
        return sym;
    }
    let mut map = lock.write().expect("interner poisoned");
    if let Some(&sym) = map.get(s) {
        return sym;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    let sym = Symbol(leaked);
    map.insert(leaked, sym);
    sym
}

/// Looks a string up **without inserting** — the right call for every
/// runtime *read* path (`getattr`, scope probes by string): if the
/// string was never interned, no symbol-keyed table can contain it, so
/// the lookup can fail without permanently leaking attacker-controlled
/// strings (e.g. a mutant looping `getattr(obj, 'a_' + str(i))`).
pub fn try_intern(s: &str) -> Option<Symbol> {
    interner().read().expect("interner poisoned").get(s).copied()
}

/// Bulk-interns a batch of strings under one write-lock acquisition —
/// the prepare pass feeds every identifier of a module through this in
/// one shot, so per-identifier `intern` calls during resolution all
/// hit the shared read lock.
pub fn intern_all<'a>(names: impl IntoIterator<Item = &'a str>) -> Vec<Symbol> {
    let lock = interner();
    let mut map = lock.write().expect("interner poisoned");
    names
        .into_iter()
        .map(|s| {
            if let Some(&sym) = map.get(s) {
                return sym;
            }
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            let sym = Symbol(leaked);
            map.insert(leaked, sym);
            sym
        })
        .collect()
}

impl Symbol {
    /// The interned string — a plain field read, no lock.
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Symbol({:?})", self.0)
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// Well-known symbols the runtime needs on hot paths (exception
/// construction, context managers), interned once on first use.
pub mod well_known {
    use super::{intern, Symbol};
    use std::sync::OnceLock;

    macro_rules! well_known_sym {
        ($fn_name:ident, $text:expr) => {
            /// The interned symbol for the corresponding identifier.
            pub fn $fn_name() -> Symbol {
                static CELL: OnceLock<Symbol> = OnceLock::new();
                *CELL.get_or_init(|| intern($text))
            }
        };
    }

    well_known_sym!(sym_init, "__init__");
    well_known_sym!(sym_enter, "__enter__");
    well_known_sym!(sym_exit, "__exit__");
    well_known_sym!(sym_message, "message");
    well_known_sym!(sym_args, "args");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let a = intern("alpha");
        let b = intern("alpha");
        let c = intern("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(c.as_str(), "beta");
    }

    #[test]
    fn bulk_intern_matches_single() {
        let syms = intern_all(["x", "y", "x"]);
        assert_eq!(syms[0], syms[2]);
        assert_eq!(syms[0], intern("x"));
        assert_eq!(syms[1], intern("y"));
    }

    #[test]
    fn symbols_are_stable_across_threads() {
        let here = intern("cross-thread");
        let there = std::thread::spawn(|| intern("cross-thread")).join().unwrap();
        assert_eq!(here, there);
    }

    #[test]
    fn try_intern_never_inserts() {
        assert!(try_intern("never-interned-probe-xyzzy").is_none());
        let sym = intern("try-intern-present");
        assert_eq!(try_intern("try-intern-present"), Some(sym));
        // Still absent: the failed probe above did not leak an entry.
        assert!(try_intern("never-interned-probe-xyzzy").is_none());
    }

    #[test]
    fn equal_content_from_different_allocations_interns_identically() {
        let owned = String::from("own") + "ed";
        let a = intern(&owned);
        let b = intern("owned");
        assert_eq!(a, b, "pointer equality holds via the unique interned copy");
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
