//! `pyrt` — a deterministic interpreter for the mini-Python subset
//! parsed by [`pysrc`]: a bytecode VM ([`compile`] + [`bcvm`], the
//! default engine) with a tree-walking oracle ([`interp`]) that is
//! bit-for-bit interchangeable with it (select per VM with
//! [`Vm::set_engine`] or process-wide with `PROFIPY_ENGINE`).
//!
//! This crate stands in for the CPython runtime in the original ProFIPy
//! paper. It reproduces the language semantics the paper's case study
//! depends on:
//!
//! * Python exception semantics: `AttributeError` on `None.attr`,
//!   `UnboundLocalError` for read-before-assign locals, `KeyError`,
//!   `TypeError`, user-defined exception classes with single
//!   inheritance, and `try/except/else/finally`.
//! * A **virtual clock** ([`clock::VirtualClock`]): every interpreter
//!   step advances simulated time; `time.sleep` jumps it. CPU hogs
//!   (registered via the `profipy_rt.hog()` native, injected by the
//!   `$HOG` DSL directive) multiply the per-step cost, starving the
//!   program the way stale busy threads starve CPython.
//! * A **fuel limit** so runaway mutants terminate deterministically —
//!   the sandbox maps fuel exhaustion / missed virtual deadlines to the
//!   paper's *timeout* failure mode.
//! * A **fault trigger** shared cell (paper §IV-B): mutated code guards
//!   faulty branches with `profipy_rt.trigger()`, which the sandbox
//!   flips between the two workload rounds without restarting the
//!   program.
//! * A pluggable [`host::HostApi`] through which the simulated `urllib`
//!   and `os` modules reach the outside world (the `etcdsim` crate
//!   implements it for the case study).
//!
//! # Example
//!
//! ```
//! use pyrt::vm::Vm;
//!
//! let module = pysrc::parse_module("x = 2 + 3\nprint(x)\n", "m.py").unwrap();
//! let mut vm = Vm::new();
//! vm.run_module(&module).unwrap();
//! assert_eq!(vm.stdout(), "5\n");
//! ```

pub mod bcvm;
pub mod builtins;
pub mod clock;
pub mod compile;
pub mod exc;
pub mod host;
pub mod intern;
pub mod interp;
pub mod ir;
pub mod methods;
pub mod modules;
pub mod prepare;
pub mod value;
pub mod vm;

pub use exc::PyExc;
pub use host::{HostApi, HttpResponse, NoopHost};
pub use intern::{intern, Symbol};
pub use prepare::{FuncProto, PreparedModule};
pub use value::Value;
pub use vm::{set_default_engine, Engine, LogRecord, Severity, SpecVersion, Vm, VmOutcome};
