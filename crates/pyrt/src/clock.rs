//! Virtual time and execution fuel.
//!
//! Every interpreter step advances the virtual clock by a fixed
//! per-step cost, multiplied by the number of active CPU hogs (the
//! `$HOG` fault model injects hog threads that starve the program, as
//! in the paper's §V-C campaign). The sandbox sets a virtual deadline;
//! exceeding it — or exhausting the step budget — is reported as the
//! *timeout* failure mode.

use std::cell::Cell;
use std::rc::Rc;

/// Seconds of virtual time consumed by one interpreter step with no
/// hogs active.
pub const STEP_COST_SECS: f64 = 2e-6;

/// A shareable virtual clock.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Rc<Cell<f64>>,
}

impl VirtualClock {
    /// Creates a clock at t=0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now.get()
    }

    /// Advances the clock.
    pub fn advance(&self, secs: f64) {
        self.now.set(self.now.get() + secs.max(0.0));
    }

    /// Sets the clock to an absolute time (used when resuming a target
    /// across workload rounds).
    pub fn set(&self, secs: f64) {
        self.now.set(secs);
    }
}

/// Step budget and hog accounting.
#[derive(Clone, Debug)]
pub struct Fuel {
    remaining: Rc<Cell<u64>>,
    hogs: Rc<Cell<u32>>,
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::new(u64::MAX)
    }
}

impl Fuel {
    /// Creates a budget of `steps` interpreter steps.
    pub fn new(steps: u64) -> Fuel {
        Fuel {
            remaining: Rc::new(Cell::new(steps)),
            hogs: Rc::new(Cell::new(0)),
        }
    }

    /// Remaining steps.
    pub fn remaining(&self) -> u64 {
        self.remaining.get()
    }

    /// Resets the budget.
    pub fn refill(&self, steps: u64) {
        self.remaining.set(steps);
    }

    /// Consumes one step; returns `false` when exhausted.
    /// Active hogs consume extra budget per step (starvation), capped
    /// so that even heavily-hogged runs terminate by deadline rather
    /// than by instant fuel exhaustion.
    #[must_use]
    pub fn tick(&self) -> bool {
        let cost = 1 + 4 * self.hogs.get().min(8) as u64;
        let r = self.remaining.get();
        if r < cost {
            self.remaining.set(0);
            false
        } else {
            self.remaining.set(r - cost);
            true
        }
    }

    /// Number of active CPU hogs.
    pub fn hogs(&self) -> u32 {
        self.hogs.get()
    }

    /// Registers a CPU hog thread (never unregisters — the paper's
    /// stale threads persist until the container is torn down).
    pub fn add_hog(&self) {
        self.hogs.set(self.hogs.get().saturating_add(1));
    }

    /// Clears hogs (container teardown).
    pub fn clear_hogs(&self) {
        self.hogs.set(0);
    }

    /// Virtual-time cost of one step with the current hog load
    /// (capped like [`Fuel::tick`]).
    pub fn step_cost_secs(&self) -> f64 {
        STEP_COST_SECS * (1.0 + 4.0 * self.hogs.get().min(8) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = VirtualClock::new();
        c.advance(1.5);
        c.advance(-3.0); // negative advances are clamped
        assert_eq!(c.now(), 1.5);
    }

    #[test]
    fn fuel_exhausts() {
        let f = Fuel::new(2);
        assert!(f.tick());
        assert!(f.tick());
        assert!(!f.tick());
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn hogs_multiply_step_cost() {
        let f = Fuel::new(100);
        let base = f.step_cost_secs();
        f.add_hog();
        assert!(f.step_cost_secs() > 4.0 * base);
        assert!(f.tick());
        assert_eq!(f.remaining(), 95); // 1 + 4*1 consumed
    }

    #[test]
    fn clones_share_state() {
        let f = Fuel::new(10);
        let g = f.clone();
        assert!(f.tick());
        assert_eq!(g.remaining(), 9);
    }
}
