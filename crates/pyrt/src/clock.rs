//! Virtual time and execution fuel.
//!
//! Every interpreter step advances the virtual clock by a fixed
//! per-step cost, multiplied by the number of active CPU hogs (the
//! `$HOG` fault model injects hog threads that starve the program, as
//! in the paper's §V-C campaign). The sandbox sets a virtual deadline;
//! exceeding it — or exhausting the step budget — is reported as the
//! *timeout* failure mode.

use std::cell::Cell;
use std::rc::Rc;

/// Seconds of virtual time consumed by one interpreter step with no
/// hogs active.
pub const STEP_COST_SECS: f64 = 2e-6;

/// A shareable virtual clock.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Rc<Cell<f64>>,
}

impl VirtualClock {
    /// Creates a clock at t=0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now.get()
    }

    /// Advances the clock.
    pub fn advance(&self, secs: f64) {
        self.now.set(self.now.get() + secs.max(0.0));
    }

    /// Advances by `steps` increments of `secs` each, accumulating
    /// exactly like `steps` sequential [`VirtualClock::advance`] calls
    /// — timestamps must not depend on how tick batches were sliced,
    /// and a single `steps * secs` multiply would round differently.
    pub fn advance_steps(&self, steps: u64, secs: f64) {
        let secs = secs.max(0.0);
        let mut now = self.now.get();
        for _ in 0..steps {
            now += secs;
        }
        self.now.set(now);
    }

    /// Sets the clock to an absolute time (used when resuming a target
    /// across workload rounds).
    pub fn set(&self, secs: f64) {
        self.now.set(secs);
    }
}

/// Step budget and hog accounting.
#[derive(Clone, Debug)]
pub struct Fuel {
    remaining: Rc<Cell<u64>>,
    hogs: Rc<Cell<u32>>,
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel::new(u64::MAX)
    }
}

impl Fuel {
    /// Creates a budget of `steps` interpreter steps.
    pub fn new(steps: u64) -> Fuel {
        Fuel {
            remaining: Rc::new(Cell::new(steps)),
            hogs: Rc::new(Cell::new(0)),
        }
    }

    /// Remaining steps.
    pub fn remaining(&self) -> u64 {
        self.remaining.get()
    }

    /// Resets the budget.
    pub fn refill(&self, steps: u64) {
        self.remaining.set(steps);
    }

    /// Consumes one step; returns `false` when exhausted.
    /// Active hogs consume extra budget per step (starvation), capped
    /// so that even heavily-hogged runs terminate by deadline rather
    /// than by instant fuel exhaustion.
    #[must_use]
    pub fn tick(&self) -> bool {
        self.consume(1)
    }

    /// Consumes `steps` steps at once; returns `false` (and zeroes the
    /// budget) when the batch contains the exhausting step. Equivalent
    /// to `steps` sequential [`Fuel::tick`] calls: the n-th tick fails
    /// iff `remaining < n * cost`.
    #[must_use]
    pub fn consume(&self, steps: u64) -> bool {
        let total = steps.saturating_mul(self.step_cost());
        let r = self.remaining.get();
        if r < total {
            self.remaining.set(0);
            false
        } else {
            self.remaining.set(r - total);
            true
        }
    }

    /// Budget cost of one step under the current hog load.
    pub fn step_cost(&self) -> u64 {
        1 + 4 * self.hogs.get().min(8) as u64
    }

    /// The 1-based index of the step at which the budget would exhaust
    /// if ticking continued from here (the first step where
    /// `remaining < cost`). Saturates instead of overflowing for the
    /// unlimited default budget.
    pub fn steps_until_exhaustion(&self) -> u64 {
        (self.remaining.get() / self.step_cost()).saturating_add(1)
    }

    /// Number of active CPU hogs.
    pub fn hogs(&self) -> u32 {
        self.hogs.get()
    }

    /// Registers a CPU hog thread (never unregisters — the paper's
    /// stale threads persist until the container is torn down).
    pub fn add_hog(&self) {
        self.hogs.set(self.hogs.get().saturating_add(1));
    }

    /// Clears hogs (container teardown).
    pub fn clear_hogs(&self) {
        self.hogs.set(0);
    }

    /// Virtual-time cost of one step with the current hog load
    /// (capped like [`Fuel::tick`]).
    pub fn step_cost_secs(&self) -> f64 {
        STEP_COST_SECS * (1.0 + 4.0 * self.hogs.get().min(8) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = VirtualClock::new();
        c.advance(1.5);
        c.advance(-3.0); // negative advances are clamped
        assert_eq!(c.now(), 1.5);
    }

    #[test]
    fn fuel_exhausts() {
        let f = Fuel::new(2);
        assert!(f.tick());
        assert!(f.tick());
        assert!(!f.tick());
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn hogs_multiply_step_cost() {
        let f = Fuel::new(100);
        let base = f.step_cost_secs();
        f.add_hog();
        assert!(f.step_cost_secs() > 4.0 * base);
        assert!(f.tick());
        assert_eq!(f.remaining(), 95); // 1 + 4*1 consumed
    }

    #[test]
    fn clones_share_state() {
        let f = Fuel::new(10);
        let g = f.clone();
        assert!(f.tick());
        assert_eq!(g.remaining(), 9);
    }

    #[test]
    fn batched_consume_matches_sequential_ticks() {
        // The n-th tick fails iff remaining < n * cost; consume(n) must
        // agree exactly, including zeroing the budget on failure.
        for budget in [0u64, 1, 4, 5, 9, 10, 11] {
            for n in 1u64..=12 {
                let seq = Fuel::new(budget);
                let mut seq_ok = true;
                for _ in 0..n {
                    if !seq.tick() {
                        seq_ok = false;
                        break;
                    }
                }
                let batch = Fuel::new(budget);
                assert_eq!(batch.consume(n), seq_ok, "budget={budget} n={n}");
                assert_eq!(batch.remaining(), seq.remaining(), "budget={budget} n={n}");
            }
        }
    }

    #[test]
    fn exhaustion_step_prediction() {
        let f = Fuel::new(10);
        assert_eq!(f.steps_until_exhaustion(), 11);
        assert!(f.consume(10));
        assert_eq!(f.steps_until_exhaustion(), 1);
        assert!(!f.consume(1));

        let hogged = Fuel::new(10);
        hogged.add_hog(); // cost 5 per step
        assert_eq!(hogged.steps_until_exhaustion(), 3);
        assert!(hogged.consume(2));
        assert!(!hogged.consume(1));

        // Unlimited budget must not overflow.
        assert_eq!(Fuel::default().steps_until_exhaustion(), u64::MAX);
    }
}
