//! Python exception machinery.

use crate::value::{Heap, Value};
use std::fmt;

/// A raised Python exception travelling up the interpreter stack.
///
/// `class_name` is kept denormalized so failure classifiers can match on
/// it even when the exception value is a bare builtin.
#[derive(Clone, Debug)]
pub struct PyExc {
    /// Exception class name (e.g. `"AttributeError"`).
    pub class_name: String,
    /// Human-readable message.
    pub message: String,
    /// The exception object, if one was instantiated (user classes).
    pub value: Option<Value>,
    /// Simulated traceback: function names innermost-last.
    pub traceback: Vec<String>,
}

impl PyExc {
    /// Creates a builtin-class exception.
    pub fn new(class_name: impl Into<String>, message: impl Into<String>) -> PyExc {
        PyExc {
            class_name: class_name.into(),
            message: message.into(),
            value: None,
            traceback: Vec::new(),
        }
    }

    /// Creates an exception carrying an instantiated exception object.
    pub fn with_value(
        class_name: impl Into<String>,
        message: impl Into<String>,
        value: Value,
    ) -> PyExc {
        PyExc {
            class_name: class_name.into(),
            message: message.into(),
            value: Some(value),
            traceback: Vec::new(),
        }
    }

    /// `TypeError`.
    pub fn type_error(message: impl Into<String>) -> PyExc {
        PyExc::new("TypeError", message)
    }

    /// `NameError`.
    pub fn name_error(name: &str) -> PyExc {
        PyExc::new("NameError", format!("name '{name}' is not defined"))
    }

    /// `UnboundLocalError` — the paper's §V-C dominant failure mode.
    pub fn unbound_local(name: &str) -> PyExc {
        PyExc::new(
            "UnboundLocalError",
            format!("local variable '{name}' referenced before assignment"),
        )
    }

    /// `AttributeError` — e.g. the paper's §V-B
    /// `'NoneType' object has no attribute 'startswith'`.
    pub fn attribute_error(type_name: &str, attr: &str) -> PyExc {
        PyExc::new(
            "AttributeError",
            format!("'{type_name}' object has no attribute '{attr}'"),
        )
    }

    /// `KeyError`.
    pub fn key_error(heap: &Heap, key: Value) -> PyExc {
        PyExc::new("KeyError", key.repr(heap))
    }

    /// `IndexError`.
    pub fn index_error(what: &str) -> PyExc {
        PyExc::new("IndexError", format!("{what} index out of range"))
    }

    /// `ValueError`.
    pub fn value_error(message: impl Into<String>) -> PyExc {
        PyExc::new("ValueError", message)
    }

    /// `ZeroDivisionError`.
    pub fn zero_division() -> PyExc {
        PyExc::new("ZeroDivisionError", "division by zero")
    }

    /// Interpreter resource exhaustion (fuel/step budget). Mapped by the
    /// sandbox to the *timeout* failure mode.
    pub fn timeout() -> PyExc {
        PyExc::new("ProfipyFuelExhausted", "interpreter step budget exhausted")
    }

    /// Pushes a frame name onto the simulated traceback.
    pub fn with_frame(mut self, frame: &str) -> PyExc {
        self.traceback.push(frame.to_string());
        self
    }

    /// One-line rendering as CPython would print the final line of a
    /// traceback (`Class: message`).
    pub fn one_line(&self) -> String {
        if self.message.is_empty() {
            self.class_name.clone()
        } else {
            format!("{}: {}", self.class_name, self.message)
        }
    }
}

impl fmt::Display for PyExc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.one_line())
    }
}

impl std::error::Error for PyExc {}

/// Non-exceptional control flow escaping a block.
#[derive(Clone, Debug)]
pub enum Flow {
    /// Normal fallthrough.
    Normal,
    /// `return value`.
    Return(Value),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// Names of the built-in exception classes, base-first. Used by the VM
/// to construct the builtin class hierarchy.
pub const BUILTIN_EXCEPTIONS: &[(&str, Option<&str>)] = &[
    ("BaseException", None),
    ("Exception", Some("BaseException")),
    ("ArithmeticError", Some("Exception")),
    ("ZeroDivisionError", Some("ArithmeticError")),
    ("AttributeError", Some("Exception")),
    ("LookupError", Some("Exception")),
    ("KeyError", Some("LookupError")),
    ("IndexError", Some("LookupError")),
    ("NameError", Some("Exception")),
    ("UnboundLocalError", Some("NameError")),
    ("TypeError", Some("Exception")),
    ("ValueError", Some("Exception")),
    ("RuntimeError", Some("Exception")),
    ("StopIteration", Some("Exception")),
    ("OSError", Some("Exception")),
    ("IOError", Some("OSError")),
    ("ConnectionError", Some("OSError")),
    ("ConnectionRefusedError", Some("ConnectionError")),
    ("TimeoutError", Some("OSError")),
    ("AssertionError", Some("Exception")),
    ("NotImplementedError", Some("RuntimeError")),
    ("ImportError", Some("Exception")),
    ("KeyboardInterrupt", Some("BaseException")),
    // Internal: fuel exhaustion escapes `except Exception` handlers,
    // like KeyboardInterrupt, so mutants cannot swallow timeouts.
    ("ProfipyFuelExhausted", Some("BaseException")),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_formats_like_cpython() {
        let e = PyExc::attribute_error("NoneType", "startswith");
        assert_eq!(
            e.one_line(),
            "AttributeError: 'NoneType' object has no attribute 'startswith'"
        );
    }

    #[test]
    fn unbound_local_matches_paper_message() {
        let e = PyExc::unbound_local("response");
        assert!(e.one_line().contains("referenced before assignment"));
    }

    #[test]
    fn builtin_exception_table_is_closed() {
        // Every base must appear before its subclass.
        for (i, (_, base)) in BUILTIN_EXCEPTIONS.iter().enumerate() {
            if let Some(base) = base {
                assert!(
                    BUILTIN_EXCEPTIONS[..i].iter().any(|(n, _)| n == base),
                    "base {base} must precede its subclass"
                );
            }
        }
    }
}
