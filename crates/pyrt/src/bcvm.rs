//! The bytecode dispatch loop: a flat `pc`-driven interpreter over
//! [`CodeObject`]s, sharing the tree walk's values, frames, builtins,
//! name-resolution fallbacks, exception machinery, and host calls.
//!
//! The loop has no exception tables: `try`/`with` compile to
//! [`Insn::ExecStmt`] trampolines into the tree walk, so a raised
//! [`PyExc`] simply propagates out of `run` (adding the frame name is
//! the caller's job, exactly as with the tree walk). `break`/`continue`
//! escaping a trampolined statement re-enter the bytecode at the
//! enclosing loop's patched targets.

use crate::exc::{Flow, PyExc};
use crate::interp::{self, Frame, FrameLocals};
use crate::ir::{CodeObject, Insn, NO_LOOP};
use crate::value::{values_eq, DictObj, FuncObj, Value};
use crate::vm::Vm;

/// An in-flight call's argument builder (between `CallBegin` and
/// `CallEnd`).
struct CallBuilder {
    callee: Value,
    pos: Vec<Value>,
    kw: Vec<(String, Value)>,
}

/// Executes a compiled scope body in `frame`, returning the function's
/// return value (`None` when the body falls off the end or a
/// loop-control flow escapes the frame).
///
/// # Errors
///
/// Propagates any raised [`PyExc`] (without the frame-name traceback
/// entry; the caller adds it, mirroring the tree-walk call path).
pub fn run(vm: &mut Vm, frame: &mut Frame, code: &CodeObject) -> Result<Value, PyExc> {
    // Value stacks are recycled through the VM so the (recursion-deep)
    // call path doesn't allocate one per frame.
    let mut stack = vm.bc_stacks.borrow_mut().pop().unwrap_or_default();
    let result = run_on(vm, frame, code, &mut stack);
    stack.clear();
    vm.bc_stacks.borrow_mut().push(stack);
    result
}

fn run_on(
    vm: &mut Vm,
    frame: &mut Frame,
    code: &CodeObject,
    stack: &mut Vec<Value>,
) -> Result<Value, PyExc> {
    let mut iters: Vec<(Vec<Value>, usize)> = Vec::new();
    let mut calls: Vec<CallBuilder> = Vec::new();
    let insns = &code.insns;
    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        pc += 1;
        match insn {
            Insn::Tick(n) => vm.tick_n(n)?,
            Insn::Const(i) => stack.push(code.consts[i as usize].value(&vm.heap)),
            Insn::Pop => {
                stack.pop();
            }
            Insn::Dup => {
                let v = *stack.last().expect("stack discipline");
                stack.push(v);
            }
            Insn::LoadSlot { slot, sym } => {
                let v = if let FrameLocals::Slots(slots) = &frame.locals {
                    match slots[slot as usize] {
                        Some(v) => v,
                        None => return Err(PyExc::unbound_local(sym.as_str())),
                    }
                } else {
                    interp::read_sym_fallback(vm, frame, sym)?
                };
                stack.push(v);
            }
            Insn::StoreSlot { slot, sym } => {
                let v = stack.pop().expect("stack discipline");
                if let FrameLocals::Slots(slots) = &mut frame.locals {
                    slots[slot as usize] = Some(v);
                } else {
                    interp::write_sym(frame, sym, v);
                }
            }
            Insn::LoadDyn(sym) => {
                let v = if let FrameLocals::Dynamic(locals) = &frame.locals {
                    match locals.borrow().get_sym(sym) {
                        Some(v) => v,
                        None => return Err(PyExc::unbound_local(sym.as_str())),
                    }
                } else {
                    interp::read_sym_fallback(vm, frame, sym)?
                };
                stack.push(v);
            }
            Insn::StoreDyn(sym) => {
                let v = stack.pop().expect("stack discipline");
                if let FrameLocals::Dynamic(locals) = &mut frame.locals {
                    locals.borrow_mut().set_sym(sym, v);
                } else {
                    interp::write_sym(frame, sym, v);
                }
            }
            Insn::LoadCell(sym) => {
                let mut found = None;
                for scope in frame.captured.iter().rev() {
                    if let Some(v) = scope.borrow().get_sym(sym) {
                        found = Some(v);
                        break;
                    }
                }
                let v = match found {
                    Some(v) => v,
                    None => interp::read_global_sym(vm, frame, sym)?,
                };
                stack.push(v);
            }
            Insn::LoadGlobal(sym) => stack.push(interp::read_global_sym(vm, frame, sym)?),
            Insn::StoreGlobal(sym) => {
                let v = stack.pop().expect("stack discipline");
                frame.globals.borrow_mut().set_sym(sym, v);
            }
            Insn::LoadFallback(sym) => {
                stack.push(interp::read_sym_fallback(vm, frame, sym)?)
            }
            Insn::StoreSym(sym) => {
                let v = stack.pop().expect("stack discipline");
                interp::write_sym(frame, sym, v);
            }
            Insn::LoadAttr(sym) => {
                let obj = stack.pop().expect("stack discipline");
                stack.push(interp::get_attr_sym(vm, obj, sym)?);
            }
            Insn::StoreAttr(sym) => {
                let obj = stack.pop().expect("stack discipline");
                let value = stack.pop().expect("stack discipline");
                interp::set_attr_sym(&vm.heap, obj, sym, value)?;
            }
            Insn::LoadItem => {
                let idx = stack.pop().expect("stack discipline");
                let obj = stack.pop().expect("stack discipline");
                stack.push(interp::get_item(&vm.heap, obj, idx)?);
            }
            Insn::StoreItem => {
                let idx = stack.pop().expect("stack discipline");
                let obj = stack.pop().expect("stack discipline");
                let value = stack.pop().expect("stack discipline");
                interp::set_item(&vm.heap, obj, idx, value)?;
            }
            Insn::BuildTuple(n) => {
                let items = stack.split_off(stack.len() - n as usize);
                stack.push(vm.heap.new_tuple(items));
            }
            Insn::BuildList(n) => {
                let items = stack.split_off(stack.len() - n as usize);
                stack.push(vm.heap.new_list(items));
            }
            Insn::BuildSet(n) => {
                let items = stack.split_off(stack.len() - n as usize);
                let mut out: Vec<Value> = Vec::new();
                for v in items {
                    if !out.iter().any(|&x| values_eq(&vm.heap, x, v)) {
                        out.push(v);
                    }
                }
                stack.push(vm.heap.new_set(out));
            }
            Insn::BuildDict(n) => {
                let items = stack.split_off(stack.len() - 2 * n as usize);
                let mut d = DictObj::new();
                let mut it = items.into_iter();
                while let (Some(k), Some(v)) = (it.next(), it.next()) {
                    d.set(&vm.heap, k, v);
                }
                stack.push(vm.heap.new_dict(d));
            }
            Insn::BuildSlice => {
                let step = stack.pop().expect("stack discipline");
                let upper = stack.pop().expect("stack discipline");
                let lower = stack.pop().expect("stack discipline");
                let tag = vm.heap.new_str("__slice__");
                stack.push(vm.heap.new_tuple(vec![tag, lower, upper, step]));
            }
            Insn::UnpackSeq(n) => {
                let v = stack.pop().expect("stack discipline");
                let values = interp::iter_values(&vm.heap, v)?;
                if values.len() != n as usize {
                    return Err(PyExc::value_error(format!(
                        "cannot unpack {} values into {} targets",
                        values.len(),
                        n
                    )));
                }
                stack.extend(values.into_iter().rev());
            }
            Insn::Unary(op) => {
                let v = stack.pop().expect("stack discipline");
                stack.push(interp::unary_op(&vm.heap, op, v)?);
            }
            Insn::Binary(op) => {
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                stack.push(interp::binary_op(&vm.heap, op, l, r)?);
            }
            Insn::Cmp(op) => {
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                stack.push(Value::Bool(interp::compare(&vm.heap, op, l, r)?));
            }
            Insn::CmpJump { op, target } => {
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                if interp::compare(&vm.heap, op, l, r)? {
                    stack.push(r);
                } else {
                    stack.push(Value::Bool(false));
                    pc = target as usize;
                }
            }
            // Fused superinstructions: settle the batched steps, then
            // run the plain op's body — one dispatch instead of two
            // (or three for the augmented-assignment forms).
            Insn::TickLoadSlot { n, slot, sym } => {
                vm.tick_n(n)?;
                let v = if let FrameLocals::Slots(slots) = &frame.locals {
                    match slots[slot as usize] {
                        Some(v) => v,
                        None => return Err(PyExc::unbound_local(sym.as_str())),
                    }
                } else {
                    interp::read_sym_fallback(vm, frame, sym)?
                };
                stack.push(v);
            }
            Insn::TickLoadGlobal { n, sym } => {
                vm.tick_n(n)?;
                stack.push(interp::read_global_sym(vm, frame, sym)?);
            }
            Insn::TickBinary { n, op } => {
                vm.tick_n(n)?;
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                stack.push(interp::binary_op(&vm.heap, op, l, r)?);
            }
            Insn::TickCmp { n, op } => {
                vm.tick_n(n)?;
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                stack.push(Value::Bool(interp::compare(&vm.heap, op, l, r)?));
            }
            Insn::TickBinaryStoreSlot { n, op, slot, sym } => {
                vm.tick_n(n)?;
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                let v = interp::binary_op(&vm.heap, op, l, r)?;
                if let FrameLocals::Slots(slots) = &mut frame.locals {
                    slots[slot as usize] = Some(v);
                } else {
                    interp::write_sym(frame, sym, v);
                }
            }
            Insn::TickBinaryStoreGlobal { n, op, sym } => {
                vm.tick_n(n)?;
                let r = stack.pop().expect("stack discipline");
                let l = stack.pop().expect("stack discipline");
                let v = interp::binary_op(&vm.heap, op, l, r)?;
                frame.globals.borrow_mut().set_sym(sym, v);
            }
            Insn::Jump(t) => pc = t as usize,
            Insn::JumpIfFalse(t) => {
                if !stack.pop().expect("stack discipline").truthy(&vm.heap) {
                    pc = t as usize;
                }
            }
            Insn::JumpIfTrue(t) => {
                if stack.pop().expect("stack discipline").truthy(&vm.heap) {
                    pc = t as usize;
                }
            }
            Insn::JumpIfFalseOrPop(t) => {
                if stack.last().expect("stack discipline").truthy(&vm.heap) {
                    stack.pop();
                } else {
                    pc = t as usize;
                }
            }
            Insn::JumpIfTrueOrPop(t) => {
                if stack.last().expect("stack discipline").truthy(&vm.heap) {
                    pc = t as usize;
                } else {
                    stack.pop();
                }
            }
            Insn::GetIter => {
                let v = stack.pop().expect("stack discipline");
                iters.push((interp::iter_values(&vm.heap, v)?, 0));
            }
            Insn::ForNext(t) => {
                let (items, idx) = iters.last_mut().expect("iter discipline");
                if *idx < items.len() {
                    let v = items[*idx];
                    *idx += 1;
                    stack.push(v);
                } else {
                    iters.pop();
                    pc = t as usize;
                }
            }
            Insn::PopIter => {
                iters.pop();
            }
            Insn::CallBegin => {
                let callee = stack.pop().expect("stack discipline");
                calls.push(CallBuilder {
                    callee,
                    pos: Vec::new(),
                    kw: Vec::new(),
                });
            }
            Insn::ArgPos => {
                let v = stack.pop().expect("stack discipline");
                calls.last_mut().expect("call discipline").pos.push(v);
            }
            Insn::ArgKw(sym) => {
                let v = stack.pop().expect("stack discipline");
                calls
                    .last_mut()
                    .expect("call discipline")
                    .kw
                    .push((sym.as_str().to_string(), v));
            }
            Insn::ArgStar => {
                let v = stack.pop().expect("stack discipline");
                let splat = interp::iter_values(&vm.heap, v)?;
                calls.last_mut().expect("call discipline").pos.extend(splat);
            }
            Insn::ArgDoubleStar => {
                let v = stack.pop().expect("stack discipline");
                let builder = calls.last_mut().expect("call discipline");
                match v {
                    Value::Dict(d) => {
                        let pairs: Vec<(Value, Value)> =
                            vm.heap.dict(d).borrow().iter().copied().collect();
                        for (k, val) in pairs {
                            builder.kw.push((k.to_display(&vm.heap), val));
                        }
                    }
                    other => {
                        return Err(PyExc::type_error(format!(
                            "argument after ** must be a mapping, not {}",
                            other.type_name()
                        )))
                    }
                }
            }
            Insn::CallEnd => {
                let b = calls.pop().expect("call discipline");
                stack.push(interp::call_value(vm, b.callee, b.pos, b.kw)?);
            }
            Insn::Call(argc) => {
                // Recycled argument vector: drained into the callee's
                // frame and returned to the pool by `call_function`.
                let mut pos = vm.arg_pool.borrow_mut().pop().unwrap_or_default();
                pos.extend(stack.drain(stack.len() - argc as usize..));
                let callee = stack.pop().expect("stack discipline");
                // Plain functions bypass the `call_value` dispatch layer
                // — by far the hottest callee kind in compiled code.
                let r = match callee {
                    Value::Func(f) => interp::call_function(vm, f, pos, Vec::new())?,
                    other => interp::call_value(vm, other, pos, Vec::new())?,
                };
                stack.push(r);
            }
            Insn::TickCall { n, argc } => {
                vm.tick_n(n)?;
                let mut pos = vm.arg_pool.borrow_mut().pop().unwrap_or_default();
                pos.extend(stack.drain(stack.len() - argc as usize..));
                let callee = stack.pop().expect("stack discipline");
                let r = match callee {
                    Value::Func(f) => interp::call_function(vm, f, pos, Vec::new())?,
                    other => interp::call_value(vm, other, pos, Vec::new())?,
                };
                stack.push(r);
            }
            Insn::MakeFunction(i) => {
                let decl = &code.fn_decls[i as usize];
                let n = decl.has_default.iter().filter(|h| **h).count();
                let values = stack.split_off(stack.len() - n);
                let mut it = values.into_iter();
                let defaults = decl
                    .has_default
                    .iter()
                    .map(|has| if *has { it.next() } else { None })
                    .collect();
                let mut captured = frame.captured.clone();
                if let FrameLocals::Dynamic(locals) = &frame.locals {
                    captured.push(locals.clone());
                }
                stack.push(vm.heap.new_func(FuncObj {
                    proto: decl.proto.clone(),
                    defaults,
                    globals: frame.globals.clone(),
                    captured,
                }));
            }
            Insn::Raise { has_exc } => {
                let e = if has_exc {
                    let v = stack.pop().expect("stack discipline");
                    interp::exception_from_value(vm, frame, v)?
                } else {
                    let handling = vm.handling.borrow();
                    match handling.last() {
                        Some(e) => e.clone(),
                        None => PyExc::new("RuntimeError", "No active exception to re-raise"),
                    }
                };
                return Err(e.with_frame(&frame.proto.name));
            }
            Insn::AssertFail { has_msg } => {
                let message = if has_msg {
                    stack.pop().expect("stack discipline").to_display(&vm.heap)
                } else {
                    String::new()
                };
                return Err(PyExc::new("AssertionError", message));
            }
            Insn::Return => return Ok(stack.pop().expect("stack discipline")),
            Insn::ReturnNone => return Ok(Value::None),
            Insn::ExecStmt { stmt, brk, cont } => {
                match interp::exec_stmt(vm, frame, &code.stmts[stmt as usize])? {
                    Flow::Normal => {}
                    Flow::Return(v) => return Ok(v),
                    Flow::Break => {
                        if brk == NO_LOOP {
                            return Ok(Value::None);
                        }
                        pc = brk as usize;
                    }
                    Flow::Continue => {
                        if cont == NO_LOOP {
                            return Ok(Value::None);
                        }
                        pc = cont as usize;
                    }
                }
            }
            Insn::EvalExpr(i) => {
                stack.push(interp::eval(vm, frame, &code.exprs[i as usize])?)
            }
        }
    }
    Ok(Value::None)
}
