//! Integration tests across the pyrt ↔ etcdsim boundary: mini-Python
//! snippets talking to the simulated etcd server through the simulated
//! urllib/os modules — the §V substrate without the full client.

use etcdsim::EtcdHost;
use pyrt::Vm;
use std::rc::Rc;

fn run_with_server(src: &str) -> (Vm, Result<(), pyrt::PyExc>) {
    let host = Rc::new(EtcdHost::new(3));
    host.start_server();
    let mut vm = Vm::with_host(host, 3);
    let module = pysrc::parse_module(src, "snippet.py").expect("snippet parses");
    let result = vm.run_module(&module);
    (vm, result)
}

#[test]
fn put_then_get_roundtrips_through_urllib() {
    let (vm, result) = run_with_server(concat!(
        "import urllib\n",
        "resp = urllib.request('PUT', 'http://127.0.0.1:2379/v2/keys/greeting', 'value=hi')\n",
        "print(resp['status'])\n",
        "resp = urllib.request('GET', 'http://127.0.0.1:2379/v2/keys/greeting', None)\n",
        "print('VALUE hi' in resp['data'])\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "201\nTrue\n");
}

#[test]
fn missing_key_yields_404_visible_to_python() {
    let (vm, result) = run_with_server(concat!(
        "import urllib\n",
        "resp = urllib.request('GET', 'http://127.0.0.1:2379/v2/keys/nope', None)\n",
        "print(resp['status'])\n",
        "print(resp['data'].startswith('ERROR 100'))\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "404\nTrue\n");
}

#[test]
fn connection_refused_raises_python_exception() {
    // No server started.
    let host = Rc::new(EtcdHost::new(0));
    let mut vm = Vm::with_host(host, 0);
    let module = pysrc::parse_module(
        concat!(
            "import urllib\n",
            "try:\n",
            "    resp = urllib.request('GET', 'http://127.0.0.1:2379/health', None)\n",
            "except ConnectionRefusedError as e:\n",
            "    print('refused:', str(e))\n",
        ),
        "t.py",
    )
    .unwrap();
    vm.run_module(&module).unwrap();
    assert!(vm.stdout().starts_with("refused: connection refused"));
}

#[test]
fn request_latency_advances_virtual_clock() {
    let (vm, result) = run_with_server(concat!(
        "import urllib\n",
        "import time\n",
        "t0 = time.time()\n",
        "resp = urllib.request('GET', 'http://127.0.0.1:2379/health', None)\n",
        "print(time.time() - t0 > 0.0005)\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "True\n");
}

#[test]
fn hog_registered_from_python_starves_short_timeouts() {
    let (vm, result) = run_with_server(concat!(
        "import urllib\n",
        "import profipy_rt\n",
        "i = 0\n",
        "while i < 20:\n",
        "    profipy_rt.hog()\n",
        "    i = i + 1\n",
        "try:\n",
        "    resp = urllib.request('GET', 'http://127.0.0.1:2379/health', None, timeout=0.25)\n",
        "    print('ok')\n",
        "except urllib.ConnectTimeoutError:\n",
        "    print('starved')\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "starved\n");
}

#[test]
fn os_execute_controls_server_lifecycle_from_python() {
    let (vm, result) = run_with_server(concat!(
        "import os\n",
        "import urllib\n",
        "r = os.execute('etcd-stop')\n",
        "try:\n",
        "    resp = urllib.request('GET', 'http://127.0.0.1:2379/health', None)\n",
        "    print('up')\n",
        "except ConnectionRefusedError:\n",
        "    print('down')\n",
        "r = os.execute('etcd-start')\n",
        "resp = urllib.request('GET', 'http://127.0.0.1:2379/health', None)\n",
        "print(resp['status'])\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "down\n200\n");
}

#[test]
fn failed_execute_raises_oserror_in_python() {
    let (vm, result) = run_with_server(concat!(
        "import os\n",
        "import urllib\n",
        // Open a connection, then stop the server so the port is held.
        "resp = urllib.request('POST', 'http://127.0.0.1:2379/v2/connection', None)\n",
        "r = os.execute('etcd-stop')\n",
        "try:\n",
        "    r = os.execute('etcd-start')\n",
        "    print('restarted')\n",
        "except OSError as e:\n",
        "    print('EADDRINUSE' if 'address already in use' in str(e) else 'other')\n",
    ));
    result.unwrap();
    assert_eq!(vm.stdout(), "EADDRINUSE\n");
}

#[test]
fn full_client_fault_free_leaves_consistent_store() {
    let host = Rc::new(EtcdHost::new(5));
    host.start_server();
    let mut vm = Vm::with_host(host.clone(), 5);
    let client = pysrc::parse_module(targets::CLIENT_SOURCE, "etcd").unwrap();
    vm.register_source("etcd", Rc::new(client));
    let driver = pysrc::parse_module(
        concat!(
            "import etcd\n",
            "c = etcd.Client()\n",
            "c.set('/a/b', 'v1')\n",
            "c.set('/a/c', 'v2', 30)\n",
            "print(c.get('/a/b'))\n",
            "c.test_and_set('/a/b', 'v3', 'v1')\n",
            "print(c.get('/a/b'))\n",
            "keys = c.ls('/a')\n",
            "print(len(keys))\n",
            "c.delete('/a', True)\n",
        ),
        "driver.py",
    )
    .unwrap();
    vm.run_module(&driver).unwrap_or_else(|e| {
        panic!("driver failed: {e}\nstderr: {}", vm.stderr());
    });
    assert_eq!(vm.stdout(), "v1\nv3\n3\n");
    assert_eq!(host.store_len(), 0, "cleanup removed everything");
}

#[test]
fn client_exceptions_carry_paper_messages() {
    let host = Rc::new(EtcdHost::new(5));
    host.start_server();
    let mut vm = Vm::with_host(host, 5);
    let client = pysrc::parse_module(targets::CLIENT_SOURCE, "etcd").unwrap();
    vm.register_source("etcd", Rc::new(client));
    let driver = pysrc::parse_module(
        concat!(
            "import etcd\n",
            "c = etcd.Client()\n",
            "try:\n",
            "    c.get('/missing')\n",
            "except etcd.EtcdKeyNotFound as e:\n",
            "    print(str(e))\n",
            "try:\n",
            "    c.set('/k', 'caf\u{00e9}')\n",
            "except etcd.EtcdException as e:\n",
            "    print(str(e))\n",
            "try:\n",
            "    c.get(None)\n",
            "except AttributeError as e:\n",
            "    print(str(e))\n",
        ),
        "driver.py",
    )
    .unwrap();
    vm.run_module(&driver).unwrap();
    let out = vm.stdout();
    assert!(out.contains("Key not found: /v2/keys/missing"), "{out}");
    assert!(out.contains("Bad response: 400 Bad Request"), "{out}");
    assert!(
        out.contains("'NoneType' object has no attribute 'startswith'"),
        "{out}"
    );
}

#[test]
fn trace_events_are_exposed_through_host_api() {
    let (vm, result) = run_with_server(concat!(
        "import urllib\n",
        "resp = urllib.request('PUT', 'http://127.0.0.1:2379/v2/keys/x', 'value=1')\n",
        "resp = urllib.request('GET', 'http://127.0.0.1:2379/v2/keys/missing', None)\n",
    ));
    result.unwrap();
    let events = vm.host.trace_events();
    assert_eq!(events.len(), 2);
    assert!(!events[0].failed);
    assert!(events[1].failed, "404 is a failed span");
    assert!(events[1].name.contains("GET /v2/keys/missing"));
}
