//! [`EtcdHost`]: the [`HostApi`] implementation that wires the
//! interpreted python-etcd client to the simulated etcd server.
//!
//! One `EtcdHost` models one container: the etcd process, the host
//! network, a tiny filesystem, environment variables, and the external
//! utilities the workload may invoke (`etcd-start`, `etcd-restart`,
//! `iptables`, ...).

use crate::errors::EtcdError;
use crate::network::Network;
use crate::node::{EtcdNode, NodeState, ETCD_PORT};
use pyrt::host::{HostApi, HttpResponse, TransportError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Base latency of one request against an idle server (virtual secs).
const BASE_LATENCY: f64 = 0.002;
/// Per-hog latency slowdown (§V-C starvation). Hog *threads*
/// accumulate: a hog injected on a hot code path registers many stale
/// threads and eventually starves short-deadline requests (the
/// client's health probe), while a hog on a cold path barely hurts.
const HOG_SLOWDOWN_PER_THREAD: f64 = 30.0;
/// Cap on the effective hog thread count for latency purposes.
const HOG_THREAD_CAP: u32 = 30;
/// Per-hog-thread probability increment that a read under the race
/// window returns a stale value (§V-C "inconsistent values read from
/// the etcd datastore"), capped.
const STALE_READ_PROB_PER_THREAD: f64 = 0.06;
/// Cap on the stale-read probability.
const STALE_READ_PROB_MAX: f64 = 0.35;

/// One recorded API invocation (consumed by the trace/visualization
/// pipeline, paper §IV-D).
#[derive(Clone, Debug)]
pub struct ApiEvent {
    /// Virtual time the request started.
    pub time: f64,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response HTTP status (0 = transport error).
    pub status: u16,
    /// Virtual seconds the request took.
    pub latency: f64,
}

/// The simulated container host for the etcd case study.
pub struct EtcdHost {
    node: RefCell<EtcdNode>,
    net: RefCell<Network>,
    files: RefCell<BTreeMap<String, String>>,
    env: BTreeMap<String, String>,
    rng: RefCell<StdRng>,
    /// Number of stale hog threads registered by the target.
    hog_threads: Cell<u32>,
    /// Last-overwritten value per key, feeding stale reads.
    stale: RefCell<BTreeMap<String, String>>,
    events: RefCell<Vec<ApiEvent>>,
    exec_log: RefCell<Vec<String>>,
}

impl EtcdHost {
    /// Creates a host with a stopped etcd node and the given RNG seed.
    pub fn new(seed: u64) -> EtcdHost {
        let mut env = BTreeMap::new();
        env.insert("ETCD_HOST".to_string(), "127.0.0.1".to_string());
        env.insert("ETCD_PORT".to_string(), ETCD_PORT.to_string());
        EtcdHost {
            node: RefCell::new(EtcdNode::new()),
            net: RefCell::new(Network::new()),
            files: RefCell::new(BTreeMap::new()),
            env,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            hog_threads: Cell::new(0),
            stale: RefCell::new(BTreeMap::new()),
            events: RefCell::new(Vec::new()),
            exec_log: RefCell::new(Vec::new()),
        }
    }

    /// Starts the etcd server (the workload's deploy step).
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound — callers deploy into a
    /// fresh container.
    pub fn start_server(&self) {
        let mut net = self.net.borrow_mut();
        self.node
            .borrow_mut()
            .start(&mut net)
            .expect("fresh container has a free port");
    }

    /// True if the server is serving requests.
    pub fn serving(&self) -> bool {
        self.node.borrow().serving()
    }

    /// Current server state (diagnostics).
    pub fn node_state(&self) -> NodeState {
        self.node.borrow().state
    }

    /// Recorded API events (for tracing/visualization).
    pub fn events(&self) -> Vec<ApiEvent> {
        self.events.borrow().clone()
    }

    /// Commands executed through `os.execute` (diagnostics).
    pub fn exec_log(&self) -> Vec<String> {
        self.exec_log.borrow().clone()
    }

    /// Number of keys currently stored (consistency checks).
    pub fn store_len(&self) -> usize {
        self.node.borrow().store.len()
    }

    fn record(&self, time: f64, method: &str, path: &str, status: u16, latency: f64) {
        self.events.borrow_mut().push(ApiEvent {
            time,
            method: method.to_string(),
            path: path.to_string(),
            status,
            latency,
        });
    }

    fn latency(&self) -> f64 {
        let jitter: f64 = self.rng.borrow_mut().gen_range(0.5..1.5);
        let threads = self.hog_threads.get().min(HOG_THREAD_CAP) as f64;
        let slow = 1.0 + HOG_SLOWDOWN_PER_THREAD * threads;
        BASE_LATENCY * jitter * slow
    }

    fn route(&self, now: f64, method: &str, path: &str, query: &str, body: &str) -> HttpResponse {
        let node = &mut *self.node.borrow_mut();
        // Wedged server: every data request fails with the bootstrap
        // error (paper §V-A).
        if node.state == NodeState::Wedged && path != "/v2/members" {
            return err_response(&EtcdError::ServerError(
                "member has already been bootstrapped".into(),
            ));
        }
        let params = parse_form(query);
        let form = parse_form(body);
        if path == "/health" {
            return HttpResponse {
                status: 200,
                body: "OK".into(),
            };
        }
        if path == "/v2/members" {
            return match method {
                "PUT" | "POST" => match node.bootstrap() {
                    Ok(()) => HttpResponse {
                        status: 201,
                        body: "BOOTSTRAPPED".into(),
                    },
                    Err(e) => err_response(&e),
                },
                "DELETE" => {
                    node.remove_member();
                    HttpResponse {
                        status: 204,
                        body: String::new(),
                    }
                }
                _ => err_response(&EtcdError::BadRequest(format!(
                    "unsupported method {method} for /v2/members"
                ))),
            };
        }
        if let Some(conn) = path.strip_prefix("/v2/connection") {
            let mut net = self.net.borrow_mut();
            return match method {
                "POST" => match net.connect(node.port) {
                    Ok(id) => HttpResponse {
                        status: 201,
                        body: format!("CONN {id}"),
                    },
                    Err(m) => err_response(&EtcdError::ServerError(m)),
                },
                "DELETE" => {
                    let id: u64 = conn.trim_start_matches('/').parse().unwrap_or(0);
                    net.disconnect(id);
                    HttpResponse {
                        status: 204,
                        body: String::new(),
                    }
                }
                _ => err_response(&EtcdError::BadRequest(format!(
                    "unsupported method {method} for /v2/connection"
                ))),
            };
        }
        let Some(raw_key) = path.strip_prefix("/v2/keys") else {
            return err_response(&EtcdError::BadRequest(format!("unknown path {path}")));
        };
        let key = if raw_key.is_empty() { "/" } else { raw_key };
        let recursive = params.get("recursive").map(String::as_str) == Some("true")
            || form.get("recursive").map(String::as_str) == Some("true");
        let result: Result<String, EtcdError> = match method {
            "GET" => node.store.get(key, now, recursive).map(|nodes| {
                let mut out = String::new();
                for n in nodes {
                    if n.dir {
                        out.push_str(&format!("DIR {}\n", n.key));
                    } else {
                        let value = self.maybe_stale(&n.key, n.value.as_deref().unwrap_or(""));
                        out.push_str(&format!("KEY {}\n", n.key));
                        out.push_str(&format!("VALUE {value}\n"));
                        out.push_str(&format!("INDEX {}\n", n.modified_index));
                    }
                }
                out
            }),
            "PUT" | "POST" => {
                let value = form.get("value").map(String::as_str);
                let ttl = form.get("ttl").and_then(|t| t.parse::<f64>().ok());
                let dir = form.get("dir").map(String::as_str) == Some("true");
                if let Some(prev) = form.get("prevValue") {
                    // Track the overwritten value for stale reads.
                    if let Ok(prev_nodes) = node.store.get(key, now, false) {
                        if let Some(v) = &prev_nodes[0].value {
                            self.stale
                                .borrow_mut()
                                .insert(prev_nodes[0].key.clone(), v.clone());
                        }
                    }
                    node.store
                        .test_and_set(key, value.unwrap_or(""), prev, now)
                        .map(|n| format!("SWAPPED {}\nINDEX {}\n", n.key, n.modified_index))
                } else if dir && method == "PUT" && !form.contains_key("existing") {
                    node.store
                        .mkdir(key, ttl, now)
                        .map(|n| format!("DIR {}\nINDEX {}\n", n.key, n.modified_index))
                } else {
                    // Track the overwritten value for stale reads.
                    if let Ok(prev_nodes) = node.store.get(key, now, false) {
                        if let Some(v) = &prev_nodes[0].value {
                            self.stale.borrow_mut().insert(prev_nodes[0].key.clone(), v.clone());
                        }
                    }
                    node.store.set(key, value, ttl, dir, now).map(|n| {
                        format!(
                            "SET {}\nVALUE {}\nINDEX {}\n",
                            n.key,
                            n.value.as_deref().unwrap_or(""),
                            n.modified_index
                        )
                    })
                }
            }
            "DELETE" => node
                .store
                .delete(key, recursive, now)
                .map(|n| format!("DELETED {}\n", n.key)),
            other => Err(EtcdError::BadRequest(format!("unsupported method {other}"))),
        };
        match result {
            Ok(body) => {
                let status = if matches!(method, "GET" | "DELETE") { 200 } else { 201 };
                HttpResponse { status, body }
            }
            Err(e) => err_response(&e),
        }
    }

    /// Under an active race window, reads sometimes return the previous
    /// value of the key. The probability scales with the number of
    /// stale hog threads racing the request.
    fn maybe_stale(&self, key: &str, fresh: &str) -> String {
        let p = (STALE_READ_PROB_PER_THREAD * self.hog_threads.get() as f64)
            .min(STALE_READ_PROB_MAX);
        if p > 0.0 {
            if let Some(old) = self.stale.borrow().get(key) {
                if self.rng.borrow_mut().gen_bool(p) {
                    return old.clone();
                }
            }
        }
        fresh.to_string()
    }
}

fn err_response(e: &EtcdError) -> HttpResponse {
    HttpResponse {
        status: e.http_status(),
        body: e.body(),
    }
}

fn parse_form(s: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in s.split('&') {
        if pair.is_empty() {
            continue;
        }
        match pair.split_once('=') {
            Some((k, v)) => out.insert(k.to_string(), url_decode(v)),
            None => out.insert(pair.to_string(), String::new()),
        };
    }
    out
}

fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let Ok(b) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_url(url: &str) -> Option<(u16, String, String)> {
    let rest = url
        .strip_prefix("http://")
        .or_else(|| url.strip_prefix("https://"))?;
    let (host_port, path_query) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let port: u16 = match host_port.split_once(':') {
        Some((_, p)) => p.parse().ok()?,
        None => 80,
    };
    let (path, query) = match path_query.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (path_query.to_string(), String::new()),
    };
    Some((port, path, query))
}

impl HostApi for EtcdHost {
    fn http_request(
        &self,
        vm_now: f64,
        method: &str,
        url: &str,
        body: &str,
        timeout: f64,
    ) -> (Result<HttpResponse, TransportError>, f64) {
        let Some((port, path, query)) = parse_url(url) else {
            self.record(vm_now, method, url, 0, 0.0);
            return (Err(TransportError::Reset), 0.0);
        };
        if port != self.node.borrow().port || !self.net.borrow().is_listening(port) {
            self.record(vm_now, method, &path, 0, 0.0);
            return (Err(TransportError::ConnectionRefused), 0.0);
        }
        let latency = self.latency();
        if latency > timeout {
            // Request could not complete in time (starved server).
            self.record(vm_now, method, &path, 0, timeout);
            return (Err(TransportError::Timeout), timeout);
        }
        let resp = self.route(vm_now, method, &path, &query, body);
        self.record(vm_now, method, &path, resp.status, latency);
        (Ok(resp), latency)
    }

    fn getenv(&self, name: &str) -> Option<String> {
        self.env.get(name).cloned()
    }

    fn read_file(&self, path: &str) -> Result<String, String> {
        self.files
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| format!("No such file or directory: '{path}'"))
    }

    fn write_file(&self, path: &str, contents: &str) -> Result<(), String> {
        self.files
            .borrow_mut()
            .insert(path.to_string(), contents.to_string());
        Ok(())
    }

    fn path_exists(&self, path: &str) -> bool {
        self.files.borrow().contains_key(path)
    }

    fn execute(&self, argv: &[String]) -> (i32, String) {
        self.exec_log.borrow_mut().push(argv.join(" "));
        let cmd = argv.first().map(String::as_str).unwrap_or("");
        match cmd {
            "etcd-start" => {
                let mut net = self.net.borrow_mut();
                match self.node.borrow_mut().start(&mut net) {
                    Ok(()) => (0, "etcd started".into()),
                    Err(m) => (1, m),
                }
            }
            "etcd-stop" => {
                let mut net = self.net.borrow_mut();
                self.node.borrow_mut().stop(&mut net);
                (0, "etcd stopped".into())
            }
            "etcd-restart" => {
                let mut net = self.net.borrow_mut();
                let mut node = self.node.borrow_mut();
                node.stop(&mut net);
                match node.start(&mut net) {
                    Ok(()) => (0, "etcd restarted".into()),
                    Err(m) => (1, m),
                }
            }
            "etcd-cleanup" => {
                let port = self.node.borrow().port;
                self.net.borrow_mut().force_free(port);
                self.node.borrow_mut().remove_member();
                (0, "cleaned up".into())
            }
            // External UNIX utilities (§III WPF target): argument
            // validation — corrupted flags make them fail, like
            // `execvp` failures in the referenced Nova bug #732549.
            "iptables" | "dnsmasq" | "e2fsck" => {
                for arg in &argv[1..] {
                    let well_formed = arg.is_ascii()
                        && (arg.starts_with('-')
                            || arg.chars().all(|c| {
                                c.is_ascii_alphanumeric() || "=:/._,".contains(c)
                            }));
                    if !well_formed {
                        return (2, format!("{cmd}: invalid argument '{arg}'"));
                    }
                }
                (0, format!("{cmd}: ok"))
            }
            other => (0, format!("executed: {other}")),
        }
    }

    fn note_hog(&self) {
        self.hog_threads.set(self.hog_threads.get() + 1);
    }

    fn trace_events(&self) -> Vec<pyrt::host::TraceEvent> {
        self.events
            .borrow()
            .iter()
            .map(|e| pyrt::host::TraceEvent {
                time: e.time,
                name: format!("{} {}", e.method, e.path),
                failed: e.status == 0 || e.status >= 400,
                duration: e.latency,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> EtcdHost {
        let h = EtcdHost::new(7);
        h.start_server();
        h
    }

    fn req(h: &EtcdHost, method: &str, path: &str, body: &str) -> HttpResponse {
        let url = format!("http://127.0.0.1:2379{path}");
        h.http_request(0.0, method, &url, body, 5.0).0.unwrap()
    }

    #[test]
    fn put_get_delete_cycle() {
        let h = host();
        assert_eq!(req(&h, "PUT", "/v2/keys/app/name", "value=etcd").status, 201);
        let r = req(&h, "GET", "/v2/keys/app/name", "");
        assert!(r.body.contains("VALUE etcd"));
        assert_eq!(req(&h, "DELETE", "/v2/keys/app/name", "").status, 200);
        assert_eq!(req(&h, "GET", "/v2/keys/app/name", "").status, 404);
    }

    #[test]
    fn missing_key_is_404_with_error_code_100() {
        let h = host();
        let r = req(&h, "GET", "/v2/keys/none", "");
        assert_eq!(r.status, 404);
        assert!(r.body.contains("ERROR 100"));
    }

    #[test]
    fn non_ascii_value_is_400_bad_request() {
        let h = host();
        let r = req(&h, "PUT", "/v2/keys/k", "value=caf\u{00e9}");
        assert_eq!(r.status, 400);
    }

    #[test]
    fn test_and_set_via_prev_value() {
        let h = host();
        req(&h, "PUT", "/v2/keys/k", "value=old");
        let ok = req(&h, "PUT", "/v2/keys/k", "value=new&prevValue=old");
        assert_eq!(ok.status, 201);
        let fail = req(&h, "PUT", "/v2/keys/k", "value=x&prevValue=old");
        assert_eq!(fail.status, 412);
    }

    #[test]
    fn connection_refused_when_server_down() {
        let h = EtcdHost::new(7);
        let (r, _) = h.http_request(0.0, "GET", "http://127.0.0.1:2379/health", "", 5.0);
        assert_eq!(r, Err(TransportError::ConnectionRefused));
    }

    #[test]
    fn double_bootstrap_wedges_and_data_requests_500() {
        let h = host();
        assert_eq!(req(&h, "PUT", "/v2/members", "").status, 201);
        assert_eq!(req(&h, "PUT", "/v2/members", "").status, 500);
        let r = req(&h, "GET", "/v2/keys/any", "");
        assert_eq!(r.status, 500);
        assert!(r.body.contains("member has already been bootstrapped"));
        // Member removal recovers.
        assert_eq!(req(&h, "DELETE", "/v2/members", "").status, 204);
        assert_eq!(req(&h, "GET", "/v2/keys/any", "").status, 404);
    }

    #[test]
    fn stale_connection_blocks_restart() {
        let h = host();
        let r = req(&h, "POST", "/v2/connection", "");
        assert!(r.body.starts_with("CONN "));
        // Restart with the connection still open fails to bind.
        let (code, msg) = h.execute(&["etcd-restart".to_string()]);
        assert_eq!(code, 1, "{msg}");
        assert!(msg.contains("address already in use"));
        // Cleanup frees the port.
        let (code, _) = h.execute(&["etcd-cleanup".to_string()]);
        assert_eq!(code, 0);
        let (code, _) = h.execute(&["etcd-start".to_string()]);
        assert_eq!(code, 0);
    }

    #[test]
    fn closing_connection_allows_restart() {
        let h = host();
        let r = req(&h, "POST", "/v2/connection", "");
        let id = r.body.trim_start_matches("CONN ").to_string();
        assert_eq!(
            req(&h, "DELETE", &format!("/v2/connection/{id}"), "").status,
            204
        );
        let (code, _) = h.execute(&["etcd-restart".to_string()]);
        assert_eq!(code, 0);
    }

    #[test]
    fn hog_activates_slowdown_and_timeouts() {
        let h = host();
        h.note_hog();
        let (r, _) = h.http_request(
            0.0,
            "GET",
            "http://127.0.0.1:2379/health",
            "",
            0.01, // tight timeout; hog slowdown makes latency exceed it
        );
        assert_eq!(r, Err(TransportError::Timeout));
    }

    #[test]
    fn stale_reads_under_race_window() {
        let h = host();
        req(&h, "PUT", "/v2/keys/k", "value=v1");
        req(&h, "PUT", "/v2/keys/k", "value=v2");
        // A hot hog site registers many stale threads.
        for _ in 0..20 {
            h.note_hog();
        }
        let mut saw_stale = false;
        for _ in 0..50 {
            let (r, _) = h.http_request(0.0, "GET", "http://127.0.0.1:2379/v2/keys/k", "", 10.0);
            if r.unwrap().body.contains("VALUE v1") {
                saw_stale = true;
                break;
            }
        }
        assert!(saw_stale, "race window should eventually yield a stale read");
    }

    #[test]
    fn corrupted_iptables_args_fail() {
        let h = host();
        let (code, _) = h.execute(&["iptables".into(), "--dport".into(), "2379".into()]);
        assert_eq!(code, 0);
        let (code, msg) = h.execute(&["iptables".into(), "--dp\u{00f8}rt 2379".into()]);
        assert_eq!(code, 2);
        assert!(msg.contains("invalid argument"));
    }

    #[test]
    fn directory_listing() {
        let h = host();
        req(&h, "PUT", "/v2/keys/cfg/a", "value=1");
        req(&h, "PUT", "/v2/keys/cfg/b", "value=2");
        let r = req(&h, "GET", "/v2/keys/cfg?recursive=true", "");
        assert!(r.body.contains("KEY /cfg/a"));
        assert!(r.body.contains("KEY /cfg/b"));
    }

    #[test]
    fn events_are_recorded() {
        let h = host();
        req(&h, "PUT", "/v2/keys/k", "value=v");
        req(&h, "GET", "/v2/keys/k", "");
        let events = h.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].method, "PUT");
        assert_eq!(events[1].status, 200);
    }

    #[test]
    fn mkdir_and_ttl() {
        let h = host();
        let r = req(&h, "PUT", "/v2/keys/newdir", "dir=true");
        assert_eq!(r.status, 201, "{}", r.body);
        let again = req(&h, "PUT", "/v2/keys/newdir", "dir=true");
        assert_eq!(again.status, 412);
        // TTL expiry uses the virtual clock passed by the VM.
        req(&h, "PUT", "/v2/keys/tmp", "value=x&ttl=5");
        let (late, _) =
            h.http_request(10.0, "GET", "http://127.0.0.1:2379/v2/keys/tmp", "", 5.0);
        assert_eq!(late.unwrap().status, 404);
    }
}
