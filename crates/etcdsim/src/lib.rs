//! `etcdsim` — a simulated etcd key-value store and its host
//! environment, standing in for the real etcd server of the paper's
//! §V case study (python-etcd 0.4.5 + etcd).
//!
//! The simulation reproduces the *server-side states* behind the three
//! §V-A failure modes:
//!
//! * **Reconnection failure** — the host network models TCP port
//!   binding with TIME_WAIT-style leakage: a connection that is never
//!   released (e.g. because a `Missing Function Call` fault removed the
//!   client's `delete_connection`) keeps the port occupied, so a
//!   restarted server cannot bind and the service stays down even after
//!   the fault is disabled.
//! * **"member has already been bootstrapped"** — the cluster membership
//!   state machine rejects a second bootstrap without an intervening
//!   member removal, wedging the server.
//! * **Client crash** — ordinary HTTP/transport errors surface as
//!   Python exceptions in the interpreted client.
//!
//! It also models the §V-B server-side input validation (HTTP 400 for
//! non-ASCII keys, 404/`errorCode 100` for missing keys) and the §V-C
//! race window: while a CPU hog is active, reads may return stale
//! values, reproducing the paper's "inconsistent values read from the
//! etcd datastore".
//!
//! # Example
//!
//! ```
//! use etcdsim::EtcdHost;
//! use pyrt::HostApi;
//!
//! let host = EtcdHost::new(42);
//! host.start_server();
//! let (resp, _) = host.http_request(
//!     0.0, "PUT", "http://127.0.0.1:2379/v2/keys/greeting", "value=hello", 1.0);
//! assert_eq!(resp.unwrap().status, 201);
//! let (resp, _) = host.http_request(
//!     0.0, "GET", "http://127.0.0.1:2379/v2/keys/greeting", "", 1.0);
//! let body = resp.unwrap().body;
//! assert!(body.contains("VALUE hello"));
//! ```

pub mod errors;
pub mod host;
pub mod network;
pub mod node;
pub mod store;

pub use errors::EtcdError;
pub use host::{ApiEvent, EtcdHost};
pub use network::{Network, PortState};
pub use node::{EtcdNode, NodeState};
pub use store::{EtcdStore, Node};
