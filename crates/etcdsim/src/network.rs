//! Simulated host network: TCP port table with TIME_WAIT-style leak
//! semantics.
//!
//! This is the substrate behind the paper's §V-A *reconnection failure*
//! mode: "the etcd server was unable to bind to a TCP/IP port. Thus,
//! restarting etcd does not suffice to recover from the fault, but the
//! port needs to be explicitly freed."

use std::collections::BTreeMap;

/// State of one TCP port.
#[derive(Clone, Debug, PartialEq)]
pub enum PortState {
    /// Bound by a listening process.
    Listening {
        /// Owner label (e.g. `"etcd"`).
        owner: String,
    },
    /// Held by an unreleased client connection; a new `bind` fails
    /// until the connection is explicitly freed.
    Held {
        /// Connection id that holds the port.
        conn_id: u64,
    },
}

/// The port table of the simulated host.
#[derive(Debug, Default)]
pub struct Network {
    ports: BTreeMap<u16, PortState>,
    connections: BTreeMap<u64, u16>,
    next_conn: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Binds a listening port.
    ///
    /// # Errors
    ///
    /// Returns `Err` with an `EADDRINUSE`-style message if the port is
    /// listening or held by a stale connection.
    pub fn bind(&mut self, port: u16, owner: &str) -> Result<(), String> {
        match self.ports.get(&port) {
            None => {
                self.ports.insert(
                    port,
                    PortState::Listening {
                        owner: owner.to_string(),
                    },
                );
                Ok(())
            }
            Some(PortState::Listening { owner: o }) => {
                Err(format!("bind: address already in use (port {port} owned by {o})"))
            }
            Some(PortState::Held { conn_id }) => Err(format!(
                "bind: address already in use (port {port} held by stale connection #{conn_id})"
            )),
        }
    }

    /// Releases a listening port. Ports held by stale connections stay
    /// held — that is the leak.
    pub fn unbind(&mut self, port: u16) {
        if matches!(self.ports.get(&port), Some(PortState::Listening { .. })) {
            self.ports.remove(&port);
        }
    }

    /// True if a listener owns the port.
    pub fn is_listening(&self, port: u16) -> bool {
        matches!(self.ports.get(&port), Some(PortState::Listening { .. }))
    }

    /// Opens a client connection to a listening port, returning a
    /// connection id. The connection *holds* the port: if the listener
    /// later goes away while the connection is still open, the port
    /// transitions to [`PortState::Held`].
    ///
    /// # Errors
    ///
    /// Connection refused when nothing is listening.
    pub fn connect(&mut self, port: u16) -> Result<u64, String> {
        if !self.is_listening(port) {
            return Err(format!("connect: connection refused (port {port})"));
        }
        self.next_conn += 1;
        self.connections.insert(self.next_conn, port);
        Ok(self.next_conn)
    }

    /// Closes a client connection, releasing any hold it has.
    pub fn disconnect(&mut self, conn_id: u64) {
        if let Some(port) = self.connections.remove(&conn_id) {
            if matches!(self.ports.get(&port), Some(PortState::Held { conn_id: c }) if *c == conn_id)
            {
                self.ports.remove(&port);
            }
        }
    }

    /// Called when a listener dies (crash or stop): open connections to
    /// its port leave the port in the [`PortState::Held`] state, so a
    /// restart cannot bind until the connections are closed.
    pub fn listener_died(&mut self, port: u16) {
        self.ports.remove(&port);
        if let Some((conn_id, _)) = self
            .connections
            .iter()
            .find(|(_, p)| **p == port)
            .map(|(c, p)| (*c, *p))
        {
            self.ports.insert(port, PortState::Held { conn_id });
        }
    }

    /// Force-releases every hold on a port (the paper's "the port needs
    /// to be explicitly freed" — our container cleanup / `etcd-cleanup`).
    pub fn force_free(&mut self, port: u16) {
        self.ports.remove(&port);
        self.connections.retain(|_, p| *p != port);
    }

    /// Open connection count (diagnostics).
    pub fn open_connections(&self) -> usize {
        self.connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_conflict() {
        let mut n = Network::new();
        n.bind(2379, "etcd").unwrap();
        assert!(n.bind(2379, "etcd").is_err());
        n.unbind(2379);
        n.bind(2379, "etcd").unwrap();
    }

    #[test]
    fn connect_requires_listener() {
        let mut n = Network::new();
        assert!(n.connect(2379).is_err());
        n.bind(2379, "etcd").unwrap();
        assert!(n.connect(2379).is_ok());
    }

    #[test]
    fn stale_connection_holds_port_after_listener_death() {
        let mut n = Network::new();
        n.bind(2379, "etcd").unwrap();
        let conn = n.connect(2379).unwrap();
        // Listener dies with the connection still open.
        n.listener_died(2379);
        // Restart cannot bind: the paper's reconnection failure.
        assert!(n.bind(2379, "etcd").is_err());
        // Closing the stale connection frees the port.
        n.disconnect(conn);
        assert!(n.bind(2379, "etcd").is_ok());
    }

    #[test]
    fn clean_shutdown_releases_port() {
        let mut n = Network::new();
        n.bind(2379, "etcd").unwrap();
        let conn = n.connect(2379).unwrap();
        n.disconnect(conn);
        n.listener_died(2379);
        assert!(n.bind(2379, "etcd").is_ok());
    }

    #[test]
    fn force_free_clears_holds() {
        let mut n = Network::new();
        n.bind(2379, "etcd").unwrap();
        n.connect(2379).unwrap();
        n.listener_died(2379);
        assert!(n.bind(2379, "etcd").is_err());
        n.force_free(2379);
        assert!(n.bind(2379, "etcd").is_ok());
        assert_eq!(n.open_connections(), 0);
    }
}
