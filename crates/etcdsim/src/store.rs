//! The hierarchical key-value store (etcd v2 data model: directories,
//! TTLs, compare-and-swap, modification indices).

use crate::errors::EtcdError;
use std::collections::BTreeMap;

/// One stored node: either a value leaf or a directory.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Full key path (`/a/b`).
    pub key: String,
    /// Value for leaves; `None` for directories.
    pub value: Option<String>,
    /// Directory flag.
    pub dir: bool,
    /// Absolute virtual expiry time, if a TTL was set.
    pub expires_at: Option<f64>,
    /// Index of the write that created the node.
    pub created_index: u64,
    /// Index of the last write touching the node.
    pub modified_index: u64,
}

/// The etcd v2 data model.
#[derive(Debug, Default)]
pub struct EtcdStore {
    nodes: BTreeMap<String, Node>,
    index: u64,
}

fn normalize(key: &str) -> Result<String, EtcdError> {
    if key.is_empty() {
        return Err(EtcdError::BadRequest("empty key".into()));
    }
    if !key.is_ascii() {
        // The paper's §V-B "EtcdException: Bad response: 400 Bad
        // Request" on corrupted non-ASCII inputs.
        return Err(EtcdError::BadRequest(format!(
            "key contains non-ASCII characters: {key:?}"
        )));
    }
    let mut k = key.to_string();
    if !k.starts_with('/') {
        k.insert(0, '/');
    }
    while k.len() > 1 && k.ends_with('/') {
        k.pop();
    }
    Ok(k)
}

fn parent_of(key: &str) -> Option<String> {
    if key == "/" {
        return None;
    }
    match key.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(i) => Some(key[..i].to_string()),
        None => None,
    }
}

impl EtcdStore {
    /// Creates an empty store.
    pub fn new() -> EtcdStore {
        EtcdStore::default()
    }

    /// Number of live nodes (ignores TTL expiry).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current write index.
    pub fn index(&self) -> u64 {
        self.index
    }

    fn expire(&mut self, now: f64) {
        self.nodes
            .retain(|_, n| n.expires_at.is_none_or(|t| t > now));
    }

    fn ensure_parents(&mut self, key: &str) -> Result<(), EtcdError> {
        let mut missing = Vec::new();
        let mut cur = parent_of(key);
        while let Some(p) = cur {
            if p == "/" {
                break;
            }
            match self.nodes.get(&p) {
                Some(n) if n.dir => break,
                Some(_) => return Err(EtcdError::NotADir(p)),
                None => missing.push(p.clone()),
            }
            cur = parent_of(&p);
        }
        for p in missing.into_iter().rev() {
            self.index += 1;
            self.nodes.insert(
                p.clone(),
                Node {
                    key: p,
                    value: None,
                    dir: true,
                    expires_at: None,
                    created_index: self.index,
                    modified_index: self.index,
                },
            );
        }
        Ok(())
    }

    /// Reads a node. Directories return their immediate children
    /// (recursively if `recursive`).
    ///
    /// # Errors
    ///
    /// [`EtcdError::KeyNotFound`] if the key does not exist (or has
    /// expired); [`EtcdError::BadRequest`] for malformed keys.
    pub fn get(&mut self, key: &str, now: f64, recursive: bool) -> Result<Vec<Node>, EtcdError> {
        self.expire(now);
        let key = normalize(key)?;
        let node = self
            .nodes
            .get(&key)
            .cloned()
            .ok_or_else(|| EtcdError::KeyNotFound(key.clone()))?;
        if !node.dir {
            return Ok(vec![node]);
        }
        let prefix = if key == "/" { "/".to_string() } else { format!("{key}/") };
        let mut out = vec![node];
        for (k, n) in &self.nodes {
            if !k.starts_with(&prefix) || k == &key {
                continue;
            }
            let rel = &k[prefix.len()..];
            if recursive || !rel.contains('/') {
                out.push(n.clone());
            }
        }
        Ok(out)
    }

    /// Writes a key (or creates a directory when `dir`).
    ///
    /// # Errors
    ///
    /// [`EtcdError::NotAFile`] when overwriting a directory with a
    /// value; [`EtcdError::BadRequest`] for malformed keys/values.
    pub fn set(
        &mut self,
        key: &str,
        value: Option<&str>,
        ttl: Option<f64>,
        dir: bool,
        now: f64,
    ) -> Result<Node, EtcdError> {
        self.expire(now);
        let key = normalize(key)?;
        if let Some(v) = value {
            if !v.is_ascii() {
                return Err(EtcdError::BadRequest(format!(
                    "value contains non-ASCII characters: {v:?}"
                )));
            }
        }
        if let Some(existing) = self.nodes.get(&key) {
            if existing.dir && !dir {
                return Err(EtcdError::NotAFile(key));
            }
        }
        self.ensure_parents(&key)?;
        self.index += 1;
        let created = self
            .nodes
            .get(&key)
            .map(|n| n.created_index)
            .unwrap_or(self.index);
        let node = Node {
            key: key.clone(),
            value: if dir { None } else { Some(value.unwrap_or("").to_string()) },
            dir,
            expires_at: ttl.map(|t| now + t),
            created_index: created,
            modified_index: self.index,
        };
        self.nodes.insert(key, node.clone());
        Ok(node)
    }

    /// Creates a directory, failing if it already exists.
    ///
    /// # Errors
    ///
    /// [`EtcdError::NodeExist`] if the key exists.
    pub fn mkdir(&mut self, key: &str, ttl: Option<f64>, now: f64) -> Result<Node, EtcdError> {
        self.expire(now);
        let key = normalize(key)?;
        if self.nodes.contains_key(&key) {
            return Err(EtcdError::NodeExist(key));
        }
        self.set(&key, None, ttl, true, now)
    }

    /// Deletes a key (or directory, with `recursive` for non-empty).
    ///
    /// # Errors
    ///
    /// [`EtcdError::KeyNotFound`]; [`EtcdError::DirNotEmpty`] for a
    /// non-empty directory without `recursive`.
    pub fn delete(&mut self, key: &str, recursive: bool, now: f64) -> Result<Node, EtcdError> {
        self.expire(now);
        let key = normalize(key)?;
        let node = self
            .nodes
            .get(&key)
            .cloned()
            .ok_or_else(|| EtcdError::KeyNotFound(key.clone()))?;
        if node.dir {
            let prefix = format!("{key}/");
            let has_children = self.nodes.keys().any(|k| k.starts_with(&prefix));
            if has_children && !recursive {
                return Err(EtcdError::DirNotEmpty(key));
            }
            self.nodes.retain(|k, _| !k.starts_with(&prefix));
        }
        self.nodes.remove(&key);
        self.index += 1;
        Ok(node)
    }

    /// Compare-and-swap: writes `value` only if the current value
    /// equals `prev_value`.
    ///
    /// # Errors
    ///
    /// [`EtcdError::TestFailed`] on mismatch; [`EtcdError::KeyNotFound`]
    /// for missing keys; [`EtcdError::NotAFile`] for directories.
    pub fn test_and_set(
        &mut self,
        key: &str,
        value: &str,
        prev_value: &str,
        now: f64,
    ) -> Result<Node, EtcdError> {
        self.expire(now);
        let norm = normalize(key)?;
        let current = self
            .nodes
            .get(&norm)
            .cloned()
            .ok_or_else(|| EtcdError::KeyNotFound(norm.clone()))?;
        if current.dir {
            return Err(EtcdError::NotAFile(norm));
        }
        let actual = current.value.clone().unwrap_or_default();
        if actual != prev_value {
            return Err(EtcdError::TestFailed {
                expected: prev_value.to_string(),
                actual,
            });
        }
        self.set(key, Some(value), None, false, now)
    }

    /// All live keys in order (testing/analysis helper).
    pub fn keys(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = EtcdStore::new();
        s.set("/a", Some("1"), None, false, 0.0).unwrap();
        let nodes = s.get("/a", 0.0, false).unwrap();
        assert_eq!(nodes[0].value.as_deref(), Some("1"));
    }

    #[test]
    fn missing_key_is_not_found() {
        let mut s = EtcdStore::new();
        assert!(matches!(
            s.get("/nope", 0.0, false),
            Err(EtcdError::KeyNotFound(_))
        ));
    }

    #[test]
    fn non_ascii_key_is_bad_request() {
        let mut s = EtcdStore::new();
        assert!(matches!(
            s.set("/ключ", Some("v"), None, false, 0.0),
            Err(EtcdError::BadRequest(_))
        ));
        assert!(matches!(
            s.set("/k", Some("значение"), None, false, 0.0),
            Err(EtcdError::BadRequest(_))
        ));
    }

    #[test]
    fn ttl_expires_by_virtual_time() {
        let mut s = EtcdStore::new();
        s.set("/tmp", Some("x"), Some(5.0), false, 0.0).unwrap();
        assert!(s.get("/tmp", 4.9, false).is_ok());
        assert!(matches!(
            s.get("/tmp", 5.1, false),
            Err(EtcdError::KeyNotFound(_))
        ));
    }

    #[test]
    fn directories_and_children() {
        let mut s = EtcdStore::new();
        s.set("/dir/a", Some("1"), None, false, 0.0).unwrap();
        s.set("/dir/b", Some("2"), None, false, 0.0).unwrap();
        s.set("/dir/sub/c", Some("3"), None, false, 0.0).unwrap();
        let direct = s.get("/dir", 0.0, false).unwrap();
        // dir itself + a + b + sub (not sub/c)
        assert_eq!(direct.len(), 4);
        let rec = s.get("/dir", 0.0, true).unwrap();
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn implicit_parent_directories() {
        let mut s = EtcdStore::new();
        s.set("/a/b/c", Some("v"), None, false, 0.0).unwrap();
        assert!(s.get("/a", 0.0, false).unwrap()[0].dir);
        assert!(s.get("/a/b", 0.0, false).unwrap()[0].dir);
    }

    #[test]
    fn mkdir_fails_on_existing() {
        let mut s = EtcdStore::new();
        s.mkdir("/d", None, 0.0).unwrap();
        assert!(matches!(s.mkdir("/d", None, 0.0), Err(EtcdError::NodeExist(_))));
    }

    #[test]
    fn cannot_overwrite_dir_with_value() {
        let mut s = EtcdStore::new();
        s.mkdir("/d", None, 0.0).unwrap();
        assert!(matches!(
            s.set("/d", Some("v"), None, false, 0.0),
            Err(EtcdError::NotAFile(_))
        ));
    }

    #[test]
    fn delete_dir_requires_recursive() {
        let mut s = EtcdStore::new();
        s.set("/d/k", Some("v"), None, false, 0.0).unwrap();
        assert!(matches!(
            s.delete("/d", false, 0.0),
            Err(EtcdError::DirNotEmpty(_))
        ));
        s.delete("/d", true, 0.0).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn test_and_set_swaps_only_on_match() {
        let mut s = EtcdStore::new();
        s.set("/k", Some("old"), None, false, 0.0).unwrap();
        assert!(matches!(
            s.test_and_set("/k", "new", "wrong", 0.0),
            Err(EtcdError::TestFailed { .. })
        ));
        s.test_and_set("/k", "new", "old", 0.0).unwrap();
        assert_eq!(
            s.get("/k", 0.0, false).unwrap()[0].value.as_deref(),
            Some("new")
        );
    }

    #[test]
    fn modified_index_increases() {
        let mut s = EtcdStore::new();
        let n1 = s.set("/k", Some("1"), None, false, 0.0).unwrap();
        let n2 = s.set("/k", Some("2"), None, false, 0.0).unwrap();
        assert!(n2.modified_index > n1.modified_index);
        assert_eq!(n1.created_index, n2.created_index);
    }
}
