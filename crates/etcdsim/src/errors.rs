//! etcd protocol error codes (subset of the real etcd v2 API).

use std::fmt;

/// An etcd API-level error, as returned in response bodies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EtcdError {
    /// `errorCode 100` — key not found.
    KeyNotFound(String),
    /// `errorCode 101` — compare-and-swap precondition failed.
    TestFailed {
        /// Expected previous value.
        expected: String,
        /// Actual stored value.
        actual: String,
    },
    /// `errorCode 102` — operated on a directory as if it were a key.
    NotAFile(String),
    /// `errorCode 104` — operated on a key as if it were a directory.
    NotADir(String),
    /// `errorCode 105` — node already exists.
    NodeExist(String),
    /// `errorCode 108` — directory not empty.
    DirNotEmpty(String),
    /// HTTP 400 — malformed request (e.g. non-ASCII key, bad form).
    BadRequest(String),
    /// HTTP 500 — server is in a wedged state.
    ServerError(String),
}

impl EtcdError {
    /// The etcd `errorCode` (0 for pure-HTTP errors).
    pub fn code(&self) -> u32 {
        match self {
            EtcdError::KeyNotFound(_) => 100,
            EtcdError::TestFailed { .. } => 101,
            EtcdError::NotAFile(_) => 102,
            EtcdError::NotADir(_) => 104,
            EtcdError::NodeExist(_) => 105,
            EtcdError::DirNotEmpty(_) => 108,
            EtcdError::BadRequest(_) => 209,
            EtcdError::ServerError(_) => 300,
        }
    }

    /// The HTTP status this error maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            EtcdError::KeyNotFound(_) => 404,
            EtcdError::TestFailed { .. }
            | EtcdError::NotAFile(_)
            | EtcdError::NotADir(_)
            | EtcdError::NodeExist(_)
            | EtcdError::DirNotEmpty(_) => 412,
            EtcdError::BadRequest(_) => 400,
            EtcdError::ServerError(_) => 500,
        }
    }

    /// Renders the line-oriented error body the simulated server returns.
    pub fn body(&self) -> String {
        format!("ERROR {} {}", self.code(), self)
    }
}

impl fmt::Display for EtcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtcdError::KeyNotFound(k) => write!(f, "Key not found: {k}"),
            EtcdError::TestFailed { expected, actual } => {
                write!(f, "Compare failed: [{expected} != {actual}]")
            }
            EtcdError::NotAFile(k) => write!(f, "Not a file: {k}"),
            EtcdError::NotADir(k) => write!(f, "Not a directory: {k}"),
            EtcdError::NodeExist(k) => write!(f, "Key already exists: {k}"),
            EtcdError::DirNotEmpty(k) => write!(f, "Directory not empty: {k}"),
            EtcdError::BadRequest(m) => write!(f, "Bad Request: {m}"),
            EtcdError::ServerError(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EtcdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_statuses() {
        assert_eq!(EtcdError::KeyNotFound("/x".into()).code(), 100);
        assert_eq!(EtcdError::KeyNotFound("/x".into()).http_status(), 404);
        assert_eq!(EtcdError::BadRequest("bad".into()).http_status(), 400);
        assert_eq!(
            EtcdError::ServerError("member has already been bootstrapped".into()).http_status(),
            500
        );
    }

    #[test]
    fn body_is_line_oriented() {
        let b = EtcdError::KeyNotFound("/q".into()).body();
        assert_eq!(b, "ERROR 100 Key not found: /q");
    }
}
