//! The etcd server process model: lifecycle, cluster-membership
//! bootstrap state, and wedging.

use crate::errors::EtcdError;
use crate::network::Network;
use crate::store::EtcdStore;

/// Default etcd client port.
pub const ETCD_PORT: u16 = 2379;

/// Lifecycle state of the simulated server process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Not running.
    Stopped,
    /// Running and serving requests.
    Running,
    /// Running but rejecting requests with a 500 (`member has already
    /// been bootstrapped`) — the paper's §V-A second failure mode.
    Wedged,
}

/// The simulated etcd server.
#[derive(Debug)]
pub struct EtcdNode {
    /// Lifecycle state.
    pub state: NodeState,
    /// The key-value store (persists across restarts, like a data dir).
    pub store: EtcdStore,
    /// Whether the member has been bootstrapped into the cluster.
    pub bootstrapped: bool,
    /// Listening port.
    pub port: u16,
}

impl Default for EtcdNode {
    fn default() -> Self {
        EtcdNode::new()
    }
}

impl EtcdNode {
    /// Creates a stopped node with an empty store.
    pub fn new() -> EtcdNode {
        EtcdNode {
            state: NodeState::Stopped,
            store: EtcdStore::new(),
            bootstrapped: false,
            port: ETCD_PORT,
        }
    }

    /// Starts the server, binding its port.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure when the port is occupied (the
    /// reconnection-failure substrate).
    pub fn start(&mut self, net: &mut Network) -> Result<(), String> {
        if self.state != NodeState::Stopped {
            return Ok(());
        }
        net.bind(self.port, "etcd")?;
        self.state = NodeState::Running;
        Ok(())
    }

    /// Gracefully stops the server, releasing its port. Open client
    /// connections keep holding the port (see
    /// [`Network::listener_died`]).
    pub fn stop(&mut self, net: &mut Network) {
        if self.state != NodeState::Stopped {
            net.listener_died(self.port);
            self.state = NodeState::Stopped;
        }
    }

    /// Bootstraps this member into the cluster.
    ///
    /// # Errors
    ///
    /// A second bootstrap without a member removal wedges the server
    /// and returns the paper's §V-A error.
    pub fn bootstrap(&mut self) -> Result<(), EtcdError> {
        if self.bootstrapped {
            self.state = NodeState::Wedged;
            return Err(EtcdError::ServerError(
                "member has already been bootstrapped".into(),
            ));
        }
        self.bootstrapped = true;
        Ok(())
    }

    /// Removes the member from the cluster (the "dynamic configuration
    /// API" recovery the paper recommends), unwedging the server.
    pub fn remove_member(&mut self) {
        self.bootstrapped = false;
        if self.state == NodeState::Wedged {
            self.state = NodeState::Running;
        }
    }

    /// Is the server able to serve requests?
    pub fn serving(&self) -> bool {
        self.state == NodeState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_stop_rebind() {
        let mut net = Network::new();
        let mut node = EtcdNode::new();
        node.start(&mut net).unwrap();
        assert!(node.serving());
        node.stop(&mut net);
        assert!(!node.serving());
        node.start(&mut net).unwrap();
        assert!(node.serving());
    }

    #[test]
    fn double_bootstrap_wedges() {
        let mut node = EtcdNode::new();
        node.bootstrap().unwrap();
        let err = node.bootstrap().unwrap_err();
        assert!(err.to_string().contains("member has already been bootstrapped"));
        assert_eq!(node.state, NodeState::Wedged);
        assert!(!node.serving());
        node.remove_member();
        assert_eq!(node.state, NodeState::Running);
    }

    #[test]
    fn restart_fails_when_port_held() {
        let mut net = Network::new();
        let mut node = EtcdNode::new();
        node.start(&mut net).unwrap();
        let _conn = net.connect(ETCD_PORT).unwrap();
        node.stop(&mut net);
        // Stale connection still holds the port.
        assert!(node.start(&mut net).is_err());
        net.force_free(ETCD_PORT);
        node.start(&mut net).unwrap();
    }

    #[test]
    fn store_survives_restart() {
        let mut net = Network::new();
        let mut node = EtcdNode::new();
        node.start(&mut net).unwrap();
        node.store.set("/k", Some("v"), None, false, 0.0).unwrap();
        node.stop(&mut net);
        node.start(&mut net).unwrap();
        assert_eq!(node.store.len(), 1);
    }
}
