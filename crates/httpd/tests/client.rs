//! Client behaviour against a misbehaving server: a response truncated
//! mid-body must surface as a clean, immediate error — never a hang,
//! and never a silent re-send of a non-idempotent request on a fresh
//! connection (the keep-alive retry is reserved for failures *before*
//! any response byte).

use httpd::Client;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads one request (head + Content-Length body) off a blocking
/// stream — just enough faithfulness for a fake server.
fn read_one_request(stream: &mut std::net::TcpStream) -> bool {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => return false,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let length = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(str::to_string))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).is_ok()
}

#[test]
fn truncated_response_body_is_a_clean_error_not_a_hang_or_replay() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let requests_seen = Arc::new(AtomicU64::new(0));
    let counter = requests_seen.clone();

    std::thread::spawn(move || {
        // First connection: answer the GET fully (keep-alive), then
        // truncate the POST's response body and slam the connection.
        if let Ok((mut stream, _)) = listener.accept() {
            if read_one_request(&mut stream) {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
                );
            }
            if read_one_request(&mut stream) {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nten bytes!",
                );
            }
            drop(stream); // close with 90 body bytes owed
        }
        // Any further connection would be the buggy replay path: swallow
        // the request and never respond, so a replay shows up as a hang.
        while let Ok((mut stream, _)) = listener.accept() {
            let _ = read_one_request(&mut stream);
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_secs(30));
        }
    });

    let mut client = Client::new(&addr).timeout(Duration::from_secs(10));
    assert_eq!(client.get("/warm").unwrap().status, 200);

    let t0 = Instant::now();
    let err = client
        .request("POST", "/pay", Some("application/json"), b"{\"amount\":1}")
        .expect_err("a truncated response body must be an error");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "truncation must fail fast, not hang until a timeout ({:?})",
        t0.elapsed()
    );
    assert_eq!(
        err.kind(),
        std::io::ErrorKind::InvalidData,
        "truncation is InvalidData (not retry-safe UnexpectedEof): {err}"
    );
    assert!(
        err.to_string().contains("mid-response"),
        "error should say what happened: {err}"
    );
    // The non-idempotent POST was sent exactly once: no replay on a
    // fresh connection.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        requests_seen.load(Ordering::SeqCst),
        2,
        "client replayed the POST after a truncated response"
    );
}
