//! Property tests pinning the HTTP/1.1 parser before (and after) the
//! event loop reuses it incrementally:
//!
//! * a request chopped across arbitrary read boundaries parses
//!   identically to the same bytes arriving in one piece, and
//!   identically through the blocking `read_request` path;
//! * arbitrary bytes never panic either path;
//! * a malformed head with its terminator present is rejected
//!   immediately — never `Incomplete`, so a connection feeding garbage
//!   can never hang waiting for "more".

use httpd::http::{
    read_request, try_parse, ParseStatus, ReadLimits, ReadOutcome, Request,
    DEFAULT_MAX_BODY_BYTES,
};
use proptest::prelude::*;
use std::io::{BufReader, Read};

/// A reader that hands out its bytes in fixed-size dribbles, modelling
/// a peer whose writes land at arbitrary boundaries.
struct Dribble {
    bytes: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Dribble {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self
            .chunk
            .min(buf.len())
            .min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn blocking_parse(bytes: &[u8], chunk: usize) -> ReadOutcome {
    // Tiny BufReader capacity so the dribble boundaries actually reach
    // the parser instead of being smoothed over by a large buffer.
    let mut reader = BufReader::with_capacity(
        16,
        Dribble {
            bytes: bytes.to_vec(),
            pos: 0,
            chunk: chunk.max(1),
        },
    );
    read_request(&mut reader, ReadLimits::default(), || false)
}

fn assert_same_request(incremental: &Request, blocking: &Request) {
    assert_eq!(incremental.method, blocking.method);
    assert_eq!(incremental.path, blocking.path);
    assert_eq!(incremental.query, blocking.query);
    assert_eq!(incremental.headers, blocking.headers);
    assert_eq!(incremental.body, blocking.body);
    assert_eq!(incremental.http1_0, blocking.http1_0);
}

/// Wire bytes for a syntactically valid request plus the pieces needed
/// to predict the parse.
fn arb_valid_request() -> impl Strategy<Value = Vec<u8>> {
    (
        (
            prop_oneof![
                Just("GET"),
                Just("POST"),
                Just("put"),
                Just("dElEtE"),
                Just("PATCH")
            ],
            "/[a-zA-Z0-9/_.-]{0,24}",
            proptest::option::of("[a-z0-9=&+%]{1,16}"),
        ),
        (
            proptest::collection::vec(("[a-zA-Z-]{1,12}", "[ -~]{0,24}"), 0..5),
            proptest::collection::vec(any::<u8>(), 0..96),
            any::<bool>(),
            prop_oneof![Just("HTTP/1.1"), Just("HTTP/1.0")],
        ),
    )
        .prop_map(|((method, path, query), (headers, body, crlf, version))| {
            let eol = if crlf { "\r\n" } else { "\n" };
            let target = match &query {
                Some(q) => format!("{path}?{q}"),
                None => path,
            };
            let mut raw = format!("{method} {target} {version}{eol}").into_bytes();
            for (name, value) in &headers {
                raw.extend_from_slice(format!("{name}: {value}{eol}").as_bytes());
            }
            raw.extend_from_slice(
                format!("Content-Length: {}{eol}{eol}", body.len()).as_bytes(),
            );
            raw.extend_from_slice(&body);
            raw
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_byte_split_parses_like_one_shot(raw in arb_valid_request()) {
        // Incremental: every proper prefix must ask for more; the full
        // buffer must yield exactly one request consuming every byte.
        for i in 0..raw.len() {
            prop_assert!(
                matches!(try_parse(&raw[..i], DEFAULT_MAX_BODY_BYTES), ParseStatus::Incomplete),
                "prefix of {} bytes was not Incomplete", i
            );
        }
        let ParseStatus::Complete { request, used } =
            try_parse(&raw, DEFAULT_MAX_BODY_BYTES)
        else {
            return Err(TestCaseError::fail("full buffer did not parse"));
        };
        prop_assert_eq!(used, raw.len());
        // Blocking one-shot agrees.
        let ReadOutcome::Request(blocking) = blocking_parse(&raw, raw.len().max(1)) else {
            return Err(TestCaseError::fail("blocking one-shot did not parse"));
        };
        assert_same_request(&request, &blocking);
    }

    #[test]
    fn dribbled_blocking_reads_parse_identically(
        raw in arb_valid_request(),
        chunk in 1usize..13,
    ) {
        let ReadOutcome::Request(whole) = blocking_parse(&raw, raw.len().max(1)) else {
            return Err(TestCaseError::fail("one-shot did not parse"));
        };
        let ReadOutcome::Request(dribbled) = blocking_parse(&raw, chunk) else {
            return Err(TestCaseError::fail("dribbled read did not parse"));
        };
        assert_same_request(&dribbled, &whole);
    }

    #[test]
    fn pipelined_requests_split_cleanly(
        first in arb_valid_request(),
        second in arb_valid_request(),
    ) {
        let mut wire = first.clone();
        wire.extend_from_slice(&second);
        let ParseStatus::Complete { request: a, used } =
            try_parse(&wire, DEFAULT_MAX_BODY_BYTES)
        else {
            return Err(TestCaseError::fail("first request did not parse"));
        };
        prop_assert_eq!(used, first.len(), "first request consumed the wrong bytes");
        let ParseStatus::Complete { request: b, used: used2 } =
            try_parse(&wire[used..], DEFAULT_MAX_BODY_BYTES)
        else {
            return Err(TestCaseError::fail("second request did not parse"));
        };
        prop_assert_eq!(used + used2, wire.len());
        let ParseStatus::Complete { request: a_alone, .. } =
            try_parse(&first, DEFAULT_MAX_BODY_BYTES)
        else {
            return Err(TestCaseError::fail("first alone did not parse"));
        };
        let ParseStatus::Complete { request: b_alone, .. } =
            try_parse(&second, DEFAULT_MAX_BODY_BYTES)
        else {
            return Err(TestCaseError::fail("second alone did not parse"));
        };
        assert_same_request(&a, &a_alone);
        assert_same_request(&b, &b_alone);
    }

    #[test]
    fn arbitrary_bytes_never_panic_either_path(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..9,
    ) {
        // No verdict is asserted — only that both paths terminate
        // without panicking on every prefix and every dribble size.
        for i in 0..=bytes.len() {
            let _ = try_parse(&bytes[..i], DEFAULT_MAX_BODY_BYTES);
        }
        let _ = blocking_parse(&bytes, chunk);
        let _ = blocking_parse(&bytes, bytes.len().max(1));
    }

    #[test]
    fn malformed_heads_reject_immediately_never_hang(
        garbage in "[a-z0-9 ]{0,48}",
        crlf in any::<bool>(),
    ) {
        // A lowercase "request line" can never carry a valid
        // `HTTP/1.x` version token, so once the head terminator is on
        // the wire the parser must reject — an `Incomplete` here would
        // strand the connection waiting forever.
        let eol = if crlf { "\r\n" } else { "\n" };
        let wire = format!("{garbage}{eol}{eol}");
        prop_assert!(
            matches!(
                try_parse(wire.as_bytes(), DEFAULT_MAX_BODY_BYTES),
                ParseStatus::Malformed(_)
            ),
            "garbage head {:?} was not rejected", wire
        );
        prop_assert!(
            matches!(
                blocking_parse(wire.as_bytes(), 3),
                ReadOutcome::Malformed(_)
            ),
            "blocking path accepted garbage head {:?}", wire
        );
    }
}
