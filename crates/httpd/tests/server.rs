//! Server behaviour under real sockets: routing, keep-alive reuse,
//! worker-pool saturation (503, never a hang), and graceful shutdown
//! draining in-flight requests.

use httpd::{Client, Response, Router, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn echo_router() -> Router {
    Router::new()
        .route("GET", "/ping", |_| Response::text(200, "pong"))
        .route("GET", "/items/:id", |req| {
            Response::json(200, format!("{{\"id\": \"{}\"}}", req.param("id").unwrap()))
        })
        .route("POST", "/echo", |req| {
            Response::new(200).with_body(req.body.clone())
        })
}

#[test]
fn routes_keepalive_and_errors_over_a_real_socket() {
    let server = Server::bind("127.0.0.1:0", echo_router(), ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);

    // Many requests over ONE keep-alive connection.
    for i in 0..50 {
        let resp = client.get(&format!("/items/item-{i}")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), format!("{{\"id\": \"item-{i}\"}}"));
    }
    let resp = client
        .request("POST", "/echo", Some("text/plain"), b"body bytes")
        .unwrap();
    assert_eq!(resp.body, b"body bytes");
    assert_eq!(client.get("/missing").unwrap().status, 404);
    assert_eq!(
        client
            .request("DELETE", "/ping", None, &[])
            .unwrap()
            .status,
        405
    );
    // Only one TCP connection was used for all of the above.
    assert_eq!(server.connections_rejected(), 0);
    server.shutdown();
}

#[test]
fn saturated_pool_answers_503_and_never_hangs() {
    // One worker, zero queue slots: while the worker is pinned on a
    // blocked handler, every further connection must get a 503 —
    // quickly, not after a timeout.
    let gate = Arc::new(Barrier::new(2));
    let enter = gate.clone();
    let router = Router::new().route("GET", "/block", move |_| {
        enter.wait(); // released by the main thread below
        Response::text(200, "released")
    });
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", router, config).unwrap();
    let addr = server.addr().to_string();

    // Pin the single worker.
    let blocked_addr = addr.clone();
    let blocked = std::thread::spawn(move || {
        Client::new(&blocked_addr)
            .timeout(Duration::from_secs(10))
            .get("/block")
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150)); // worker now inside the handler

    // At most one further connection fits the queue (and waits there);
    // every one after that must be answered 503 promptly — never left
    // hanging.
    let mut statuses = Vec::new();
    for _ in 0..6 {
        let started = std::time::Instant::now();
        let resp = Client::new(&addr)
            .timeout(Duration::from_millis(500))
            .get("/ping");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "saturation must answer promptly, not hang"
        );
        match resp {
            Ok(r) => statuses.push(r.status),
            // The single queued connection times out client-side while
            // the worker is pinned; that one slot is tolerated.
            Err(_) => statuses.push(0),
        }
    }
    assert!(
        statuses.iter().filter(|s| **s == 503).count() >= 4,
        "expected mostly 503s, got {statuses:?}"
    );
    assert!(server.connections_rejected() >= 4);

    gate.wait(); // release the worker
    assert_eq!(blocked.join().unwrap().text(), "released");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let started = Arc::new(Barrier::new(2));
    let handler_started = started.clone();
    let router = Router::new().route("GET", "/slow", move |_| {
        handler_started.wait();
        std::thread::sleep(Duration::from_millis(300));
        Response::text(200, "drained")
    });
    let server = Server::bind(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let in_flight = std::thread::spawn(move || {
        Client::new(&addr)
            .timeout(Duration::from_secs(10))
            .get("/slow")
            .unwrap()
    });
    started.wait(); // the handler is now running
    let t0 = std::time::Instant::now();
    server.shutdown(); // must wait for the in-flight response
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "shutdown returned before the in-flight request finished"
    );
    let resp = in_flight.join().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), "drained");
    // The connection was marked close during shutdown.
    assert_eq!(resp.header("connection"), Some("close"));
}

#[test]
fn malformed_and_oversized_requests_are_rejected() {
    use std::io::{Read, Write};
    let server = Server::bind(
        "127.0.0.1:0",
        echo_router(),
        ServerConfig {
            max_body_bytes: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Garbage bytes → 400.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");

    // Declared body over the cap → 413 without reading it.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");

    server.shutdown();
}

#[test]
fn stalled_reader_cannot_pin_a_connection_slot_forever() {
    use std::io::Write;
    // A peer that requests a response far bigger than the socket
    // buffers and then never reads it must be disconnected once the
    // write deadline lapses — otherwise it pins a connection slot
    // indefinitely and wedges graceful shutdown (which waits for every
    // connection to drain).
    let router = Router::new().route("GET", "/big", |_| {
        Response::new(200).with_body(vec![b'x'; 16 * 1024 * 1024])
    });
    let config = ServerConfig {
        request_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", router, config).unwrap();

    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    stalled.write_all(b"GET /big HTTP/1.1\r\n\r\n").unwrap();
    // Deliberately never read.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.connections_open() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled reader still holds its connection slot"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And shutdown is not wedged by the (now gone) connection.
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(t0.elapsed() < Duration::from_secs(5), "shutdown hung");
    drop(stalled);
}

#[test]
fn concurrent_clients_multiplex_across_the_pool() {
    let counter = Arc::new(AtomicU64::new(0));
    let c = counter.clone();
    let router = Router::new().route("GET", "/count", move |_| {
        Response::text(200, c.fetch_add(1, Ordering::SeqCst).to_string())
    });
    let server = Server::bind("127.0.0.1:0", router, ServerConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&addr);
                for _ in 0..25 {
                    assert_eq!(client.get("/count").unwrap().status, 200);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 200);
    assert_eq!(server.requests_served(), 200);
    server.shutdown();
}
