//! Connection-pool behaviour: keep-alive reuse, max-idle and TTL
//! eviction, and transparent replacement of a stale pooled connection.
//!
//! The server side is a deliberately dumb fake (accept counter + canned
//! keep-alive responses) so every assertion is about exact socket
//! counts, not event-loop behaviour — that is covered by the real
//! server's own tests.

use httpd::pool::{ClientPool, PoolConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A fake HTTP server: counts accepted connections and serves canned
/// 200 responses on each, keeping the connection open for
/// `responses_per_conn` requests (0 = unlimited) before closing it.
fn fake_server(responses_per_conn: usize) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let accepts = Arc::new(AtomicUsize::new(0));
    let counter = accepts.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || serve_conn(stream, responses_per_conn));
        }
    });
    (addr, accepts)
}

fn serve_conn(stream: TcpStream, responses_per_conn: usize) {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut served = 0usize;
    loop {
        // Read one request head.
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return; // client went away
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok();
        let mut out = stream.try_clone().unwrap();
        out.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
            .unwrap();
        out.flush().unwrap();
        served += 1;
        if responses_per_conn != 0 && served >= responses_per_conn {
            return; // close the connection (keep-alive cut short)
        }
    }
}

#[test]
fn sequential_requests_reuse_one_connection() {
    let (addr, accepts) = fake_server(0);
    let pool = ClientPool::new();
    for _ in 0..5 {
        let resp = pool.get(&addr, "/x").unwrap();
        assert_eq!(resp.status, 200);
    }
    assert_eq!(accepts.load(Ordering::SeqCst), 1, "one socket for all five");
    assert_eq!(pool.idle_count(&addr), 1);
}

#[test]
fn concurrent_checkouts_cap_at_max_idle() {
    let (addr, accepts) = fake_server(0);
    let pool = Arc::new(ClientPool::with_config(PoolConfig {
        max_idle_per_host: 2,
        ..PoolConfig::default()
    }));
    // Four threads in flight at once: the pool has nothing parked, so
    // four sockets open; on completion only two may be parked back.
    let barrier = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let pool = pool.clone();
            let addr = addr.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                // Two rounds so every thread is provably concurrent with
                // the others at least once.
                for _ in 0..2 {
                    assert_eq!(pool.get(&addr, "/x").unwrap().status, 200);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        accepts.load(Ordering::SeqCst) >= 2,
        "concurrency forced extra sockets"
    );
    assert!(
        pool.idle_count(&addr) <= 2,
        "max-idle eviction keeps at most 2 parked, found {}",
        pool.idle_count(&addr)
    );
    // The survivors still work.
    assert_eq!(pool.get(&addr, "/x").unwrap().status, 200);
}

#[test]
fn ttl_evicts_parked_connections() {
    let (addr, accepts) = fake_server(0);
    let pool = ClientPool::with_config(PoolConfig {
        idle_ttl: Duration::from_millis(50),
        ..PoolConfig::default()
    });
    assert_eq!(pool.get(&addr, "/x").unwrap().status, 200);
    assert_eq!(pool.idle_count(&addr), 1);
    std::thread::sleep(Duration::from_millis(120));
    // The parked socket aged out: it is not offered for reuse…
    assert_eq!(pool.idle_count(&addr), 0);
    // …and the next request opens a fresh connection.
    assert_eq!(pool.get(&addr, "/x").unwrap().status, 200);
    assert_eq!(accepts.load(Ordering::SeqCst), 2);
}

#[test]
fn stale_pooled_connection_is_replaced_transparently() {
    // The server closes every connection after one response, so the
    // parked socket is guaranteed dead by the second request.
    let (addr, accepts) = fake_server(1);
    let pool = ClientPool::new();
    assert_eq!(pool.get(&addr, "/x").unwrap().status, 200);
    assert_eq!(pool.idle_count(&addr), 1);
    // Give the server's close time to land so the reuse is provably
    // stale rather than racing the FIN.
    std::thread::sleep(Duration::from_millis(50));
    let resp = pool.get(&addr, "/y").unwrap();
    assert_eq!(resp.status, 200, "stale socket replaced, request succeeded");
    assert_eq!(accepts.load(Ordering::SeqCst), 2, "exactly one replacement");
}
