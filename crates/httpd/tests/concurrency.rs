//! The scaling bar for the event-loop front end: keep-alive clients
//! far past the worker pool, all making progress, plus a mid-flight
//! graceful shutdown that drains every in-flight request exactly once.
//!
//! Under the old worker-per-connection model the first test cannot
//! pass at all: 256 persistent connections against 8 workers meant 8
//! served clients and 248 stranded ones, because every idle keep-alive
//! poller pinned a worker for its connection's lifetime.

use httpd::{Client, Response, Router, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENTS: usize = 256;
const WORKERS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 10;

#[test]
fn hundreds_of_keepalive_clients_share_eight_workers() {
    let served = Arc::new(AtomicU64::new(0));
    let count = served.clone();
    let router = Router::new().route("GET", "/hit", move |_| {
        Response::text(200, count.fetch_add(1, Ordering::SeqCst).to_string())
    });
    let config = ServerConfig {
        workers: WORKERS,
        // The queue bounds *dispatch*, not connections: size it for the
        // thundering herd below so backpressure (covered in server.rs
        // tests) does not kick in here.
        queue_depth: CLIENTS * 2,
        max_connections: CLIENTS * 4,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", router, config).unwrap();
    let addr = server.addr().to_string();

    let connected = Arc::new(Barrier::new(CLIENTS + 1));
    let release = Arc::new(Barrier::new(CLIENTS + 1));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let connected = connected.clone();
            let release = release.clone();
            std::thread::spawn(move || {
                let mut client = Client::new(&addr).timeout(Duration::from_secs(60));
                // First request proves this connection is being served…
                assert_eq!(client.get("/hit").unwrap().status, 200);
                // …and now every other client's connection is ALSO open
                // and idle (keep-alive) before anyone proceeds.
                connected.wait();
                release.wait();
                for _ in 1..REQUESTS_PER_CLIENT {
                    assert_eq!(client.get("/hit").unwrap().status, 200);
                }
            })
        })
        .collect();

    connected.wait();
    // All clients were served at least once WHILE all of them hold an
    // open keep-alive connection — 32× more connections than workers.
    assert!(
        server.connections_open() >= CLIENTS as u64,
        "expected ≥{CLIENTS} concurrent connections, gauge says {}",
        server.connections_open()
    );
    release.wait();

    for handle in handles {
        handle.join().unwrap();
    }
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(served.load(Ordering::SeqCst), total, "a request was lost");
    assert_eq!(server.requests_served(), total);
    assert_eq!(
        server.connections_rejected(),
        0,
        "no client may be starved into a 503"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_in_flight_request_exactly_once() {
    const IN_FLIGHT: usize = 12; // 4 executing + 8 queued at shutdown
    let released = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicU64::new(0));
    let gate = released.clone();
    let count = entered.clone();
    let router = Router::new()
        .route("GET", "/ping", |_| Response::text(200, "pong"))
        .route("GET", "/gate", move |_| {
            count.fetch_add(1, Ordering::SeqCst);
            while !gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Response::text(200, "drained")
        });
    let config = ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", router, config).unwrap();
    let addr = server.addr().to_string();

    // An idle keep-alive connection: shutdown must close it promptly
    // instead of waiting on it.
    let mut idle = Client::new(&addr).timeout(Duration::from_secs(5));
    assert_eq!(idle.get("/ping").unwrap().status, 200);

    let clients: Vec<_> = (0..IN_FLIGHT)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                Client::new(&addr)
                    .timeout(Duration::from_secs(60))
                    .get("/gate")
                    .unwrap()
            })
        })
        .collect();

    // Wait until every request is in flight (dispatched into the pool
    // or its queue) before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.requests_served() < (IN_FLIGHT + 1) as u64 {
        assert!(Instant::now() < deadline, "requests never dispatched");
        std::thread::sleep(Duration::from_millis(2));
    }

    let shutdown = std::thread::spawn(move || {
        let t0 = Instant::now();
        server.shutdown();
        t0.elapsed()
    });
    // Shutdown must be *waiting* on the gated handlers, not done.
    std::thread::sleep(Duration::from_millis(200));
    released.store(true, Ordering::SeqCst);

    // Every in-flight request is answered exactly once, each marked
    // close because the server is draining.
    for client in clients {
        let resp = client.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "drained");
        assert_eq!(resp.header("connection"), Some("close"));
    }
    let drain_time = shutdown.join().unwrap();
    assert!(
        drain_time >= Duration::from_millis(150),
        "shutdown returned before in-flight requests finished ({drain_time:?})"
    );
    assert_eq!(
        entered.load(Ordering::SeqCst),
        IN_FLIGHT as u64,
        "each in-flight request must run exactly once — no loss, no replay"
    );
    // The drained server is gone: the idle client's next request fails
    // rather than hanging.
    assert!(idle.get("/ping").is_err(), "server still serving after shutdown");
}
