//! HTTP/1.1 request/response types and wire parsing.
//!
//! Parsing is strict and bounded: the head (request line + headers) is
//! capped, bodies require `Content-Length` (no chunked encoding), and a
//! body larger than the configured cap is rejected before it is read —
//! an untrusted peer cannot balloon server memory.
//!
//! Two entry points share one grammar:
//!
//! * [`try_parse`] — pure and incremental: given the bytes received so
//!   far, either yields a complete request (and how many bytes it
//!   consumed), asks for more, or rejects. The event-loop server calls
//!   it each time a connection's buffer grows, so a request split
//!   across arbitrarily many reads parses exactly like a one-shot one.
//! * [`read_request`] — the blocking wrapper over a `BufRead` stream,
//!   used by unit tests and anything that owns a blocking socket. Both
//!   paths go through the same head scanner and header parser;
//!   `tests/parser_proptests.rs` pins their equivalence.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Maximum size of the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default maximum request body size (the server's configurable cap).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/api/campaigns`).
    pub path: String,
    /// Raw query string without the `?` (empty if none).
    pub query: String,
    /// Headers in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Router `:param` captures (filled by the router).
    pub params: Vec<(String, String)>,
    /// Whether the request line declared `HTTP/1.0` (connections then
    /// default to close instead of keep-alive).
    pub http1_0: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A router capture by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// The body is not valid UTF-8.
    pub fn body_text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }

    /// Whether the client asked to close the connection after this
    /// request: an explicit `Connection: close`, or an HTTP/1.0
    /// request without `Connection: keep-alive` (1.0 defaults to
    /// close; leaving such a connection open strands clients that
    /// delimit the body by EOF).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http1_0,
        }
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added at
    /// write time).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with a status code.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Adds a header (builder-style).
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body (builder-style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serializes onto a stream. `close` adds `Connection: close`
    /// (keep-alive is the HTTP/1.1 default otherwise).
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure.
    pub fn write_to(&self, stream: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_text(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrases for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// What reading one request off a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean end of stream before any request bytes (keep-alive close,
    /// or the idle-poll noticed a server shutdown).
    Closed,
    /// The peer sent bytes that are not HTTP — answer 400 and close.
    Malformed(String),
    /// Declared body above the configured cap — answer 413 and close.
    BodyTooLarge,
    /// The request did not complete within the per-request deadline —
    /// answer 408 and close (slowloris guard).
    TimedOut,
}

/// Limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct ReadLimits {
    /// Body-size cap.
    pub max_body_bytes: usize,
    /// Wall-clock budget for one complete request once its first byte
    /// arrived.
    pub request_timeout: Duration,
}

impl Default for ReadLimits {
    fn default() -> ReadLimits {
        ReadLimits {
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Progress of parsing one request out of a contiguous byte buffer
/// (what the peer has sent so far). See [`try_parse`].
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer does not yet hold a complete request — read more.
    Incomplete,
    /// A complete request occupying the first `used` bytes of the
    /// buffer; anything after `used` is pipelined follow-up data.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer the request consumed.
        used: usize,
    },
    /// The bytes are not HTTP — answer 400 and close.
    Malformed(String),
    /// Declared body above the configured cap — answer 413 and close.
    BodyTooLarge,
}

/// Where the head ends within a receive buffer.
enum HeadScan {
    /// Head (incl. the blank-line terminator) occupies `buf[..end]`.
    Found(usize),
    /// No terminator yet and the head budget still has room.
    Partial,
    /// No terminator within the head budget.
    TooLarge,
}

/// Finds the end of the request head: the first newline at which the
/// bytes so far end with `\r\n\r\n` or `\n\n` — exactly the blocking
/// reader's per-line termination check, so both paths accept the same
/// (possibly mixed) line-ending dialects.
fn find_head_end(buf: &[u8]) -> HeadScan {
    // The blocking reader admits a head of at most MAX_HEAD_BYTES + 1
    // bytes (its final capped read may land the terminator exactly on
    // the boundary); mirror that bound bit-for-bit.
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES + 1)];
    for (i, byte) in window.iter().enumerate() {
        if *byte != b'\n' {
            continue;
        }
        let prefix = &window[..=i];
        if prefix.ends_with(b"\r\n\r\n") || prefix.ends_with(b"\n\n") {
            return HeadScan::Found(i + 1);
        }
    }
    if buf.len() > MAX_HEAD_BYTES {
        HeadScan::TooLarge
    } else {
        HeadScan::Partial
    }
}

/// Parses a complete head (request line + headers + terminator) into a
/// body-less [`Request`]. Shared verbatim by the blocking and
/// incremental paths so they cannot drift.
fn parse_head(head: &[u8]) -> Result<Request, String> {
    let head = match std::str::from_utf8(head) {
        Ok(h) => h,
        Err(_) => return Err("non-UTF-8 request head".into()),
    };
    // Lines split on bare LF too (the head terminator accepts "\n\n"),
    // with any CR stripped per-line.
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("bad request line '{request_line}'"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version '{version}'"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers: Vec::new(),
        body: Vec::new(),
        params: Vec::new(),
        http1_0: version == "HTTP/1.0",
    };
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("bad header line '{line}'"));
        };
        request
            .headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Transfer codings are not implemented; absorbing a chunked body
    // as "no body" would desync the keep-alive stream (the chunk data
    // would parse as the next request), so reject it outright.
    if request.header("transfer-encoding").is_some() {
        return Err("transfer encodings are not supported; use Content-Length".into());
    }
    Ok(request)
}

/// The body length a parsed head declares.
fn declared_content_length(request: &Request) -> Result<usize, String> {
    match request.header("content-length") {
        Some(v) => v.parse::<usize>().map_err(|_| "bad Content-Length".to_string()),
        None => Ok(0),
    }
}

/// Attempts to parse one request from the bytes received so far.
///
/// Pure and restartable: callers append incoming bytes to a buffer and
/// re-invoke after every read. The verdict depends only on the buffer
/// contents, so a request chopped across arbitrarily many reads parses
/// identically to the same bytes arriving in one piece (pinned by
/// `tests/parser_proptests.rs`). On [`ParseStatus::Complete`] the
/// caller drains `used` bytes; leftovers are the next pipelined
/// request.
pub fn try_parse(buf: &[u8], max_body_bytes: usize) -> ParseStatus {
    let head_end = match find_head_end(buf) {
        HeadScan::Partial => return ParseStatus::Incomplete,
        HeadScan::TooLarge => {
            return ParseStatus::Malformed("request head too large".into());
        }
        HeadScan::Found(end) => end,
    };
    let mut request = match parse_head(&buf[..head_end]) {
        Ok(request) => request,
        Err(reason) => return ParseStatus::Malformed(reason),
    };
    let content_length = match declared_content_length(&request) {
        Ok(n) => n,
        Err(reason) => return ParseStatus::Malformed(reason),
    };
    if content_length > max_body_bytes {
        return ParseStatus::BodyTooLarge;
    }
    let Some(total) = head_end.checked_add(content_length) else {
        return ParseStatus::Malformed("bad Content-Length".into());
    };
    if buf.len() < total {
        return ParseStatus::Incomplete;
    }
    request.body = buf[head_end..total].to_vec();
    ParseStatus::Complete {
        request,
        used: total,
    }
}

/// Reads one request. The underlying stream should have a short read
/// timeout; `should_stop` is polled on every timeout so an idle
/// keep-alive connection notices server shutdown promptly, while a
/// request that already started keeps its full `request_timeout`.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: ReadLimits,
    mut should_stop: impl FnMut() -> bool,
) -> ReadOutcome {
    let mut head: Vec<u8> = Vec::new();
    let mut started_at: Option<Instant> = None;
    // --- head: read until the blank line, resumable across timeouts ---
    loop {
        if head.len() > MAX_HEAD_BYTES {
            return ReadOutcome::Malformed("request head too large".into());
        }
        // Cap each read at the remaining head budget: `read_until`
        // itself is unbounded until a newline, and a fast peer
        // streaming newline-free bytes must not balloon memory.
        let budget = (MAX_HEAD_BYTES + 1 - head.len()) as u64;
        // (Fully-qualified call: method syntax would auto-deref and try
        // to move the reader into `Take` instead of reborrowing it.)
        match io::Read::take(&mut *reader, budget).read_until(b'\n', &mut head) {
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("truncated request head".into())
                };
            }
            Ok(_) => {
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
                started_at.get_or_insert_with(Instant::now);
            }
            Err(e) if is_timeout(&e) => {
                // `read_until` appends whatever it consumed before the
                // timeout, so the request has *started* as soon as head
                // is non-empty — even without a complete line yet
                // (slowloris sends byte-at-a-time with no newline).
                if !head.is_empty() {
                    let t0 = *started_at.get_or_insert_with(Instant::now);
                    if t0.elapsed() > limits.request_timeout {
                        return ReadOutcome::TimedOut;
                    }
                } else if should_stop() {
                    // Idle between requests: only shutdown ends it.
                    return ReadOutcome::Closed;
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    let t0 = started_at.unwrap_or_else(Instant::now);
    let mut request = match parse_head(&head) {
        Ok(request) => request,
        Err(reason) => return ReadOutcome::Malformed(reason),
    };
    // --- body: Content-Length bytes, resumable across timeouts ---
    let content_length = match declared_content_length(&request) {
        Ok(n) => n,
        Err(reason) => return ReadOutcome::Malformed(reason),
    };
    if content_length > limits.max_body_bytes {
        return ReadOutcome::BodyTooLarge;
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return ReadOutcome::Malformed("truncated body".into()),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if t0.elapsed() > limits.request_timeout {
                    return ReadOutcome::TimedOut;
                }
            }
            Err(_) => return ReadOutcome::Malformed("body read failed".into()),
        }
    }
    request.body = body;
    ReadOutcome::Request(request)
}

/// Whether an I/O error is a read-timeout (platform-dependent kind).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        let mut reader = BufReader::new(bytes);
        read_request(&mut reader, ReadLimits::default(), || false)
    }

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /api/x?q=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        let ReadOutcome::Request(req) = parse(raw) else {
            panic!("expected request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/x");
        assert_eq!(req.query, "q=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn bare_lf_requests_keep_their_headers() {
        // A picky-but-legal peer may delimit with bare LF; headers
        // must not silently vanish.
        let raw = b"POST /x HTTP/1.1\nContent-Length: 5\nX-Token: t\n\nhello";
        let ReadOutcome::Request(req) = parse(raw) else {
            panic!("expected request");
        };
        assert_eq!(req.header("content-length"), Some("5"));
        assert_eq!(req.header("x-token"), Some("t"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn http10_defaults_to_close() {
        let ReadOutcome::Request(req) = parse(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!("expected request");
        };
        assert!(req.http1_0);
        assert!(req.wants_close(), "1.0 without keep-alive must close");
        let ReadOutcome::Request(req) =
            parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        else {
            panic!("expected request");
        };
        assert!(!req.wants_close(), "explicit keep-alive is honored");
        let ReadOutcome::Request(req) = parse(b"GET / HTTP/1.1\r\n\r\n") else {
            panic!("expected request");
        };
        assert!(!req.wants_close(), "1.1 defaults to keep-alive");
    }

    #[test]
    fn slowloris_partial_head_times_out() {
        use std::io::Read;
        // A peer that dribbles a few bytes (no newline) and then goes
        // silent must hit the request timeout, not pin the worker.
        struct Stall {
            first: Option<&'static [u8]>,
        }
        impl Read for Stall {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.first.take() {
                    Some(bytes) => {
                        buf[..bytes.len()].copy_from_slice(bytes);
                        Ok(bytes.len())
                    }
                    None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                }
            }
        }
        let limits = ReadLimits {
            request_timeout: std::time::Duration::from_millis(40),
            ..ReadLimits::default()
        };
        let mut reader = BufReader::new(Stall { first: Some(b"GET /slo") });
        let t0 = std::time::Instant::now();
        let outcome = read_request(&mut reader, limits, || false);
        assert!(matches!(outcome, ReadOutcome::TimedOut), "{outcome:?}");
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(parse(b"not http at all\r\n\r\n"), ReadOutcome::Malformed(_)));
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(huge.as_bytes()), ReadOutcome::BodyTooLarge));
        assert!(matches!(parse(b""), ReadOutcome::Closed));
    }

    #[test]
    fn newline_free_head_is_capped_not_buffered() {
        // A fast peer streaming bytes with no '\n' must hit the head
        // cap, not grow memory until its timeout.
        let flood = vec![b'A'; MAX_HEAD_BYTES * 4];
        let ReadOutcome::Malformed(reason) = parse(&flood) else {
            panic!("expected rejection");
        };
        assert!(reason.contains("too large"), "{reason}");
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        // Absorbing a chunked body as empty would desync keep-alive:
        // the chunk bytes would parse as the next pipelined request.
        let raw =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
        assert!(matches!(parse(raw), ReadOutcome::Malformed(_)));
    }

    #[test]
    fn incremental_parse_matches_one_shot_at_every_split() {
        let raw: &[u8] = b"POST /api/x?q=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        // Every proper prefix is Incomplete; the full buffer parses to
        // the same request the blocking reader produces.
        for i in 0..raw.len() {
            assert!(
                matches!(try_parse(&raw[..i], DEFAULT_MAX_BODY_BYTES), ParseStatus::Incomplete),
                "prefix of {i} bytes must be Incomplete"
            );
        }
        let ParseStatus::Complete { request, used } = try_parse(raw, DEFAULT_MAX_BODY_BYTES)
        else {
            panic!("expected complete request");
        };
        assert_eq!(used, raw.len());
        let ReadOutcome::Request(blocking) = parse(raw) else {
            panic!("expected request");
        };
        assert_eq!(request.method, blocking.method);
        assert_eq!(request.path, blocking.path);
        assert_eq!(request.query, blocking.query);
        assert_eq!(request.headers, blocking.headers);
        assert_eq!(request.body, blocking.body);
        assert_eq!(request.http1_0, blocking.http1_0);
    }

    #[test]
    fn incremental_parse_leaves_pipelined_bytes() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseStatus::Complete { request, used } = try_parse(raw, DEFAULT_MAX_BODY_BYTES)
        else {
            panic!("expected first request");
        };
        assert_eq!(request.path, "/a");
        let ParseStatus::Complete { request, used: used2 } =
            try_parse(&raw[used..], DEFAULT_MAX_BODY_BYTES)
        else {
            panic!("expected second request");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn incremental_parse_rejects_what_blocking_rejects() {
        assert!(matches!(
            try_parse(b"not http at all\r\n\r\n", DEFAULT_MAX_BODY_BYTES),
            ParseStatus::Malformed(_)
        ));
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            try_parse(huge.as_bytes(), DEFAULT_MAX_BODY_BYTES),
            ParseStatus::BodyTooLarge
        ));
        // Newline-free flood: capped as soon as the budget is blown,
        // never Incomplete forever.
        let flood = vec![b'A'; MAX_HEAD_BYTES * 2];
        let ParseStatus::Malformed(reason) = try_parse(&flood, DEFAULT_MAX_BODY_BYTES) else {
            panic!("expected head-cap rejection");
        };
        assert!(reason.contains("too large"), "{reason}");
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                DEFAULT_MAX_BODY_BYTES
            ),
            ParseStatus::Malformed(_)
        ));
        assert!(matches!(try_parse(b"", DEFAULT_MAX_BODY_BYTES), ParseStatus::Incomplete));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
