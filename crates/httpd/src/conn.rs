//! Per-connection state for the event loop: a nonblocking socket, the
//! bytes received so far, the response bytes still to write, and where
//! the connection is in its request/response cycle.
//!
//! A connection is a cheap state machine, not a thread:
//!
//! ```text
//!   Reading ──complete request──▶ Dispatched ──worker done──▶ Writing
//!      ▲                                                        │
//!      └───────────────── keep-alive (close=false) ─────────────┘
//! ```
//!
//! The event loop drives every transition; this module only owns the
//! buffering mechanics (nonblocking fill/flush, parse-and-consume).

use crate::http::{self, ParseStatus, Response};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Per-fill read chunk; also bounds how much one connection can pull
/// in per event-loop cycle so a firehose peer cannot starve the rest.
const READ_CHUNK: usize = 8 * 1024;
const MAX_READ_PER_CYCLE: usize = 64 * 1024;

/// Where a connection is in its request/response cycle.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Waiting for (more of) the next request.
    Reading,
    /// A complete request is with a worker; awaiting its response.
    Dispatched,
    /// Draining response bytes to the socket.
    Writing {
        /// Close after the flush completes (vs. return to `Reading`).
        close: bool,
    },
}

/// What one nonblocking fill pass observed.
pub(crate) struct Fill {
    /// Bytes appended to the receive buffer.
    pub bytes: usize,
    /// The peer closed its write side (EOF).
    pub eof: bool,
    /// Hard I/O error — the connection is unusable.
    pub err: bool,
}

/// Outcome of one nonblocking flush pass.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Every queued byte is out.
    Done,
    /// The socket would block; more to write next cycle.
    Pending,
    /// Hard I/O error — the connection is unusable.
    Error,
}

/// One client connection owned by the event loop.
pub(crate) struct Conn {
    stream: TcpStream,
    /// State machine position.
    pub state: ConnState,
    /// Received, not-yet-consumed request bytes.
    buf: Vec<u8>,
    /// Serialized response bytes not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// When the first byte of the in-progress request arrived — the
    /// slowloris deadline anchor. `None` while idle between requests.
    pub started_at: Option<Instant>,
}

impl Conn {
    /// Adopts an accepted stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            state: ConnState::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            started_at: None,
        })
    }

    /// Pulls whatever the socket has ready into the receive buffer
    /// (bounded per cycle), without blocking.
    pub fn fill(&mut self) -> Fill {
        let mut fill = Fill {
            bytes: 0,
            eof: false,
            err: false,
        };
        let mut chunk = [0u8; READ_CHUNK];
        while fill.bytes < MAX_READ_PER_CYCLE {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    fill.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    fill.bytes += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if http::is_timeout(&e) => break,
                Err(_) => {
                    fill.err = true;
                    break;
                }
            }
        }
        fill
    }

    /// Whether any request bytes are buffered.
    pub fn has_buffered_bytes(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Marks the in-progress request as started (deadline anchor) if
    /// bytes are buffered and it is not already marked.
    pub fn note_request_started(&mut self, now: Instant) {
        if !self.buf.is_empty() && self.started_at.is_none() {
            self.started_at = Some(now);
        }
    }

    /// Attempts to parse one complete request out of the buffer,
    /// consuming its bytes on success (leftovers are pipelined data).
    ///
    /// Each attempt re-parses from the start of the buffer. That is
    /// deliberate: the incremental path stays byte-for-byte identical
    /// to one-shot parsing by construction, and the rescan is bounded
    /// — the head is capped at `MAX_HEAD_BYTES` (16 KiB) and attempts
    /// only happen when new bytes arrive, so even a byte-dripping peer
    /// costs low single-digit MB of scanning across its whole
    /// request-timeout window.
    pub fn try_extract(&mut self, max_body_bytes: usize) -> ParseStatus {
        let status = http::try_parse(&self.buf, max_body_bytes);
        if let ParseStatus::Complete { used, .. } = &status {
            self.buf.drain(..*used);
        }
        status
    }

    /// Serializes a response into the write buffer and transitions to
    /// `Writing`. The deadline anchor is restarted: a peer that never
    /// reads its response gets `request_timeout` to drain it, the same
    /// budget it had to send the request — otherwise a stalled reader
    /// would pin a connection slot forever (and wedge shutdown, which
    /// waits for every connection to finish).
    pub fn queue_response(&mut self, response: &Response, close: bool) {
        self.out.clear();
        self.out_pos = 0;
        response
            .write_to(&mut self.out, close)
            .expect("writing to a Vec cannot fail");
        self.state = ConnState::Writing { close };
        self.started_at = Some(Instant::now());
    }

    /// Writes as much of the queued response as the socket accepts,
    /// without blocking.
    pub fn flush(&mut self) -> Flush {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Flush::Error,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if http::is_timeout(&e) => return Flush::Pending,
                Err(_) => return Flush::Error,
            }
        }
        Flush::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected loopback (server-side Conn, client-side stream) pair.
    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (Conn::new(server).unwrap(), client)
    }

    #[test]
    fn byte_at_a_time_request_assembles() {
        let (mut conn, mut client) = pair();
        let raw = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        for (i, byte) in raw.iter().enumerate() {
            client.write_all(&[*byte]).unwrap();
            client.flush().unwrap();
            // Wait for the byte to land, then confirm the verdict.
            let deadline = Instant::now() + std::time::Duration::from_secs(5);
            loop {
                let fill = conn.fill();
                assert!(!fill.err);
                if fill.bytes > 0 {
                    break;
                }
                assert!(Instant::now() < deadline, "byte {i} never arrived");
                std::thread::yield_now();
            }
            match conn.try_extract(1024) {
                ParseStatus::Incomplete => assert!(i + 1 < raw.len(), "complete too early"),
                ParseStatus::Complete { request, .. } => {
                    assert_eq!(i + 1, raw.len(), "complete only on the last byte");
                    assert_eq!(request.path, "/x");
                    assert!(!conn.has_buffered_bytes());
                }
                other => panic!("unexpected verdict: {other:?}"),
            }
        }
    }

    #[test]
    fn fill_reports_eof_and_flush_delivers() {
        let (mut conn, mut client) = pair();
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while !matches!(conn.try_extract(1024), ParseStatus::Complete { .. }) {
            assert!(Instant::now() < deadline);
            conn.fill();
        }
        conn.queue_response(&Response::text(200, "ok"), true);
        assert_eq!(conn.flush(), Flush::Done);
        drop(client);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let fill = conn.fill();
            if fill.eof {
                break;
            }
            assert!(Instant::now() < deadline, "EOF never observed");
            std::thread::yield_now();
        }
    }
}
