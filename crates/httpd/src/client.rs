//! A minimal blocking HTTP/1.1 client: one persistent keep-alive
//! connection per [`Client`], transparent reconnect when the server
//! closed it. Used by the CLI, the loopback throughput bench, and the
//! integration tests — not a general-purpose user agent.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers (names lower-cased), arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A client bound to one server address.
pub struct Client {
    addr: String,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`host:port`); connects lazily.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            conn: None,
        }
    }

    /// Overrides the per-operation socket timeout (builder-style).
    pub fn timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some("application/json"), body.as_bytes())
    }

    /// An arbitrary request over the persistent connection, retrying
    /// once on a fresh connection if the kept-alive one went stale.
    ///
    /// The retry is restricted to connection-level failures (EOF or
    /// reset before a status line) on a *reused* connection — the
    /// signature of the server having closed the idle keep-alive
    /// socket before this request arrived. A timeout or a mid-response
    /// failure is NOT retried: the server may already have processed a
    /// non-idempotent request, and re-sending it would run it twice.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let reused = self.conn.is_some();
        match self.try_request(method, path, content_type, body) {
            Ok(response) => Ok(response),
            Err(e) if reused && is_stale_connection(&e) => {
                self.conn = None;
                self.try_request(method, path, content_type, body)
            }
            Err(e) => {
                self.conn = None; // connection state is unknown; rebuild next call
                Err(e)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        if self.conn.is_none() {
            self.conn = Some(connect(&self.addr, self.timeout)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        let response = send_on(conn, &self.addr, method, path, content_type, body)?;
        if wants_close(&response) {
            self.conn = None;
        }
        Ok(response)
    }
}

/// Opens a fresh connection to `addr` with per-operation timeouts set.
pub(crate) fn connect(addr: &str, timeout: Duration) -> io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    Ok(BufReader::new(stream))
}

/// Writes one request on an open connection and reads the response.
pub(crate) fn send_on(
    conn: &mut BufReader<TcpStream>,
    addr: &str,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<ClientResponse> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let stream = conn.get_mut();
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_response(conn)
}

/// Whether the server asked for this connection to be closed.
pub(crate) fn wants_close(response: &ClientResponse) -> bool {
    response
        .header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// One-shot `GET` on a fresh connection.
///
/// # Errors
///
/// Connection or protocol failure.
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    Client::new(addr).get(path)
}

/// One-shot JSON `POST` on a fresh connection.
///
/// # Errors
///
/// Connection or protocol failure.
pub fn post_json(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    Client::new(addr).post_json(path, body)
}

/// Whether an error means the kept-alive connection was already dead
/// (safe to retry) as opposed to the server failing mid-request (not
/// safe — it may have acted on the request).
///
/// Read-path errors matching these kinds can only come from
/// [`read_response`]'s before-the-status-line phase: once the status
/// line has arrived the server has visibly acted on the request, so
/// every later failure — clean EOF *and* reset/abort — is demoted to
/// `InvalidData`, precisely so this predicate cannot mistake a
/// half-delivered response for a stale connection and re-send a
/// non-idempotent request.
pub(crate) fn is_stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
    )
}

fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<ClientResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line '{}'", line.trim_end()),
            )
        })?;
    // From here on the server has committed to a response: an EOF *or
    // reset* is a truncated response, not a stale keep-alive socket,
    // and must not surface with a retry-safe error kind.
    read_after_status(reader, status).map_err(|e| {
        if is_stale_connection(&e) {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("connection failed mid-response: {e}"),
            )
        } else {
            e
        }
    })
}

/// Reads headers + body once the status line is in. Callers demote any
/// connection-level error kind this returns (see [`read_response`]).
fn read_after_status(
    reader: &mut BufReader<TcpStream>,
    status: u16,
) -> io::Result<ClientResponse> {
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server closed the connection inside response headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    let mut filled = 0;
    while filled < length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "server closed the connection mid-response body: \
                         got {filled} of {length} bytes"
                    ),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_response_error_kinds_are_never_retry_safe() {
        // The demotion applied by read_response: every kind the stale
        // predicate would match must stop matching once wrapped.
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::BrokenPipe,
        ] {
            let raw = io::Error::new(kind, "boom");
            assert!(is_stale_connection(&raw));
            let demoted = io::Error::new(
                io::ErrorKind::InvalidData,
                format!("connection failed mid-response: {raw}"),
            );
            assert!(
                !is_stale_connection(&demoted),
                "{kind:?} must not be retryable mid-response"
            );
        }
        // Timeouts were never retryable and stay that way.
        assert!(!is_stale_connection(&io::Error::from(io::ErrorKind::WouldBlock)));
    }
}
