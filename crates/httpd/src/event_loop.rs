//! The readiness loop: one thread owns every connection; a bounded
//! worker pool runs handlers.
//!
//! ```text
//!             ┌───────────────── event-loop thread ─────────────────┐
//!   accept ──▶│ nonblocking poll cycle over all connections:        │
//!             │   drain worker completions → accept → read/parse/   │
//!             │   dispatch → write → deadlines                      │
//!             └──── try_send ──▶ bounded job queue ──▶ worker pool ─┘
//!                    (full → 503)        │ router.dispatch (catch_unwind)
//!                                        ▼
//!                              completion channel back to the loop
//! ```
//!
//! `std` has no `poll(2)` wrapper, so readiness is discovered by
//! attempting nonblocking I/O on each registered connection per cycle
//! (`WouldBlock` = not ready) — mio-style registration without the
//! dependency. The loop spins while traffic flows and backs off to
//! short sleeps when idle, trading a bounded sliver of idle latency
//! (≤ ~1 ms) for zero busy-burn; per-cycle work is O(connections),
//! which is the honest dependency-free ceiling.
//!
//! The payoff: an idle keep-alive connection costs one buffer, not one
//! thread — thousands of pollers can sit open against a handful of
//! workers. The worker pool bounds only *handler execution*, and its
//! queue bounds dispatch: a complete request that finds the queue full
//! is answered 503 immediately (explicit backpressure, never an
//! unbounded buffer, never a hang).

use crate::conn::{Conn, ConnState, Flush};
use crate::http::{ParseStatus, Request, Response};
use crate::router::Router;
use crate::server::ServerConfig;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Counters and flags shared between the loop and the [`crate::Server`]
/// handle.
pub(crate) struct Shared {
    /// Graceful-stop flag: stop accepting, drain, exit.
    pub stop: Arc<AtomicBool>,
    /// Requests dispatched to handlers.
    pub requests: Arc<AtomicU64>,
    /// Connections/requests answered 503 for saturation.
    pub rejected: Arc<AtomicU64>,
    /// Currently open connections (live gauge).
    pub open: Arc<AtomicU64>,
}

/// A complete request handed to the worker pool.
struct Job {
    conn: usize,
    request: Request,
    wants_close: bool,
    /// When the job entered the queue — the queue-wait histogram's
    /// start mark.
    enqueued: Instant,
}

/// Per-worker-thread metric handles. The per-route histogram cache
/// keeps the hot path at one `HashMap` lookup; the registry is only
/// consulted the first time a thread sees a route.
struct WorkerTelemetry {
    registry: Arc<obs::Registry>,
    queue_wait: obs::Histogram,
    routes: std::collections::HashMap<String, obs::Histogram>,
}

const REQUEST_SECONDS_HELP: &str = "HTTP request service time by route, in seconds.";

impl WorkerTelemetry {
    fn new(registry: Arc<obs::Registry>) -> WorkerTelemetry {
        let queue_wait = registry.histogram(
            "httpd_queue_wait_seconds",
            "Time requests spent queued for a worker, in seconds.",
            obs::WAIT_BUCKETS,
        );
        WorkerTelemetry {
            registry,
            queue_wait,
            routes: std::collections::HashMap::new(),
        }
    }

    fn route_histogram(&mut self, route: &str) -> &obs::Histogram {
        let WorkerTelemetry {
            registry, routes, ..
        } = self;
        routes.entry(route.to_string()).or_insert_with(|| {
            registry.histogram_with(
                "httpd_request_seconds",
                REQUEST_SECONDS_HELP,
                obs::LATENCY_BUCKETS,
                &[("route", route)],
            )
        })
    }
}

/// A worker's verdict. `response: None` means the handler panicked —
/// the connection is dropped without a response (one panic costs one
/// connection, never a pool slot).
struct Done {
    conn: usize,
    response: Option<Response>,
    wants_close: bool,
}

/// Progress-based backoff: spin while traffic flows, sleep when idle.
/// The sleep cap bounds both idle CPU and worst-case wake latency.
struct Backoff {
    idle_cycles: u32,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff { idle_cycles: 0 }
    }

    fn reset(&mut self) {
        self.idle_cycles = 0;
    }

    fn snooze(&mut self) {
        self.idle_cycles = self.idle_cycles.saturating_add(1);
        if self.idle_cycles < 256 {
            std::thread::yield_now();
        } else if self.idle_cycles < 512 {
            std::thread::sleep(Duration::from_micros(50));
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Index-stable connection storage; slots are reused via a free list.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    len: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(conn);
                i
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        }
    }

    fn remove(&mut self, i: usize) {
        if self.slots[i].take().is_some() {
            self.free.push(i);
            self.len -= 1;
        }
    }
}

/// Runs the server: spawns the worker pool, owns every connection, and
/// returns only after a graceful drain (stop flag set, all in-flight
/// requests answered, workers joined).
pub(crate) fn run(
    listener: TcpListener,
    router: Arc<Router>,
    config: ServerConfig,
    shared: Shared,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let workers_n = config.workers.max(1);
    let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(config.queue_depth);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
    let workers: Vec<_> = (0..workers_n)
        .map(|i| {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let router = router.clone();
            let telemetry = config.metrics.clone().map(WorkerTelemetry::new);
            std::thread::Builder::new()
                .name(format!("httpd-worker-{i}"))
                .spawn(move || worker_loop(&job_rx, &done_tx, &router, telemetry))
                .expect("spawn worker")
        })
        .collect();
    drop(done_tx);

    let mut conns = Slab::new();
    let mut backoff = Backoff::new();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let now = Instant::now();
        let mut progress = false;

        // 1. Worker completions → queue responses (flushed below, same
        //    cycle, so the fast path pays no extra loop iteration).
        while let Ok(done) = done_rx.try_recv() {
            progress = true;
            deliver_completion(&mut conns, &shared, done, stopping);
        }

        // 2. Accept — capped by max_connections, halted once stopping.
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        if conns.len >= config.max_connections {
                            shared.rejected.fetch_add(1, Ordering::Relaxed);
                            reject_saturated(stream);
                            continue;
                        }
                        if let Ok(conn) = Conn::new(stream) {
                            conns.insert(conn);
                            shared.open.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) if crate::http::is_timeout(&e) => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        // 3. Per-connection I/O.
        for i in 0..conns.slots.len() {
            let Some(conn) = conns.slots[i].as_mut() else {
                continue;
            };
            let gone = match conn.state {
                ConnState::Reading => {
                    step_reading(conn, i, &config, &shared, &job_tx, stopping, now, &mut progress)
                }
                ConnState::Dispatched => false, // the worker owns this one
                ConnState::Writing { .. } => {
                    step_writing(conn, i, &config, &shared, &job_tx, stopping, now, &mut progress)
                }
            };
            if gone {
                conns.remove(i);
                shared.open.fetch_sub(1, Ordering::Relaxed);
                progress = true;
            }
        }

        if stopping && conns.len == 0 {
            break;
        }
        if progress {
            backoff.reset();
        } else {
            backoff.snooze();
        }
    }

    // Drain complete: no connection holds an outstanding job, so the
    // queue is empty — dropping the sender lets every worker exit.
    drop(job_tx);
    for worker in workers {
        let _ = worker.join();
    }
}

/// Advances a `Reading` connection: pull ready bytes, enforce the
/// slowloris deadline, parse, dispatch. Returns `true` when the
/// connection should be removed.
#[allow(clippy::too_many_arguments)]
fn step_reading(
    conn: &mut Conn,
    id: usize,
    config: &ServerConfig,
    shared: &Shared,
    job_tx: &SyncSender<Job>,
    stopping: bool,
    now: Instant,
    progress: &mut bool,
) -> bool {
    let fill = conn.fill();
    if fill.err {
        return true;
    }
    if fill.bytes > 0 {
        *progress = true;
        conn.note_request_started(now);
        if advance_parse(conn, id, config, shared, job_tx) {
            return true;
        }
    }
    // EOF only matters if no complete request came out of the final
    // bytes (a half-closing client still gets its response written).
    if fill.eof && conn.state == ConnState::Reading {
        if conn.has_buffered_bytes() {
            // The peer quit mid-request; tell it (best-effort) why.
            conn.queue_response(
                &Response::text(400, "bad request: truncated request\n"),
                true,
            );
            let _ = conn.flush();
        }
        return true;
    }
    if conn.state == ConnState::Reading {
        // Idle keep-alive connections end at shutdown; started requests
        // keep their full timeout budget (identical to the blocking
        // server's `should_stop`-only-when-idle rule).
        match conn.started_at {
            None => {
                if stopping {
                    return true;
                }
            }
            Some(t0) => {
                if now.duration_since(t0) > config.request_timeout {
                    conn.queue_response(&Response::text(408, "request timed out\n"), true);
                    *progress = true;
                }
            }
        }
    }
    false
}

/// Flushes a `Writing` connection; on completion either closes or
/// returns to `Reading` (immediately parsing any pipelined bytes).
/// Returns `true` when the connection should be removed.
#[allow(clippy::too_many_arguments)]
fn step_writing(
    conn: &mut Conn,
    id: usize,
    config: &ServerConfig,
    shared: &Shared,
    job_tx: &SyncSender<Job>,
    stopping: bool,
    now: Instant,
    progress: &mut bool,
) -> bool {
    match conn.flush() {
        Flush::Pending => {
            // A peer that stops reading must not pin this slot (or
            // wedge the shutdown drain) forever: the response gets the
            // same wall-clock budget the request had.
            matches!(conn.started_at, Some(t0) if now.duration_since(t0) > config.request_timeout)
        }
        Flush::Error => true,
        Flush::Done => {
            *progress = true;
            let ConnState::Writing { close } = conn.state else {
                unreachable!("step_writing only runs in Writing state");
            };
            if close {
                return true;
            }
            conn.state = ConnState::Reading;
            conn.started_at = None;
            if conn.has_buffered_bytes() {
                // Pipelined follow-up already buffered.
                conn.note_request_started(now);
                if advance_parse(conn, id, config, shared, job_tx) {
                    return true;
                }
            } else if stopping {
                return true;
            }
            false
        }
    }
}

/// Parses at most one request out of the buffer and acts on the
/// verdict. Returns `true` when the connection should be removed.
fn advance_parse(
    conn: &mut Conn,
    id: usize,
    config: &ServerConfig,
    shared: &Shared,
    job_tx: &SyncSender<Job>,
) -> bool {
    match conn.try_extract(config.max_body_bytes) {
        ParseStatus::Incomplete => false,
        ParseStatus::Complete { request, .. } => {
            let wants_close = request.wants_close();
            match job_tx.try_send(Job {
                conn: id,
                request,
                wants_close,
                enqueued: Instant::now(),
            }) {
                Ok(()) => {
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    conn.state = ConnState::Dispatched;
                    conn.started_at = None;
                    false
                }
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    // Every worker busy and the queue full: explicit
                    // backpressure, same wire response as accept-time
                    // saturation.
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    conn.queue_response(&saturated_response(), true);
                    false
                }
            }
        }
        ParseStatus::Malformed(reason) => {
            conn.queue_response(&Response::text(400, format!("bad request: {reason}\n")), true);
            false
        }
        ParseStatus::BodyTooLarge => {
            conn.queue_response(&Response::text(413, "request body too large\n"), true);
            false
        }
    }
}

/// Routes a worker's completed response back onto its connection.
fn deliver_completion(conns: &mut Slab, shared: &Shared, done: Done, stopping: bool) {
    let Some(conn) = conns.slots.get_mut(done.conn).and_then(Option::as_mut) else {
        // Dispatched connections are never removed before their
        // completion arrives, so this is unreachable in practice;
        // tolerate it rather than poison the loop.
        return;
    };
    match done.response {
        Some(response) => {
            // Close when either side wants it — including a shutdown
            // that began while the handler ran.
            let close = done.wants_close || stopping || shared.stop.load(Ordering::SeqCst);
            conn.queue_response(&response, close);
        }
        None => {
            eprintln!("httpd: handler panicked; connection dropped");
            conns.remove(done.conn);
            shared.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(
    job_rx: &Mutex<Receiver<Job>>,
    done_tx: &Sender<Done>,
    router: &Router,
    mut telemetry: Option<WorkerTelemetry>,
) {
    loop {
        // Hold the lock only for the dequeue, not while handling.
        let job = match job_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(mut job) = job else {
            return; // sender dropped and queue drained
        };
        if let Some(t) = telemetry.as_ref() {
            t.queue_wait.observe_duration(job.enqueued.elapsed());
        }
        // A panicking handler must cost one connection, not a worker:
        // the pool would otherwise shrink panic by panic until the
        // server stops serving.
        let service_start = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.dispatch_with_route(&mut job.request)
        }))
        .ok();
        let response = match outcome {
            Some((response, route)) => {
                if let Some(t) = telemetry.as_mut() {
                    t.route_histogram(route.unwrap_or("(unmatched)"))
                        .observe_duration(service_start.elapsed());
                }
                Some(response)
            }
            None => None, // handler panicked mid-dispatch; no route to charge
        };
        let done = Done {
            conn: job.conn,
            response,
            wants_close: job.wants_close,
        };
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// The saturation response: identical bytes whether the server refuses
/// at accept time (connection cap) or at dispatch time (worker-queue
/// cap).
fn saturated_response() -> Response {
    Response::text(503, "server saturated, retry later\n").header("Retry-After", "1")
}

/// Answers 503 on a just-accepted stream and closes. Best-effort and
/// nonblocking: the payload is far below a fresh socket's send buffer,
/// so the write cannot stall the loop.
fn reject_saturated(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(true);
    let _ = saturated_response().write_to(&mut stream, true);
}
