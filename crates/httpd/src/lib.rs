//! `httpd` — a dependency-free HTTP/1.1 layer for the as-a-Service
//! surface (paper §IV: users reach ProFIPy through a web front-end).
//!
//! The build environment is offline, so instead of hyper/axum this
//! small crate implements the slice of HTTP the service needs, on
//! `std` alone:
//!
//! * [`http`] — request/response types, strict HTTP/1.1 parsing with
//!   `Content-Length` bodies, bounded head/body sizes. One grammar,
//!   two entry points: a pure incremental parser ([`http::try_parse`])
//!   and a blocking reader ([`http::read_request`]).
//! * [`router`] — a path/method router with `:param` captures.
//! * [`server`] — an event-loop server: one readiness thread owns
//!   every connection as a cheap state machine (nonblocking sockets,
//!   poll cycle — mio-style, dependency-free) and hands complete
//!   requests to a bounded worker pool. Idle keep-alive clients cost a
//!   buffer, not a thread, so connections scale past the pool;
//!   backpressure (**503** once saturated, never an unbounded queue),
//!   slowloris deadlines, and graceful drain are preserved from the
//!   threaded predecessor.
//! * [`client`] — a minimal blocking client (persistent keep-alive
//!   connection) used by the CLI, benches, and integration tests.
//! * [`pool`] — a per-host keep-alive connection pool over the client
//!   internals (max-idle + TTL eviction, stale replacement), for
//!   multi-threaded callers like the fleet worker agent.
//!
//! ```no_run
//! use httpd::{Response, Router, Server, ServerConfig};
//!
//! let router = Router::new()
//!     .route("GET", "/hello/:name", |req| {
//!         Response::text(200, format!("hello {}", req.param("name").unwrap()))
//!     });
//! let server = Server::bind("127.0.0.1:0", router, ServerConfig::default()).unwrap();
//! let addr = server.addr();
//! // ... serve traffic ...
//! server.shutdown();
//! # let _ = addr;
//! ```

pub mod client;
mod conn;
mod event_loop;
pub mod http;
pub mod pool;
pub mod router;
pub mod server;

pub use client::{Client, ClientResponse};
pub use http::{Request, Response};
pub use pool::{ClientPool, PoolConfig};
pub use router::Router;
pub use server::{Server, ServerConfig};
