//! Path/method routing with `:param` captures.

use crate::http::{Request, Response};
use std::sync::Arc;

/// A request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

enum Segment {
    Literal(String),
    Param(String),
}

struct Route {
    method: String,
    /// The original pattern string — the low-cardinality `route` label
    /// for per-route latency metrics.
    pattern: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// The router: an ordered list of `(method, pattern)` routes. Patterns
/// are `/`-separated; a `:name` segment captures the corresponding
/// request segment into [`Request::param`].
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router (every request answers 404).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route (builder-style). Earlier routes win.
    pub fn route(
        mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method: method.to_ascii_uppercase(),
            pattern: pattern.to_string(),
            segments: split(pattern)
                .map(|s| match s.strip_prefix(':') {
                    Some(name) => Segment::Param(name.to_string()),
                    None => Segment::Literal(s.to_string()),
                })
                .collect(),
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches a request: fills `request.params` and runs the
    /// matching handler; 405 when the path exists under another
    /// method, 404 otherwise.
    pub fn dispatch(&self, request: &mut Request) -> Response {
        self.dispatch_with_route(request).0
    }

    /// Like [`Router::dispatch`], but also reports which route pattern
    /// matched (`None` for 404/405) — the label per-route latency
    /// histograms key on.
    pub fn dispatch_with_route(&self, request: &mut Request) -> (Response, Option<&str>) {
        let mut path_matched = false;
        for route in &self.routes {
            let Some(params) = match_segments(&route.segments, &request.path) else {
                continue;
            };
            path_matched = true;
            if route.method != request.method {
                continue;
            }
            request.params = params;
            return ((route.handler)(request), Some(route.pattern.as_str()));
        }
        if path_matched {
            (Response::text(405, "method not allowed\n"), None)
        } else {
            (Response::text(404, "not found\n"), None)
        }
    }
}

fn split(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|s| !s.is_empty())
}

fn match_segments(pattern: &[Segment], path: &str) -> Option<Vec<(String, String)>> {
    let mut params = Vec::new();
    let mut segments = split(path);
    for seg in pattern {
        let part = segments.next()?;
        match seg {
            Segment::Literal(lit) => {
                if lit != part {
                    return None;
                }
            }
            Segment::Param(name) => params.push((name.clone(), part.to_string())),
        }
    }
    if segments.next().is_some() {
        return None;
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            ..Request::default()
        }
    }

    #[test]
    fn routes_and_captures() {
        let router = Router::new()
            .route("GET", "/api/campaigns/:id", |req| {
                Response::text(200, format!("job {}", req.param("id").unwrap()))
            })
            .route("GET", "/api/campaigns/:id/report", |req| {
                Response::text(200, format!("report {}", req.param("id").unwrap()))
            })
            .route("POST", "/api/campaigns", |_| Response::new(201));

        let mut req = request("GET", "/api/campaigns/job-7");
        assert_eq!(router.dispatch(&mut req).body, b"job job-7");
        let mut req = request("GET", "/api/campaigns/job-7/report");
        assert_eq!(router.dispatch(&mut req).body, b"report job-7");
        let mut req = request("POST", "/api/campaigns");
        assert_eq!(router.dispatch(&mut req).status, 201);
        // Wrong method on a known path → 405; unknown path → 404.
        let mut req = request("DELETE", "/api/campaigns");
        assert_eq!(router.dispatch(&mut req).status, 405);
        let mut req = request("GET", "/nope");
        assert_eq!(router.dispatch(&mut req).status, 404);
        // Trailing content does not match a shorter pattern.
        let mut req = request("GET", "/api/campaigns/job-7/report/extra");
        assert_eq!(router.dispatch(&mut req).status, 404);
    }
}
