//! The threaded HTTP server.
//!
//! ```text
//!   accept thread ──try_send──▶ bounded queue ──▶ worker pool (N)
//!        │ (full → 503, close)                       │ keep-alive loop
//!        ▼                                           ▼
//!   shutdown(): stop flag + self-connect wake;   drain queue, finish
//!   stop accepting, drop sender                  in-flight, then exit
//! ```
//!
//! Backpressure is explicit: when every worker is busy and the queue is
//! full, new connections are answered `503 Service Unavailable`
//! immediately — the server never buffers unboundedly and never hangs a
//! client waiting for a slot.

use crate::http::{self, ReadLimits, ReadOutcome, Response};
use crate::router::Router;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads; each owns one connection at a time.
    pub workers: usize,
    /// Accepted connections that may wait for a worker beyond the ones
    /// being served; the saturation threshold for 503 responses.
    pub queue_depth: usize,
    /// Per-request body cap.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one request (slowloris guard).
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 16,
            queue_depth: 32,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// How often blocked reads wake up to poll the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// A running server. Dropping without [`Server::shutdown`] aborts
/// without draining; call `shutdown` for a graceful stop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
}

impl Server {
    /// Binds (use port 0 for an ephemeral port) and starts serving
    /// `router` in the background.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, router: Router, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let router = Arc::new(router);
        let workers_n = config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = rx.clone();
            let router = router.clone();
            let stop = stop.clone();
            let requests = requests.clone();
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("httpd-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &router, &stop, &requests, &config))
                    .expect("spawn worker"),
            );
        }
        let accept_stop = stop.clone();
        let accept_rejected = rejected.clone();
        let accept_handle = std::thread::Builder::new()
            .name("httpd-accept".into())
            .spawn(move || accept_loop(&listener, &tx, &accept_stop, &accept_rejected))
            .expect("spawn acceptor");
        Ok(Server {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            workers,
            requests,
            rejected,
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections rejected with 503 so far.
    pub fn connections_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain queued connections,
    /// finish in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    rejected: &AtomicU64,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break; // the wake connection (or a raced client) is dropped
        }
        let Ok(stream) = stream else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                rejected.fetch_add(1, Ordering::Relaxed);
                reject_saturated(stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` lets workers drain the queue and exit.
}

/// Answers 503 on the accept thread and closes. The write is tiny and
/// the socket buffer is empty, so this cannot stall the accept loop in
/// any meaningful way.
fn reject_saturated(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = Response::text(503, "server saturated, retry later\n")
        .header("Retry-After", "1")
        .write_to(&mut stream, true);
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    router: &Router,
    stop: &AtomicBool,
    requests: &AtomicU64,
    config: &ServerConfig,
) {
    loop {
        // Hold the lock only for the dequeue, not while serving.
        let stream = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => {
                // A panicking handler must cost one connection, not a
                // worker: the pool would otherwise shrink panic by
                // panic until the server stops serving.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, router, stop, requests, config);
                }));
                if result.is_err() {
                    eprintln!("httpd: handler panicked; connection dropped");
                }
            }
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    router: &Router,
    stop: &AtomicBool,
    requests: &AtomicU64,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let limits = ReadLimits {
        max_body_bytes: config.max_body_bytes,
        request_timeout: config.request_timeout,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let outcome = read_request_polled(&mut reader, limits, stop);
        let stream = reader.get_mut();
        match outcome {
            ReadOutcome::Request(mut request) => {
                requests.fetch_add(1, Ordering::Relaxed);
                let response = router.dispatch(&mut request);
                // Drain the connection after the response when either
                // side wants it closed (incl. shutdown).
                let close = request.wants_close() || stop.load(Ordering::SeqCst);
                if response.write_to(stream, close).is_err() || close {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(reason) => {
                let _ = Response::text(400, format!("bad request: {reason}\n"))
                    .write_to(stream, true);
                return;
            }
            ReadOutcome::BodyTooLarge => {
                let _ = Response::text(413, "request body too large\n").write_to(stream, true);
                return;
            }
            ReadOutcome::TimedOut => {
                let _ = Response::text(408, "request timed out\n").write_to(stream, true);
                return;
            }
        }
    }
}

fn read_request_polled(
    reader: &mut BufReader<TcpStream>,
    limits: ReadLimits,
    stop: &AtomicBool,
) -> ReadOutcome {
    http::read_request(reader, limits, || stop.load(Ordering::SeqCst))
}

// Drop is intentionally not graceful (a leaked server must not hang
// the process): it signals the threads and lets them wind down on
// their own.
impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}
