//! The server handle over the event-loop front end.
//!
//! ```text
//!   event-loop thread ──▶ owns accept + every connection's buffers
//!        │  complete requests ──try_send──▶ bounded queue ──▶ workers
//!        │  (full → 503)                      (handlers only)
//!        ▼
//!   shutdown(): stop flag; the loop stops accepting, closes idle
//!   keep-alive connections, finishes in-flight requests, joins the
//!   worker pool, exits.
//! ```
//!
//! Concurrency has two independent knobs now: `max_connections` bounds
//! how many clients may sit on open keep-alive sockets (each costs a
//! buffer), while `workers` bounds how many handlers execute at once
//! (each costs a thread). An idle poller no longer pins a worker, so
//! thousands of keep-alive clients can share a handful of workers.
//!
//! Backpressure is explicit at both edges: a connection beyond
//! `max_connections` and a request that finds every worker busy with
//! the queue full are both answered `503 Service Unavailable`
//! immediately — the server never buffers unboundedly and never hangs
//! a client waiting for a slot.

use crate::event_loop::{self, Shared};
use crate::http;
use crate::router::Router;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction options.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Handler threads: how many requests *execute* concurrently.
    pub workers: usize,
    /// Parsed requests that may wait for a worker; the saturation
    /// threshold for 503 responses.
    pub queue_depth: usize,
    /// Open connections the event loop will hold at once (idle
    /// keep-alive clients included); beyond it, accepts answer 503.
    pub max_connections: usize,
    /// Per-request body cap.
    ///
    /// Worst-case request-buffer memory is `max_connections ×
    /// (max_body_bytes + MAX_HEAD_BYTES)`: every connection may be
    /// mid-upload simultaneously (the threaded predecessor bounded
    /// concurrent uploads by `workers + queue_depth` instead). Facing
    /// untrusted clients, size the two knobs together — e.g. the
    /// defaults allow 1024 × 8 MiB ≈ 8 GiB and suit trusted LANs, not
    /// the open internet.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading one request (slowloris guard).
    pub request_timeout: Duration,
    /// Optional metrics registry: when set, workers record
    /// `httpd_request_seconds{route=…}` and `httpd_queue_wait_seconds`
    /// histograms into it.
    pub metrics: Option<Arc<obs::Registry>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 16,
            queue_depth: 32,
            max_connections: 1024,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            request_timeout: Duration::from_secs(30),
            metrics: None,
        }
    }
}

/// A running server. Dropping without [`Server::shutdown`] signals the
/// event loop to drain on its own time without waiting for it; call
/// `shutdown` for a joined graceful stop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event_loop: Option<JoinHandle<()>>,
    requests: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
    open: Arc<AtomicU64>,
}

impl Server {
    /// Binds (use port 0 for an ephemeral port) and starts serving
    /// `router` in the background.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, router: Router, config: ServerConfig) -> io::Result<Server> {
        Server::from_listener(TcpListener::bind(addr)?, router, config)
    }

    /// Starts serving `router` on an already-bound listener. Lets a
    /// warm standby bind (and let clients queue in the kernel backlog)
    /// long before it decides to serve.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn from_listener(
        listener: TcpListener,
        router: Router,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let open = Arc::new(AtomicU64::new(0));
        let shared = Shared {
            stop: stop.clone(),
            requests: requests.clone(),
            rejected: rejected.clone(),
            open: open.clone(),
        };
        let router = Arc::new(router);
        let event_loop = std::thread::Builder::new()
            .name("httpd-eventloop".into())
            .spawn(move || event_loop::run(listener, router, config, shared))
            .expect("spawn event loop");
        Ok(Server {
            addr,
            stop,
            event_loop: Some(event_loop),
            requests,
            rejected,
            open,
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests dispatched to handlers so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections/requests rejected with 503 so far.
    pub fn connections_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Connections currently open (idle keep-alive clients included).
    pub fn connections_open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Live handle to the open-connections gauge, for embedding into a
    /// metrics endpoint that outlives this borrow.
    pub fn connections_open_gauge(&self) -> Arc<AtomicU64> {
        self.open.clone()
    }

    /// Graceful shutdown: stop accepting, close idle keep-alive
    /// connections, finish in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
    }
}

// Drop is intentionally not joined (a leaked server must not hang the
// process): it signals the event loop, which drains and winds down the
// pool on its own.
impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}
