//! A small keep-alive connection pool over the blocking client.
//!
//! [`Client`](crate::Client) owns exactly one persistent connection, so
//! several threads of one process (a fleet worker's lease loop, its
//! heartbeat thread, its result uploader) would each open their own
//! socket per call — or fight over one client behind a lock. The pool
//! parks idle keep-alive connections **per host** and hands them out per
//! request:
//!
//! * **reuse** — a request checks an idle connection out and parks it
//!   back afterwards, so sequential calls share one socket;
//! * **max-idle eviction** — at most [`PoolConfig::max_idle_per_host`]
//!   idle connections are kept per host (the oldest parked one is
//!   dropped first past the cap);
//! * **TTL eviction** — a connection parked longer than
//!   [`PoolConfig::idle_ttl`] is discarded at checkout time, before the
//!   server's keep-alive reaper makes it a guaranteed stale hit;
//! * **stale replacement** — a pooled connection the server already
//!   closed fails its next request before any status byte arrives; that
//!   exact signature (and only it) is transparently retried on a fresh
//!   connection, mirroring [`Client`](crate::Client)'s retry rule so a
//!   half-delivered response can never replay a non-idempotent request.

use crate::client::{connect, is_stale_connection, send_on, wants_close, ClientResponse};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Pool construction options.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Idle keep-alive connections retained per host.
    pub max_idle_per_host: usize,
    /// How long a parked connection stays eligible for reuse.
    pub idle_ttl: Duration,
    /// Per-operation socket timeout for pooled connections.
    pub timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            max_idle_per_host: 4,
            idle_ttl: Duration::from_secs(30),
            timeout: Duration::from_secs(30),
        }
    }
}

struct IdleConn {
    conn: BufReader<TcpStream>,
    parked_at: Instant,
}

/// The pool. Shared by reference across threads (`&self` methods);
/// each request briefly locks the idle map to check a connection out
/// or park it back — the request itself runs without the lock held.
pub struct ClientPool {
    config: PoolConfig,
    idle: Mutex<HashMap<String, Vec<IdleConn>>>,
}

impl Default for ClientPool {
    fn default() -> ClientPool {
        ClientPool::new()
    }
}

impl ClientPool {
    /// A pool with default limits.
    pub fn new() -> ClientPool {
        ClientPool::with_config(PoolConfig::default())
    }

    /// A pool with explicit limits.
    pub fn with_config(config: PoolConfig) -> ClientPool {
        ClientPool {
            config,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// `GET path` against `addr` over a pooled connection.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn get(&self, addr: &str, path: &str) -> io::Result<ClientResponse> {
        self.request(addr, "GET", path, None, &[])
    }

    /// `POST path` with a JSON body against `addr`.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn post_json(&self, addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request(addr, "POST", path, Some("application/json"), body.as_bytes())
    }

    /// An arbitrary request over a pooled connection. A *reused*
    /// connection that fails before the status line (the server closed
    /// the idle socket) is replaced with a fresh one and the request
    /// retried once; any other failure surfaces as-is.
    ///
    /// # Errors
    ///
    /// Connection or protocol failure.
    pub fn request(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let reused = self.checkout(addr);
        let (mut conn, reused) = match reused {
            Some(conn) => (conn, true),
            None => (connect(addr, self.config.timeout)?, false),
        };
        match send_on(&mut conn, addr, method, path, content_type, body) {
            Ok(response) => {
                if !wants_close(&response) {
                    self.park(addr, conn);
                }
                Ok(response)
            }
            Err(e) if reused && is_stale_connection(&e) => {
                // Stale keep-alive socket: replace and retry once.
                let mut fresh = connect(addr, self.config.timeout)?;
                let response = send_on(&mut fresh, addr, method, path, content_type, body)?;
                if !wants_close(&response) {
                    self.park(addr, fresh);
                }
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// Idle connections currently parked for `addr` (TTL-expired ones
    /// are swept first, so the count reflects reusable sockets only).
    pub fn idle_count(&self, addr: &str) -> usize {
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        match idle.get_mut(addr) {
            Some(conns) => {
                let ttl = self.config.idle_ttl;
                conns.retain(|c| c.parked_at.elapsed() <= ttl);
                conns.len()
            }
            None => 0,
        }
    }

    /// Most recently parked fresh-enough connection, or `None`.
    fn checkout(&self, addr: &str) -> Option<BufReader<TcpStream>> {
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        let conns = idle.get_mut(addr)?;
        // Drop TTL-expired connections outright…
        let ttl = self.config.idle_ttl;
        conns.retain(|c| c.parked_at.elapsed() <= ttl);
        // …and reuse the most recently parked survivor (warmest
        // socket, least likely to have been reaped server-side).
        conns.pop().map(|c| c.conn)
    }

    fn park(&self, addr: &str, conn: BufReader<TcpStream>) {
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        let conns = idle.entry(addr.to_string()).or_default();
        conns.push(IdleConn {
            conn,
            parked_at: Instant::now(),
        });
        // Max-idle eviction: shed the oldest parked connections first.
        while conns.len() > self.config.max_idle_per_host.max(1) {
            conns.remove(0);
        }
    }
}
