//! The paper's §V case study, preconfigured: python-etcd 0.4.5-like
//! client + etcd simulation + the three Table I campaigns.
//!
//! All three campaigns share the same target (the `etcd` client module
//! and the integration-test workload — both registered as injectable
//! sources) and differ in fault model + plan filter, exactly as the
//! paper's faultloads differ per campaign:
//!
//! * **A** (§V-A): faults at `urllib`/`os` call sites inside the client
//!   — exceptions, None responses, omitted calls, missing parameters.
//!   Coverage-pruned, as in the paper (26 points, 13 covered, 12
//!   failures).
//! * **B** (§V-B): wrong inputs at python-etcd API call sites in the
//!   workload — corrupted strings, None values, negative integers
//!   (66 points, all covered, 29 failures).
//! * **C** (§V-C): CPU hogs inside the client methods the workload
//!   exercises (37 points, all covered, 14 failures).

use crate::analysis::FailureClassifier;
use crate::plan::PlanFilter;
use crate::workflow::{HostFactory, Workflow, WorkflowConfig};
use etcdsim::EtcdHost;
use faultdsl::FaultModel;
use std::rc::Rc;
use std::sync::Arc;

/// A campaign bundle: workflow + plan filter + classifier.
pub struct Campaign {
    /// Human-readable name (paper section).
    pub name: String,
    /// The configured workflow.
    pub workflow: Workflow,
    /// Plan filter (§IV-A component selection).
    pub filter: PlanFilter,
    /// Failure classifier.
    pub classifier: FailureClassifier,
    /// Whether the campaign prunes by coverage before executing
    /// (paper §IV-D, used in §V-A).
    pub prune_by_coverage: bool,
}

/// Host factory for the etcd simulation: a fresh simulated container
/// host per experiment.
pub fn etcd_host_factory() -> HostFactory {
    Arc::new(|seed| Rc::new(EtcdHost::new(seed)) as Rc<dyn pyrt::HostApi>)
}

/// Builds a case-study workflow with the given fault model and seed.
pub fn case_study_workflow(model: FaultModel, seed: u64) -> Workflow {
    let config = WorkflowConfig {
        seed,
        setup: vec![vec!["etcd-start".to_string()]],
        ..WorkflowConfig::default()
    };
    Workflow::new(
        vec![
            ("etcd".to_string(), targets::CLIENT_SOURCE.to_string()),
            (
                "workload".to_string(),
                targets::WORKLOAD_BASIC.to_string(),
            ),
        ],
        targets::WORKLOAD_BASIC.to_string(),
        model,
        etcd_host_factory(),
        config,
    )
    .expect("case-study sources and models are well-formed")
}

fn build(name: &str, model: FaultModel, filter: PlanFilter, prune: bool, seed: u64) -> Campaign {
    Campaign {
        name: name.to_string(),
        workflow: case_study_workflow(model, seed),
        filter,
        classifier: FailureClassifier::case_study(),
        prune_by_coverage: prune,
    }
}

/// §V-A: errors from external APIs (urllib, os) — with coverage
/// pruning, as in the paper.
pub fn campaign_a() -> Campaign {
    build(
        "campaign-A-external-apis",
        faultdsl::campaign_a_model(),
        PlanFilter::all().module("etcd"),
        true,
        1,
    )
}

/// §V-B: wrong inputs to the python-etcd API at the workload's call
/// sites.
pub fn campaign_b() -> Campaign {
    build(
        "campaign-B-wrong-inputs",
        faultdsl::campaign_b_model(),
        PlanFilter::all().module("workload"),
        false,
        2,
    )
}

/// §V-C: resource-management bugs — CPU hogs inside the methods of
/// python-etcd exercised by the workload.
pub fn campaign_c() -> Campaign {
    let mut filter = PlanFilter::all().module("etcd");
    for scope in targets::COVERED_SCOPES {
        filter = filter.scope(scope);
    }
    build(
        "campaign-C-resource-hogs",
        faultdsl::campaign_c_model(),
        filter,
        false,
        3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_scan_nonzero_points() {
        for c in [campaign_a(), campaign_b(), campaign_c()] {
            let points = c.workflow.scan();
            let plan = c.workflow.plan(&points, &c.filter);
            assert!(!plan.is_empty(), "{} planned no experiments", c.name);
        }
    }
}
