//! The ProFIPy workflow (paper Fig. 2): Scan → Execution → Data
//! Analysis.

use crate::plan::{InjectionPlan, PlanFilter};
use crate::result::ExperimentResult;
use faultdsl::{BugSpec, FaultModel};
use injector::{InjectionPoint, MutationMode, Mutator, Scanner};
use pyrt::{HostApi, PreparedModule};
use pysrc::Module;
use sandbox::{Container, ContainerImage, ParallelExecutor, RoundOutcome, RoundStatus};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

/// Creates one fresh simulated host per experiment (the per-container
/// environment). Receives a per-experiment seed.
pub type HostFactory = Arc<dyn Fn(u64) -> Rc<dyn HostApi> + Send + Sync>;

/// Campaign-wide configuration.
#[derive(Clone)]
pub struct WorkflowConfig {
    /// Base RNG seed (experiments derive per-experiment seeds).
    pub seed: u64,
    /// Mutation mode (EDFI-style triggered by default).
    pub mode: MutationMode,
    /// Virtual-time budget per workload round.
    pub round_timeout: f64,
    /// Interpreter step budget per round.
    pub fuel_per_round: u64,
    /// Setup commands run at deploy (e.g. `etcd-start`).
    pub setup: Vec<Vec<String>>,
    /// Parallel executor model.
    pub executor: ParallelExecutor,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            seed: 0,
            mode: MutationMode::Triggered,
            round_timeout: 120.0,
            fuel_per_round: 8_000_000,
            setup: Vec::new(),
            executor: ParallelExecutor::default(),
        }
    }
}

/// A configured fault-injection campaign.
pub struct Workflow {
    /// Target sources: `(import name, source text)`.
    sources: Vec<(String, String)>,
    /// Parsed target modules (same order as `sources`).
    modules: Vec<Module>,
    /// The workload module text.
    workload: String,
    /// Compiled bug specifications.
    specs: Vec<BugSpec>,
    /// The fault model they came from.
    pub model: FaultModel,
    /// Host factory.
    host_factory: HostFactory,
    /// Configuration.
    pub config: WorkflowConfig,
    /// The prepared program, built lazily on first use (so a campaign
    /// that adopts a cached program via [`Workflow::set_prepared_program`]
    /// never pays the resolution cost at all) and at most once per
    /// campaign otherwise.
    prepared: std::sync::OnceLock<PreparedProgram>,
}

/// The prepared-program artifact of one campaign: every fault-free
/// module (and the workload) parsed and name-resolved exactly once.
/// `Send + Sync`, so the campaign engine memoizes it across campaigns
/// under the spec's `(source hash, model hash)` cache key.
#[derive(Clone, Debug)]
pub struct PreparedProgram {
    /// Prepared fault-free target modules, in workflow source order.
    pub modules: Vec<Arc<PreparedModule>>,
    /// Prepared workload module, if the workload parses.
    pub workload: Option<Arc<PreparedModule>>,
}

/// Error building a workflow.
#[derive(Clone, Debug)]
pub struct WorkflowError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workflow error: {}", self.message)
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Builds a workflow: parses the target sources and compiles the
    /// fault model.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] for unparsable sources or DSL errors.
    pub fn new(
        sources: Vec<(String, String)>,
        workload: String,
        model: FaultModel,
        host_factory: HostFactory,
        config: WorkflowConfig,
    ) -> Result<Workflow, WorkflowError> {
        let mut modules = Vec::with_capacity(sources.len());
        for (name, text) in &sources {
            let module = pysrc::parse_module(text, name).map_err(|e| WorkflowError {
                message: format!("target source {name}: {e}"),
            })?;
            modules.push(module);
        }
        let specs = model.compile().map_err(|e| WorkflowError {
            message: e.message,
        })?;
        Ok(Workflow {
            sources,
            modules,
            workload,
            specs,
            model,
            host_factory,
            config,
            prepared: std::sync::OnceLock::new(),
        })
    }

    /// Builds a workflow from **already-parsed** modules, skipping the
    /// parse step — the cross-campaign cache hands back parsed modules
    /// so repeated campaigns on an unchanged target pay neither parse
    /// nor scan.
    ///
    /// `modules` must correspond to `sources` (same order, same names);
    /// the sources are still kept for fault-free module text.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] for DSL compile errors or a source/module
    /// mismatch.
    pub fn from_modules(
        sources: Vec<(String, String)>,
        modules: Vec<Module>,
        workload: String,
        model: FaultModel,
        host_factory: HostFactory,
        config: WorkflowConfig,
    ) -> Result<Workflow, WorkflowError> {
        if sources.len() != modules.len()
            || sources
                .iter()
                .zip(&modules)
                .any(|((name, _), module)| name != &module.name)
        {
            return Err(WorkflowError {
                message: "from_modules: sources and modules do not line up".to_string(),
            });
        }
        let specs = model.compile().map_err(|e| WorkflowError {
            message: e.message,
        })?;
        Ok(Workflow {
            sources,
            modules,
            workload,
            specs,
            model,
            host_factory,
            config,
            prepared: std::sync::OnceLock::new(),
        })
    }

    /// **Prepare step**, lazy and at most once per campaign:
    /// parse-independent name resolution and slot allocation for every
    /// fault-free module plus the workload, shared by all experiments.
    /// A cached program adopted via [`Workflow::set_prepared_program`]
    /// preempts this entirely.
    pub fn prepared_program(&self) -> &PreparedProgram {
        self.prepared.get_or_init(|| PreparedProgram {
            modules: self
                .modules
                .iter()
                .map(|m| {
                    // Stamp with the source text's hash so the sandbox
                    // can verify the artifact matches the file it is
                    // substituted for. Both constructors guarantee the
                    // module list lines up with `sources` 1:1.
                    let (_, text) = self
                        .sources
                        .iter()
                        .find(|(n, _)| n == &m.name)
                        .expect("constructors align modules with sources");
                    pyrt::prepare::prepare_hashed(Arc::new(m.clone()), text)
                })
                .collect(),
            workload: pysrc::parse_module(&self.workload, "workload")
                .ok()
                .map(|m| pyrt::prepare::prepare_hashed(Arc::new(m), &self.workload)),
        })
    }

    /// Adopts a cached prepared program (validated against the module
    /// list; a mismatched artifact is ignored). Returns whether the
    /// cached program was adopted. Must be called before the first
    /// experiment runs to have any effect.
    pub fn set_prepared_program(&mut self, program: &PreparedProgram) -> bool {
        let aligned = program.modules.len() == self.modules.len()
            && program
                .modules
                .iter()
                .zip(&self.modules)
                .all(|(p, m)| p.module.name == m.name);
        if !aligned {
            return false;
        }
        self.prepared = std::sync::OnceLock::from(program.clone());
        true
    }

    /// Prepared modules to attach to an experiment image: every module
    /// whose source text the experiment did **not** change, plus the
    /// workload (unless a source named `workload` overrides it).
    fn prepared_for_sources(&self, sources: &[sandbox::SourceFile]) -> Vec<Arc<PreparedModule>> {
        let program = self.prepared_program();
        let mut out = Vec::with_capacity(sources.len() + 1);
        for src in sources {
            let unchanged = self
                .sources
                .iter()
                .any(|(n, t)| n == &src.import_name && t == &src.text);
            if unchanged {
                if let Some(pm) = program
                    .modules
                    .iter()
                    .find(|p| p.module.name == src.import_name)
                {
                    out.push(pm.clone());
                }
            }
        }
        if !sources.iter().any(|s| s.import_name == "workload") {
            if let Some(pm) = &program.workload {
                out.push(pm.clone());
            }
        }
        out
    }

    /// The parsed target modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The target sources: `(import name, source text)`.
    pub fn sources(&self) -> &[(String, String)] {
        &self.sources
    }

    /// The compiled specs.
    pub fn specs(&self) -> &[BugSpec] {
        &self.specs
    }

    /// **Scan phase** (§IV-A): finds every injection point.
    pub fn scan(&self) -> Vec<InjectionPoint> {
        Scanner::new(self.specs.clone()).scan(&self.modules)
    }

    /// Builds a plan from scanned points.
    pub fn plan(&self, points: &[InjectionPoint], filter: &PlanFilter) -> InjectionPlan {
        InjectionPlan::build(points, filter, self.config.seed)
    }

    /// **Coverage pre-run** (§IV-D): executes the workload once against
    /// the fault-free target instrumented with coverage probes, and
    /// returns the set of covered point ids.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] if the fault-free run cannot even be deployed —
    /// that indicates a broken campaign configuration, not an injected
    /// failure.
    pub fn coverage_run(&self, points: &[InjectionPoint]) -> Result<BTreeSet<u64>, WorkflowError> {
        let mutator = Mutator::new(self.config.mode);
        let mut image = ContainerImage::new("coverage")
            .workload(&self.workload)
            .round_timeout(self.config.round_timeout)
            .fuel(self.config.fuel_per_round);
        image.setup = self.config.setup.clone();
        for module in &self.modules {
            let instrumented = mutator.instrument_coverage(module, points);
            image.sources.push(sandbox::SourceFile {
                import_name: module.name.clone(),
                text: pysrc::unparse::unparse_module(&instrumented),
            });
        }
        // Instrumented sources differ from the originals, but the
        // workload is still the campaign's shared prepared module —
        // unless the workload itself is a target source (then its
        // instrumented text must execute, probes and all).
        if !image.sources.iter().any(|s| s.import_name == "workload") {
            if let Some(pm) = &self.prepared_program().workload {
                image.prepared.push(pm.clone());
            }
        }
        let host = (self.host_factory)(self.config.seed);
        let mut container = Container::deploy(&image, host, self.config.seed).map_err(|e| {
            WorkflowError {
                message: format!("coverage run deploy failed: {e}"),
            }
        })?;
        let outcome = container.run_round(1, false);
        if !outcome.status.is_ok() {
            return Err(WorkflowError {
                message: format!(
                    "fault-free coverage run failed: {:?} (stderr: {})",
                    outcome.status,
                    container.stderr()
                ),
            });
        }
        let covered = container.coverage();
        container.teardown();
        Ok(covered)
    }

    /// **Execution phase** (§IV-B): runs one experiment per plan entry,
    /// in parallel containers (at most N−1).
    pub fn execute(&self, plan: &InjectionPlan) -> Vec<ExperimentResult> {
        let entries = &plan.entries;
        self.config
            .executor
            .run(entries.len(), |i| self.run_experiment(&entries[i]))
    }

    /// **Mutation step** of one experiment: the complete per-container
    /// source set (the mutated module plus fault-free originals). This
    /// is pure with respect to the point, so the cross-campaign cache
    /// memoizes it — a resumed or repeated campaign skips re-mutation.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] for an unknown spec or a mutation failure.
    pub fn mutant_sources(
        &self,
        point: &InjectionPoint,
    ) -> Result<Vec<sandbox::SourceFile>, WorkflowError> {
        let spec = self
            .specs
            .iter()
            .find(|s| s.name == point.spec_name)
            .ok_or_else(|| WorkflowError {
                message: format!("unknown spec {}", point.spec_name),
            })?;
        let mutator = Mutator::new(self.config.mode);
        let mut out = Vec::with_capacity(self.modules.len());
        for module in &self.modules {
            let text = if module.name == point.module {
                let mutated = mutator.apply(module, spec, point).map_err(|e| {
                    WorkflowError {
                        message: e.to_string(),
                    }
                })?;
                pysrc::unparse::unparse_module(&mutated)
            } else {
                self.sources
                    .iter()
                    .find(|(n, _)| n == &module.name)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_default()
            };
            out.push(sandbox::SourceFile {
                import_name: module.name.clone(),
                text,
            });
        }
        Ok(out)
    }

    /// Runs a single experiment: mutate → deploy → round 1 (fault on) →
    /// round 2 (fault off) → teardown.
    pub fn run_experiment(&self, point: &InjectionPoint) -> ExperimentResult {
        match self.mutant_sources(point) {
            Ok(sources) => self.run_experiment_with_sources(point, &sources),
            Err(e) => {
                let mut result = Self::empty_result(point);
                result.deploy_error = Some(e.message);
                result
            }
        }
    }

    /// **Execution step** of one experiment on pre-rendered container
    /// sources (from [`Workflow::mutant_sources`] or the mutant cache):
    /// deploy → round 1 (fault on) → round 2 (fault off) → teardown.
    pub fn run_experiment_with_sources(
        &self,
        point: &InjectionPoint,
        sources: &[sandbox::SourceFile],
    ) -> ExperimentResult {
        let seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(point.id);
        let mut result = Self::empty_result(point);
        let mut image = ContainerImage::new(format!("exp-{}", point.id))
            .workload(&self.workload)
            .round_timeout(self.config.round_timeout)
            .fuel(self.config.fuel_per_round);
        image.setup = self.config.setup.clone();
        image.sources = sources.to_vec();
        image.prepared = self.prepared_for_sources(sources);
        let host = (self.host_factory)(seed);
        let mut container = match Container::deploy(&image, host, seed) {
            Ok(c) => c,
            Err(e) => {
                result.deploy_error = Some(e.to_string());
                return result;
            }
        };
        result.round1 = container.run_round(1, true);
        result.round2 = container.run_round(2, false);
        result.logs = container.logs();
        result.stdout = container.stdout();
        result.stderr = container.stderr();
        result.duration = container.now();
        result.events = container.trace_events();
        container.teardown();
        result
    }

    fn empty_result(point: &InjectionPoint) -> ExperimentResult {
        let not_run = RoundOutcome {
            status: RoundStatus::NotRun,
            duration: 0.0,
        };
        ExperimentResult {
            point_id: point.id,
            spec_name: point.spec_name.clone(),
            module: point.module.clone(),
            scope: point.scope.clone(),
            round1: not_run.clone(),
            round2: not_run,
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 0.0,
            deploy_error: None,
            events: Vec::new(),
        }
    }

    /// **Incremental execution** (crash-tolerant campaigns): runs only
    /// the plan entries whose ids are *not* in `done`, invoking
    /// `on_result` on the calling thread as each experiment completes
    /// (checkpoint hook), and returns the new results in completion
    /// order. Entries already in `done` are skipped entirely.
    pub fn execute_incremental(
        &self,
        plan: &InjectionPlan,
        done: &BTreeSet<u64>,
        mut on_result: impl FnMut(&ExperimentResult),
    ) -> Vec<ExperimentResult> {
        let pending: Vec<&InjectionPoint> = plan
            .entries
            .iter()
            .filter(|p| !done.contains(&p.id))
            .collect();
        let stream = std::sync::Mutex::new(
            pending.into_iter().collect::<std::collections::VecDeque<_>>(),
        );
        let mut results = Vec::new();
        self.config.executor.run_stream(
            plan.len(),
            &stream,
            |point| self.run_experiment(point),
            |result| {
                on_result(&result);
                results.push(result);
            },
        );
        results
    }

    /// Convenience: scan → (optional coverage pruning) → execute.
    ///
    /// # Errors
    ///
    /// Propagates coverage-run configuration failures.
    pub fn run_campaign(
        &self,
        filter: &PlanFilter,
        prune_by_coverage: bool,
    ) -> Result<CampaignOutcome, WorkflowError> {
        let points = self.scan();
        let plan = self.plan(&points, filter);
        let (covered, plan_run) = if prune_by_coverage {
            let covered = self.coverage_run(&points)?;
            let pruned = plan.prune_by_coverage(&covered);
            (Some(covered), pruned)
        } else {
            (None, plan.clone())
        };
        let results = self.execute(&plan_run);
        Ok(CampaignOutcome {
            points,
            plan,
            covered,
            results,
        })
    }
}

/// Everything produced by a full campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// All scanned points (before filtering).
    pub points: Vec<InjectionPoint>,
    /// The filtered plan (before coverage pruning).
    pub plan: InjectionPlan,
    /// Covered point ids, if a coverage pre-run was performed.
    pub covered: Option<BTreeSet<u64>>,
    /// One result per executed experiment.
    pub results: Vec<ExperimentResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn tiny_workflow() -> Workflow {
        tiny_workflow_with(WorkflowConfig::default())
    }

    fn tiny_workflow_with(config: WorkflowConfig) -> Workflow {
        let model = FaultModel {
            name: "tiny".into(),
            description: String::new(),
            specs: vec![faultdsl::SpecSource {
                name: "OMIT".into(),
                description: String::new(),
                dsl: "change {\n    $CALL{name=ping*}(...)\n} into {\n    pass\n}".into(),
            }],
        };
        Workflow::new(
            vec![(
                "lib".into(),
                "def a():\n    ping_a()\ndef b():\n    ping_b()\ndef c():\n    ping_c()\n"
                    .into(),
            )],
            "import lib\ndef run(round):\n    pass\n".into(),
            model,
            Arc::new(|_| Rc::new(pyrt::NoopHost::new()) as Rc<dyn pyrt::HostApi>),
            config,
        )
        .expect("valid workflow")
    }

    #[test]
    fn mutant_sources_compose_into_run_experiment() {
        // Direct mode replaces the call outright, which is easy to
        // assert on (triggered mode keeps the original in the `else`).
        let wf = tiny_workflow_with(WorkflowConfig {
            mode: MutationMode::Direct,
            ..WorkflowConfig::default()
        });
        let points = wf.scan();
        assert_eq!(points.len(), 3);
        let sources = wf.mutant_sources(&points[0]).expect("mutates");
        assert_eq!(sources.len(), 1);
        assert!(!sources[0].text.contains("ping_a"), "{}", sources[0].text);
        assert!(sources[0].text.contains("ping_b"), "other points untouched");
        // The composed path and the one-shot path agree.
        let via_sources = wf.run_experiment_with_sources(&points[0], &sources);
        let one_shot = wf.run_experiment(&points[0]);
        assert_eq!(via_sources.round1.status, one_shot.round1.status);
        assert_eq!(via_sources.duration, one_shot.duration);
    }

    #[test]
    fn execute_incremental_skips_done_and_reports_each() {
        let wf = tiny_workflow();
        let points = wf.scan();
        let plan = wf.plan(&points, &PlanFilter::all());
        assert_eq!(plan.len(), 3);
        let done: BTreeSet<u64> = [plan.entries[1].id].into_iter().collect();
        let mut seen = Vec::new();
        let results = wf.execute_incremental(&plan, &done, |r| seen.push(r.point_id));
        assert_eq!(results.len(), 2, "the done experiment is skipped");
        assert!(results.iter().all(|r| !done.contains(&r.point_id)));
        let mut reported = seen.clone();
        reported.sort_unstable();
        let mut executed: Vec<u64> = results.iter().map(|r| r.point_id).collect();
        executed.sort_unstable();
        assert_eq!(reported, executed, "callback saw every result");
        // Nothing done: everything runs. Everything done: nothing runs.
        assert_eq!(wf.execute_incremental(&plan, &BTreeSet::new(), |_| {}).len(), 3);
        let all: BTreeSet<u64> = plan.entries.iter().map(|p| p.id).collect();
        assert!(wf.execute_incremental(&plan, &all, |_| {}).is_empty());
    }

    #[test]
    fn from_modules_skips_parse_but_matches_workflow_new() {
        let wf = tiny_workflow();
        let rebuilt = Workflow::from_modules(
            wf.sources().to_vec(),
            wf.modules().to_vec(),
            "import lib\ndef run(round):\n    pass\n".into(),
            wf.model.clone(),
            Arc::new(|_| Rc::new(pyrt::NoopHost::new()) as Rc<dyn pyrt::HostApi>),
            WorkflowConfig::default(),
        )
        .expect("rebuilds");
        let a = wf.scan();
        let b = rebuilt.scan();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.id == y.id && x.scope == y.scope));
        // Mismatched module list is rejected.
        assert!(Workflow::from_modules(
            vec![("other".into(), String::new())],
            wf.modules().to_vec(),
            String::new(),
            wf.model.clone(),
            Arc::new(|_| Rc::new(pyrt::NoopHost::new()) as Rc<dyn pyrt::HostApi>),
            WorkflowConfig::default(),
        )
        .is_err());
    }
}
