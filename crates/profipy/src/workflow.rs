//! The ProFIPy workflow (paper Fig. 2): Scan → Execution → Data
//! Analysis.

use crate::plan::{InjectionPlan, PlanFilter};
use crate::result::ExperimentResult;
use faultdsl::{BugSpec, FaultModel};
use injector::{InjectionPoint, MutationMode, Mutator, Scanner};
use pyrt::HostApi;
use pysrc::Module;
use sandbox::{Container, ContainerImage, ParallelExecutor, RoundOutcome, RoundStatus};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

/// Creates one fresh simulated host per experiment (the per-container
/// environment). Receives a per-experiment seed.
pub type HostFactory = Arc<dyn Fn(u64) -> Rc<dyn HostApi> + Send + Sync>;

/// Campaign-wide configuration.
#[derive(Clone)]
pub struct WorkflowConfig {
    /// Base RNG seed (experiments derive per-experiment seeds).
    pub seed: u64,
    /// Mutation mode (EDFI-style triggered by default).
    pub mode: MutationMode,
    /// Virtual-time budget per workload round.
    pub round_timeout: f64,
    /// Interpreter step budget per round.
    pub fuel_per_round: u64,
    /// Setup commands run at deploy (e.g. `etcd-start`).
    pub setup: Vec<Vec<String>>,
    /// Parallel executor model.
    pub executor: ParallelExecutor,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            seed: 0,
            mode: MutationMode::Triggered,
            round_timeout: 120.0,
            fuel_per_round: 8_000_000,
            setup: Vec::new(),
            executor: ParallelExecutor::default(),
        }
    }
}

/// A configured fault-injection campaign.
pub struct Workflow {
    /// Target sources: `(import name, source text)`.
    sources: Vec<(String, String)>,
    /// Parsed target modules (same order as `sources`).
    modules: Vec<Module>,
    /// The workload module text.
    workload: String,
    /// Compiled bug specifications.
    specs: Vec<BugSpec>,
    /// The fault model they came from.
    pub model: FaultModel,
    /// Host factory.
    host_factory: HostFactory,
    /// Configuration.
    pub config: WorkflowConfig,
}

/// Error building a workflow.
#[derive(Clone, Debug)]
pub struct WorkflowError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workflow error: {}", self.message)
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Builds a workflow: parses the target sources and compiles the
    /// fault model.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] for unparsable sources or DSL errors.
    pub fn new(
        sources: Vec<(String, String)>,
        workload: String,
        model: FaultModel,
        host_factory: HostFactory,
        config: WorkflowConfig,
    ) -> Result<Workflow, WorkflowError> {
        let mut modules = Vec::with_capacity(sources.len());
        for (name, text) in &sources {
            let module = pysrc::parse_module(text, name).map_err(|e| WorkflowError {
                message: format!("target source {name}: {e}"),
            })?;
            modules.push(module);
        }
        let specs = model.compile().map_err(|e| WorkflowError {
            message: e.message,
        })?;
        Ok(Workflow {
            sources,
            modules,
            workload,
            specs,
            model,
            host_factory,
            config,
        })
    }

    /// The parsed target modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The compiled specs.
    pub fn specs(&self) -> &[BugSpec] {
        &self.specs
    }

    /// **Scan phase** (§IV-A): finds every injection point.
    pub fn scan(&self) -> Vec<InjectionPoint> {
        Scanner::new(self.specs.clone()).scan(&self.modules)
    }

    /// Builds a plan from scanned points.
    pub fn plan(&self, points: &[InjectionPoint], filter: &PlanFilter) -> InjectionPlan {
        InjectionPlan::build(points, filter, self.config.seed)
    }

    /// **Coverage pre-run** (§IV-D): executes the workload once against
    /// the fault-free target instrumented with coverage probes, and
    /// returns the set of covered point ids.
    ///
    /// # Errors
    ///
    /// [`WorkflowError`] if the fault-free run cannot even be deployed —
    /// that indicates a broken campaign configuration, not an injected
    /// failure.
    pub fn coverage_run(&self, points: &[InjectionPoint]) -> Result<BTreeSet<u64>, WorkflowError> {
        let mutator = Mutator::new(self.config.mode);
        let mut image = ContainerImage::new("coverage")
            .workload(&self.workload)
            .round_timeout(self.config.round_timeout)
            .fuel(self.config.fuel_per_round);
        image.setup = self.config.setup.clone();
        for module in &self.modules {
            let instrumented = mutator.instrument_coverage(module, points);
            image.sources.push(sandbox::SourceFile {
                import_name: module.name.clone(),
                text: pysrc::unparse::unparse_module(&instrumented),
            });
        }
        let host = (self.host_factory)(self.config.seed);
        let mut container = Container::deploy(&image, host, self.config.seed).map_err(|e| {
            WorkflowError {
                message: format!("coverage run deploy failed: {e}"),
            }
        })?;
        let outcome = container.run_round(1, false);
        if !outcome.status.is_ok() {
            return Err(WorkflowError {
                message: format!(
                    "fault-free coverage run failed: {:?} (stderr: {})",
                    outcome.status,
                    container.stderr()
                ),
            });
        }
        let covered = container.coverage();
        container.teardown();
        Ok(covered)
    }

    /// **Execution phase** (§IV-B): runs one experiment per plan entry,
    /// in parallel containers (at most N−1).
    pub fn execute(&self, plan: &InjectionPlan) -> Vec<ExperimentResult> {
        let entries = &plan.entries;
        self.config
            .executor
            .run(entries.len(), |i| self.run_experiment(&entries[i]))
    }

    /// Runs a single experiment: mutate → deploy → round 1 (fault on) →
    /// round 2 (fault off) → teardown.
    pub fn run_experiment(&self, point: &InjectionPoint) -> ExperimentResult {
        let seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(point.id);
        let not_run = RoundOutcome {
            status: RoundStatus::NotRun,
            duration: 0.0,
        };
        let mut result = ExperimentResult {
            point_id: point.id,
            spec_name: point.spec_name.clone(),
            module: point.module.clone(),
            scope: point.scope.clone(),
            round1: not_run.clone(),
            round2: not_run,
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 0.0,
            deploy_error: None,
            events: Vec::new(),
        };
        let Some(spec) = self.specs.iter().find(|s| s.name == point.spec_name) else {
            result.deploy_error = Some(format!("unknown spec {}", point.spec_name));
            return result;
        };
        let mutator = Mutator::new(self.config.mode);
        let mut image = ContainerImage::new(format!("exp-{}", point.id))
            .workload(&self.workload)
            .round_timeout(self.config.round_timeout)
            .fuel(self.config.fuel_per_round);
        image.setup = self.config.setup.clone();
        for module in &self.modules {
            let text = if module.name == point.module {
                match mutator.apply(module, spec, point) {
                    Ok(mutated) => pysrc::unparse::unparse_module(&mutated),
                    Err(e) => {
                        result.deploy_error = Some(e.to_string());
                        return result;
                    }
                }
            } else {
                self.sources
                    .iter()
                    .find(|(n, _)| n == &module.name)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_default()
            };
            image.sources.push(sandbox::SourceFile {
                import_name: module.name.clone(),
                text,
            });
        }
        let host = (self.host_factory)(seed);
        let mut container = match Container::deploy(&image, host, seed) {
            Ok(c) => c,
            Err(e) => {
                result.deploy_error = Some(e.to_string());
                return result;
            }
        };
        result.round1 = container.run_round(1, true);
        result.round2 = container.run_round(2, false);
        result.logs = container.logs();
        result.stdout = container.stdout();
        result.stderr = container.stderr();
        result.duration = container.now();
        result.events = container.trace_events();
        container.teardown();
        result
    }

    /// Convenience: scan → (optional coverage pruning) → execute.
    ///
    /// # Errors
    ///
    /// Propagates coverage-run configuration failures.
    pub fn run_campaign(
        &self,
        filter: &PlanFilter,
        prune_by_coverage: bool,
    ) -> Result<CampaignOutcome, WorkflowError> {
        let points = self.scan();
        let plan = self.plan(&points, filter);
        let (covered, plan_run) = if prune_by_coverage {
            let covered = self.coverage_run(&points)?;
            let pruned = plan.prune_by_coverage(&covered);
            (Some(covered), pruned)
        } else {
            (None, plan.clone())
        };
        let results = self.execute(&plan_run);
        Ok(CampaignOutcome {
            points,
            plan,
            covered,
            results,
        })
    }
}

/// Everything produced by a full campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// All scanned points (before filtering).
    pub points: Vec<InjectionPoint>,
    /// The filtered plan (before coverage pruning).
    pub plan: InjectionPlan,
    /// Covered point ids, if a coverage pre-run was performed.
    pub covered: Option<BTreeSet<u64>>,
    /// One result per executed experiment.
    pub results: Vec<ExperimentResult>,
}
