//! Campaign reports: the aggregate the user drills into (paper §IV-C).

use crate::analysis::{
    failure_logging, failure_propagation, persistent_failures, service_availability,
    FailureClassifier,
};
use crate::result::ExperimentResult;
use crate::workflow::CampaignOutcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated results of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Injection points found by the scan (after plan filtering).
    pub planned_points: usize,
    /// Points covered by the workload (if a coverage pre-run happened,
    /// this counts planned ∩ covered).
    pub covered_points: Option<usize>,
    /// Experiments executed.
    pub executed: usize,
    /// Experiments with a round-1 service failure.
    pub failures: usize,
    /// Failure-mode distribution (label → count).
    pub mode_distribution: BTreeMap<String, usize>,
    /// §IV-C service availability (round-2 available fraction).
    pub availability: f64,
    /// Failures persisting into round 2.
    pub persistent: usize,
    /// §IV-D failure-logging metric.
    pub logging: f64,
    /// §IV-D failure-propagation metric.
    pub propagation: f64,
    /// Per-spec failure counts (spec → (executed, failed)).
    pub per_spec: BTreeMap<String, (usize, usize)>,
    /// Total virtual time across experiments.
    pub total_virtual_secs: f64,
}

impl CampaignReport {
    /// Builds the report from a campaign outcome.
    pub fn from_outcome(
        name: &str,
        outcome: &CampaignOutcome,
        classifier: &FailureClassifier,
    ) -> CampaignReport {
        Self::from_results(
            name,
            outcome.plan.len(),
            outcome.covered.as_ref().map(|cov| {
                outcome
                    .plan
                    .entries
                    .iter()
                    .filter(|p| cov.contains(&p.id))
                    .count()
            }),
            &outcome.results,
            classifier,
        )
    }

    /// Builds the report from raw results.
    pub fn from_results(
        name: &str,
        planned_points: usize,
        covered_points: Option<usize>,
        results: &[ExperimentResult],
        classifier: &FailureClassifier,
    ) -> CampaignReport {
        let failures = results.iter().filter(|r| r.failed_round1()).count();
        let mut per_spec: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for r in results {
            let entry = per_spec.entry(r.spec_name.clone()).or_insert((0, 0));
            entry.0 += 1;
            if r.failed_round1() {
                entry.1 += 1;
            }
        }
        CampaignReport {
            name: name.to_string(),
            planned_points,
            covered_points,
            executed: results.len(),
            failures,
            mode_distribution: classifier.distribution(results),
            availability: service_availability(results),
            persistent: persistent_failures(results),
            logging: failure_logging(results),
            propagation: failure_propagation(results, |c| {
                c.split('.').next().unwrap_or(c).to_string()
            }),
            per_spec,
            total_virtual_secs: results.iter().map(|r| r.duration).sum(),
        }
    }

    /// Renders the report as a fixed-width text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Campaign: {} ===", self.name);
        let _ = writeln!(out, "injection points (planned) : {}", self.planned_points);
        if let Some(c) = self.covered_points {
            let _ = writeln!(out, "covered by workload        : {c}");
        }
        let _ = writeln!(out, "experiments executed       : {}", self.executed);
        let _ = writeln!(out, "round-1 service failures   : {}", self.failures);
        let _ = writeln!(
            out,
            "service availability (r2)  : {:.1}%",
            self.availability * 100.0
        );
        let _ = writeln!(out, "persistent failures (r2)   : {}", self.persistent);
        let _ = writeln!(out, "failure logging metric     : {:.1}%", self.logging * 100.0);
        let _ = writeln!(
            out,
            "failure propagation metric : {:.1}%",
            self.propagation * 100.0
        );
        let _ = writeln!(
            out,
            "total virtual time         : {:.1}s",
            self.total_virtual_secs
        );
        let _ = writeln!(out, "--- failure modes ---");
        for (mode, count) in &self.mode_distribution {
            let _ = writeln!(out, "{mode:28} {count:5}");
        }
        let _ = writeln!(out, "--- per fault type ---");
        for (spec, (executed, failed)) in &self.per_spec {
            let _ = writeln!(out, "{spec:28} {executed:4} run {failed:4} failed");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::{RoundOutcome, RoundStatus};

    fn result(spec: &str, fail: bool) -> ExperimentResult {
        ExperimentResult {
            point_id: 0,
            spec_name: spec.into(),
            module: "etcd".into(),
            scope: "Client.set".into(),
            round1: RoundOutcome {
                status: if fail {
                    RoundStatus::Failed {
                        exc_class: "EtcdException".into(),
                        message: "Bad response: 400 Bad Request".into(),
                    }
                } else {
                    RoundStatus::Ok
                },
                duration: 5.0,
            },
            round2: RoundOutcome {
                status: RoundStatus::Ok,
                duration: 5.0,
            },
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 10.0,
            deploy_error: None,
            events: Vec::new(),
        }
    }

    #[test]
    fn report_aggregates() {
        let results = vec![result("A", true), result("A", false), result("B", true)];
        let report = CampaignReport::from_results(
            "test",
            10,
            Some(5),
            &results,
            &FailureClassifier::case_study(),
        );
        assert_eq!(report.executed, 3);
        assert_eq!(report.failures, 2);
        assert_eq!(report.per_spec["A"], (2, 1));
        assert_eq!(report.per_spec["B"], (1, 1));
        assert_eq!(report.mode_distribution["bad-request-400"], 2);
        assert!((report.total_virtual_secs - 30.0).abs() < 1e-9);
        let text = report.render_text();
        assert!(text.contains("Campaign: test"));
        assert!(text.contains("bad-request-400"));
    }
}
