//! Per-experiment results.

use pyrt::LogRecord;
use sandbox::RoundOutcome;

/// The outcome of one fault-injection experiment (one mutated version,
//  one fresh container, two workload rounds).
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Injection-point id.
    pub point_id: u64,
    /// Bug specification that produced the mutant.
    pub spec_name: String,
    /// Module injected.
    pub module: String,
    /// Scope injected (`Class.method`).
    pub scope: String,
    /// Round 1 (fault enabled).
    pub round1: RoundOutcome,
    /// Round 2 (fault disabled, no restart).
    pub round2: RoundOutcome,
    /// Log records captured from the target + workload.
    pub logs: Vec<LogRecord>,
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr (tracebacks).
    pub stderr: String,
    /// Total virtual duration of the experiment.
    pub duration: f64,
    /// Deploy-phase error, if the mutant could not even start.
    pub deploy_error: Option<String>,
    /// Traced host API invocations (paper §IV-D), convertible into a
    /// [`trace::Timeline`] via [`ExperimentResult::timeline`].
    pub events: Vec<pyrt::host::TraceEvent>,
}

impl ExperimentResult {
    /// Did round 1 (fault enabled) expose a service failure?
    pub fn failed_round1(&self) -> bool {
        self.deploy_error.is_some() || !self.round1.status.is_ok()
    }

    /// The experiment's API-call timeline (paper §IV-D: "API calls are
    /// visualized as events on timelines").
    pub fn timeline(&self) -> trace::Timeline {
        self.events
            .iter()
            .map(|e| {
                let span = trace::Span::new("etcd-api", &e.name, e.time, e.duration.max(1e-4));
                if e.failed {
                    span.err()
                } else {
                    span.ok()
                }
            })
            .collect()
    }

    /// Was the service unavailable in round 2 (fault disabled)?
    /// This feeds the §IV-C service-availability metric.
    pub fn unavailable_round2(&self) -> bool {
        self.deploy_error.is_some() || !self.round2.status.is_ok()
    }

    /// All searchable failure text: exception classes/messages from
    /// both rounds, stderr, and error-level logs.
    pub fn failure_text(&self) -> String {
        let mut out = String::new();
        for outcome in [&self.round1, &self.round2] {
            if let sandbox::RoundStatus::Failed { exc_class, message } = &outcome.status {
                out.push_str(exc_class);
                out.push(' ');
                out.push_str(message);
                out.push('\n');
            }
            if matches!(outcome.status, sandbox::RoundStatus::Timeout) {
                out.push_str("TIMEOUT\n");
            }
        }
        if let Some(e) = &self.deploy_error {
            out.push_str(e);
            out.push('\n');
        }
        out.push_str(&self.stderr);
        for log in &self.logs {
            if log.severity >= pyrt::Severity::Warning {
                out.push_str(&log.render());
                out.push('\n');
            }
        }
        out
    }
}
