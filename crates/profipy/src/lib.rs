//! `profipy` — the ProFIPy fault-injection service (paper DSN 2020).
//!
//! This is the crate downstream users interact with. It wires the
//! substrates together into the paper's workflow (Fig. 2):
//!
//! ```text
//!        SCAN                EXECUTION              DATA ANALYSIS
//!  DSL → compiler →  mutated versions in fresh   →  failure modes,
//!  scanner → plan →  containers, 2 rounds each      availability,
//!  (coverage prune)  (fault on / fault off)         logging, propagation
//! ```
//!
//! * [`workflow::Workflow`] — one configured fault-injection campaign:
//!   target sources + workload + fault model + host factory.
//! * [`plan::InjectionPlan`] — selected injection points (filtering by
//!   module/scope/spec, seeded random sampling, coverage pruning).
//! * [`analysis`] — failure-mode classification and the §IV-C/§IV-D
//!   metrics (service availability, failure logging, failure
//!   propagation).
//! * [`report::CampaignReport`] — aggregated campaign results with a
//!   text renderer.
//! * [`service::ProfipyService`] — the software-as-a-service façade:
//!   named sessions, saved fault models (JSON), campaign runs.
//! * [`case_study`] — the paper's §V python-etcd campaigns, preconfigured.
//!
//! # Quickstart
//!
//! ```
//! use profipy::case_study;
//!
//! // Scan the python-etcd-like target with the campaign A fault model.
//! let campaign = case_study::campaign_a();
//! let points = campaign.workflow.scan();
//! assert!(!points.is_empty());
//! ```

pub mod analysis;
pub mod case_study;
pub mod plan;
pub mod report;
pub mod result;
pub mod service;
pub mod workflow;

pub use plan::{InjectionPlan, PlanFilter};
pub use report::CampaignReport;
pub use result::ExperimentResult;
pub use workflow::{HostFactory, Workflow, WorkflowConfig};
