//! Data analysis (paper §IV-C / §IV-D): failure-mode classification
//! and the campaign metrics.

use crate::result::ExperimentResult;
use pyrt::Severity;
use sandbox::RoundStatus;
use std::collections::BTreeMap;

/// A user-defined failure-mode rule: the experiment is assigned the
/// first class whose pattern list matches its failure text (paper:
/// "The user can specify patterns (e.g., using keywords and regex)").
#[derive(Clone, Debug)]
pub struct ClassRule {
    /// Failure-mode name.
    pub name: String,
    /// Substring/glob patterns; any match assigns the class.
    pub patterns: Vec<String>,
}

impl ClassRule {
    /// Creates a rule.
    pub fn new(name: &str, patterns: &[&str]) -> ClassRule {
        ClassRule {
            name: name.to_string(),
            patterns: patterns.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn matches(&self, text: &str) -> bool {
        self.patterns.iter().any(|p| {
            if p.contains('*') || p.contains('?') {
                // Glob over the whole text needs surrounding stars.
                faultdsl::glob_match(&format!("*{p}*"), text)
            } else {
                text.contains(p.as_str())
            }
        })
    }
}

/// The failure-mode classifier: built-in crash/timeout modes plus
/// user-defined classes.
#[derive(Clone, Debug, Default)]
pub struct FailureClassifier {
    rules: Vec<ClassRule>,
}

/// Classification result per experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureMode {
    /// No failure observed in round 1.
    NoFailure,
    /// Round 1 exceeded its budget (hang/stall).
    Timeout,
    /// Matched a user-defined class.
    Class(String),
    /// Uncaught exception with no matching user class.
    Crash {
        /// Exception class name.
        exc_class: String,
    },
}

impl FailureMode {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            FailureMode::NoFailure => "no-failure".to_string(),
            FailureMode::Timeout => "timeout".to_string(),
            FailureMode::Class(c) => c.clone(),
            FailureMode::Crash { exc_class } => format!("crash:{exc_class}"),
        }
    }
}

impl FailureClassifier {
    /// Creates a classifier with no user rules.
    pub fn new() -> FailureClassifier {
        FailureClassifier::default()
    }

    /// Adds a user-defined class (builder-style). Order matters:
    /// earlier rules win.
    pub fn rule(mut self, name: &str, patterns: &[&str]) -> FailureClassifier {
        self.rules.push(ClassRule::new(name, patterns));
        self
    }

    /// The classifier used for the §V case study.
    pub fn case_study() -> FailureClassifier {
        FailureClassifier::new()
            .rule(
                "reconnection-failure",
                &["address already in use", "etcd-restart"],
            )
            .rule(
                "member-bootstrapped",
                &["member has already been bootstrapped"],
            )
            .rule("unbound-local", &["UnboundLocalError"])
            .rule(
                "attribute-error-none",
                &["'NoneType' object has no attribute"],
            )
            .rule("key-not-found", &["EtcdKeyNotFound", "Key not found"])
            .rule("bad-request-400", &["400 Bad Request"])
            .rule("inconsistent-read", &["inconsistent value read"])
            .rule("connection-error", &["ConnectTimeoutError", "ConnectionRefusedError", "connection refused"])
    }

    /// Classifies one experiment by its round-1 behaviour.
    pub fn classify(&self, result: &ExperimentResult) -> FailureMode {
        if result.deploy_error.is_some() {
            return FailureMode::Class("deploy-failure".to_string());
        }
        match &result.round1.status {
            RoundStatus::Ok => FailureMode::NoFailure,
            RoundStatus::Timeout => FailureMode::Timeout,
            RoundStatus::NotRun => FailureMode::Class("not-run".to_string()),
            RoundStatus::Failed { exc_class, .. } => {
                let text = result.failure_text();
                for rule in &self.rules {
                    if rule.matches(&text) {
                        return FailureMode::Class(rule.name.clone());
                    }
                }
                FailureMode::Crash {
                    exc_class: exc_class.clone(),
                }
            }
        }
    }

    /// Failure-mode distribution over a result set (paper: "The tool
    /// reports the statistical distribution of failure modes").
    pub fn distribution(&self, results: &[ExperimentResult]) -> BTreeMap<String, usize> {
        let mut dist = BTreeMap::new();
        for r in results {
            *dist.entry(self.classify(r).label()).or_insert(0) += 1;
        }
        dist
    }
}

/// §IV-C service availability: fraction of experiments in which the
/// service was available again in round 2 (fault disabled).
pub fn service_availability(results: &[ExperimentResult]) -> f64 {
    if results.is_empty() {
        return 1.0;
    }
    let available = results.iter().filter(|r| !r.unavailable_round2()).count();
    available as f64 / results.len() as f64
}

/// Experiments whose round-1 failure persisted into round 2 — the
/// cases the paper flags for deeper analysis (resource leaks in error
/// paths).
pub fn persistent_failures(results: &[ExperimentResult]) -> usize {
    results
        .iter()
        .filter(|r| r.failed_round1() && r.unavailable_round2())
        .count()
}

/// §IV-D failure logging: among experiments with a round-1 failure,
/// the fraction that logged at least one error-level record.
pub fn failure_logging(results: &[ExperimentResult]) -> f64 {
    let failed: Vec<&ExperimentResult> =
        results.iter().filter(|r| r.failed_round1()).collect();
    if failed.is_empty() {
        return 1.0;
    }
    let logged = failed
        .iter()
        .filter(|r| r.logs.iter().any(|l| l.severity >= Severity::Error))
        .count();
    logged as f64 / failed.len() as f64
}

/// §IV-D failure propagation: among experiments with a round-1
/// failure, the fraction whose error-level logs span more than one
/// component. `component_of` maps a log component to its subsystem
/// (paper: "The user configures a list of sub-systems").
pub fn failure_propagation(
    results: &[ExperimentResult],
    component_of: impl Fn(&str) -> String,
) -> f64 {
    let failed: Vec<&ExperimentResult> =
        results.iter().filter(|r| r.failed_round1()).collect();
    if failed.is_empty() {
        return 0.0;
    }
    let propagated = failed
        .iter()
        .filter(|r| {
            let components: std::collections::BTreeSet<String> = r
                .logs
                .iter()
                .filter(|l| l.severity >= Severity::Warning)
                .map(|l| component_of(&l.component))
                .collect();
            components.len() > 1
        })
        .count();
    propagated as f64 / failed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::RoundOutcome;

    fn result(status1: RoundStatus, status2: RoundStatus) -> ExperimentResult {
        ExperimentResult {
            point_id: 0,
            spec_name: "S".into(),
            module: "etcd".into(),
            scope: "Client.set".into(),
            round1: RoundOutcome {
                status: status1,
                duration: 1.0,
            },
            round2: RoundOutcome {
                status: status2,
                duration: 1.0,
            },
            logs: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            duration: 2.0,
            deploy_error: None,
            events: Vec::new(),
        }
    }

    fn failed(class: &str, msg: &str) -> RoundStatus {
        RoundStatus::Failed {
            exc_class: class.to_string(),
            message: msg.to_string(),
        }
    }

    #[test]
    fn classifier_matches_case_study_modes() {
        let c = FailureClassifier::case_study();
        let r = result(
            failed("OSError", "command 'etcd-restart' failed (1): bind: address already in use (port 2379 held by stale connection #1)"),
            RoundStatus::Ok,
        );
        assert_eq!(
            c.classify(&r),
            FailureMode::Class("reconnection-failure".into())
        );
        let r = result(
            failed("EtcdException", "Bad response: 500 ERROR 300 member has already been bootstrapped"),
            RoundStatus::Ok,
        );
        assert_eq!(
            c.classify(&r),
            FailureMode::Class("member-bootstrapped".into())
        );
        let r = result(
            failed(
                "UnboundLocalError",
                "local variable 'resp' referenced before assignment",
            ),
            RoundStatus::Ok,
        );
        assert_eq!(c.classify(&r), FailureMode::Class("unbound-local".into()));
        let r = result(
            failed(
                "AttributeError",
                "'NoneType' object has no attribute 'startswith'",
            ),
            RoundStatus::Ok,
        );
        assert_eq!(
            c.classify(&r),
            FailureMode::Class("attribute-error-none".into())
        );
    }

    #[test]
    fn timeout_and_no_failure() {
        let c = FailureClassifier::case_study();
        assert_eq!(
            c.classify(&result(RoundStatus::Timeout, RoundStatus::Ok)),
            FailureMode::Timeout
        );
        assert_eq!(
            c.classify(&result(RoundStatus::Ok, RoundStatus::Ok)),
            FailureMode::NoFailure
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        // Both rules match the text; declaration order decides.
        let c = FailureClassifier::new()
            .rule("specific", &["timed out after"])
            .rule("generic", &["timed out"]);
        let r = result(failed("E", "request timed out after 5s"), RoundStatus::Ok);
        assert_eq!(c.classify(&r), FailureMode::Class("specific".into()));

        // Reversed declaration order flips the winner on the same text.
        let c = FailureClassifier::new()
            .rule("generic", &["timed out"])
            .rule("specific", &["timed out after"]);
        assert_eq!(c.classify(&r), FailureMode::Class("generic".into()));

        // Within one rule, any pattern in the list suffices.
        let c = FailureClassifier::new().rule("either", &["no-match-here", "timed out"]);
        assert_eq!(c.classify(&r), FailureMode::Class("either".into()));
    }

    #[test]
    fn glob_patterns_dispatch_to_glob_matching() {
        // A '*' or '?' switches the pattern from substring to glob
        // (wrapped in implicit stars, so it may match mid-text).
        let c = FailureClassifier::new().rule("bind-fail", &["bind: * in use"]);
        let r = result(
            failed("OSError", "etcd: bind: address already in use (port 2379)"),
            RoundStatus::Ok,
        );
        assert_eq!(c.classify(&r), FailureMode::Class("bind-fail".into()));
        // The same text does NOT contain the literal pattern, so as a
        // substring rule it would miss — proving glob dispatch ran.
        assert!(!r.failure_text().contains("bind: * in use"));

        // '?' matches exactly one character.
        let c = FailureClassifier::new().rule("http-5xx", &["HTTP 5?? error"]);
        let hit = result(failed("E", "server said HTTP 503 error"), RoundStatus::Ok);
        assert_eq!(c.classify(&hit), FailureMode::Class("http-5xx".into()));
        let miss = result(failed("E", "server said HTTP 50 error"), RoundStatus::Ok);
        assert_eq!(
            c.classify(&miss),
            FailureMode::Crash { exc_class: "E".into() }
        );

        // A plain pattern stays a substring match even when the text
        // holds glob-special characters.
        let c = FailureClassifier::new().rule("literal", &["[500]"]);
        let r = result(failed("E", "status [500] returned"), RoundStatus::Ok);
        assert_eq!(c.classify(&r), FailureMode::Class("literal".into()));
    }

    #[test]
    fn unclassified_failures_fall_back_in_order() {
        let c = FailureClassifier::new().rule("known", &["known text"]);
        // Deploy failures outrank everything, even with a match.
        let mut r = result(failed("E", "known text"), RoundStatus::Ok);
        r.deploy_error = Some("mutation failed".into());
        assert_eq!(c.classify(&r), FailureMode::Class("deploy-failure".into()));
        // NotRun rounds are their own class.
        assert_eq!(
            c.classify(&result(RoundStatus::NotRun, RoundStatus::NotRun)),
            FailureMode::Class("not-run".into())
        );
        // An exception matching no rule keeps its class name visible.
        let mode = c.classify(&result(failed("KeyError", "'missing'"), RoundStatus::Ok));
        assert_eq!(mode, FailureMode::Crash { exc_class: "KeyError".into() });
        assert_eq!(mode.label(), "crash:KeyError");
        // And an empty classifier still distinguishes the built-ins.
        let empty = FailureClassifier::new();
        assert_eq!(
            empty.classify(&result(RoundStatus::Timeout, RoundStatus::Ok)),
            FailureMode::Timeout
        );
        assert_eq!(
            empty.classify(&result(RoundStatus::Ok, RoundStatus::Ok)),
            FailureMode::NoFailure
        );
    }

    #[test]
    fn unmatched_exception_is_crash() {
        let c = FailureClassifier::new();
        let mode = c.classify(&result(failed("ZeroDivisionError", "division by zero"), RoundStatus::Ok));
        assert_eq!(mode, FailureMode::Crash { exc_class: "ZeroDivisionError".into() });
        assert_eq!(mode.label(), "crash:ZeroDivisionError");
    }

    #[test]
    fn availability_metric() {
        let results = vec![
            result(RoundStatus::Ok, RoundStatus::Ok),
            result(failed("E", "x"), RoundStatus::Ok),
            result(failed("E", "x"), failed("E", "x")),
            result(RoundStatus::Timeout, RoundStatus::Timeout),
        ];
        assert!((service_availability(&results) - 0.5).abs() < 1e-9);
        assert_eq!(persistent_failures(&results), 2);
    }

    #[test]
    fn logging_metric_counts_error_logs() {
        let mut with_log = result(failed("E", "x"), RoundStatus::Ok);
        with_log.logs.push(pyrt::LogRecord {
            time: 0.0,
            severity: Severity::Error,
            component: "etcd.client".into(),
            message: "boom".into(),
        });
        let without_log = result(failed("E", "x"), RoundStatus::Ok);
        let results = vec![with_log, without_log];
        assert!((failure_logging(&results) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn propagation_metric_spans_components() {
        let mut multi = result(failed("E", "x"), RoundStatus::Ok);
        for comp in ["etcd.client", "workload"] {
            multi.logs.push(pyrt::LogRecord {
                time: 0.0,
                severity: Severity::Error,
                component: comp.into(),
                message: "err".into(),
            });
        }
        let single = result(failed("E", "x"), RoundStatus::Ok);
        let results = vec![multi, single];
        let prop = failure_propagation(&results, |c| {
            c.split('.').next().unwrap_or(c).to_string()
        });
        assert!((prop - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distribution_counts() {
        let c = FailureClassifier::case_study();
        let results = vec![
            result(RoundStatus::Ok, RoundStatus::Ok),
            result(RoundStatus::Timeout, RoundStatus::Ok),
            result(failed("UnboundLocalError", "local variable 'r'"), RoundStatus::Ok),
        ];
        let dist = c.distribution(&results);
        assert_eq!(dist["no-failure"], 1);
        assert_eq!(dist["timeout"], 1);
        assert_eq!(dist["unbound-local"], 1);
    }
}
