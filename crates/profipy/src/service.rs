//! The software-as-a-service façade (paper title: "Programmable
//! Software Fault Injection as-a-Service").
//!
//! Models the hosted-tool surface: named user sessions, a store of
//! saved fault models ("users can save and import fault models of
//! previous fault injection campaigns", §IV-A), and campaign
//! submission.

use crate::analysis::FailureClassifier;
use crate::plan::PlanFilter;
use crate::report::CampaignReport;
use crate::workflow::{Workflow, WorkflowError};
use faultdsl::FaultModel;
use std::collections::BTreeMap;

/// A user session: uploaded target, saved models, past reports.
#[derive(Default)]
pub struct Session {
    saved_models: BTreeMap<String, String>,
    reports: Vec<CampaignReport>,
}

/// The service façade.
#[derive(Default)]
pub struct ProfipyService {
    sessions: BTreeMap<String, Session>,
}

/// Service-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service error: {}", self.message)
    }
}

impl std::error::Error for ServiceError {}

impl ProfipyService {
    /// Creates an empty service.
    pub fn new() -> ProfipyService {
        ProfipyService::default()
    }

    /// Opens (or returns) a user session.
    pub fn session(&mut self, user: &str) -> &mut Session {
        self.sessions.entry(user.to_string()).or_default()
    }

    /// Lists known users.
    pub fn users(&self) -> Vec<String> {
        self.sessions.keys().cloned().collect()
    }

    /// A user's session, if one exists (read-only; does not create).
    pub fn get_session(&self, user: &str) -> Option<&Session> {
        self.sessions.get(user)
    }

    /// A user's past reports, oldest first (empty for unknown users).
    pub fn reports(&self, user: &str) -> &[CampaignReport] {
        self.sessions
            .get(user)
            .map(|s| s.reports())
            .unwrap_or(&[])
    }

    /// The names of a user's past campaigns, oldest first.
    pub fn report_names(&self, user: &str) -> Vec<String> {
        self.reports(user).iter().map(|r| r.name.clone()).collect()
    }

    /// Fetches a user's **latest** report with the given campaign name
    /// (campaigns may be re-run under the same name; the newest is the
    /// interesting one).
    pub fn report(&self, user: &str, name: &str) -> Option<&CampaignReport> {
        self.reports(user).iter().rev().find(|r| r.name == name)
    }
}

impl Session {
    /// Saves a fault model under a name (serialized to JSON, §IV-A).
    pub fn save_model(&mut self, name: &str, model: &FaultModel) {
        self.saved_models
            .insert(name.to_string(), model.to_json());
    }

    /// Imports a previously saved model.
    ///
    /// # Errors
    ///
    /// Unknown name or corrupt JSON.
    pub fn load_model(&self, name: &str) -> Result<FaultModel, ServiceError> {
        let json = self.saved_models.get(name).ok_or_else(|| ServiceError {
            message: format!("no saved fault model named '{name}'"),
        })?;
        FaultModel::from_json(json).map_err(|e| ServiceError { message: e })
    }

    /// Names of saved models.
    pub fn model_names(&self) -> Vec<String> {
        self.saved_models.keys().cloned().collect()
    }

    /// Runs a campaign and stores the report in the session history.
    ///
    /// # Errors
    ///
    /// Propagates workflow failures (bad sources, broken coverage run).
    pub fn run_campaign(
        &mut self,
        name: &str,
        workflow: &Workflow,
        filter: &PlanFilter,
        classifier: &FailureClassifier,
        prune_by_coverage: bool,
    ) -> Result<CampaignReport, WorkflowError> {
        let outcome = workflow.run_campaign(filter, prune_by_coverage)?;
        let report = CampaignReport::from_outcome(name, &outcome, classifier);
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Past reports, oldest first.
    pub fn reports(&self) -> &[CampaignReport] {
        &self.reports
    }

    /// Records a report produced outside `run_campaign` — e.g. by the
    /// campaign orchestration engine, which executes asynchronously and
    /// pushes the report here on completion.
    pub fn add_report(&mut self, report: CampaignReport) {
        self.reports.push(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_load_models() {
        let mut svc = ProfipyService::new();
        let session = svc.session("alice");
        let model = faultdsl::predefined_models();
        session.save_model("default", &model);
        let loaded = session.load_model("default").unwrap();
        assert_eq!(loaded.name, model.name);
        assert_eq!(session.model_names(), vec!["default".to_string()]);
        assert!(session.load_model("missing").is_err());
    }

    #[test]
    fn sessions_are_per_user() {
        let mut svc = ProfipyService::new();
        svc.session("alice")
            .save_model("m", &faultdsl::campaign_a_model());
        assert!(svc.session("bob").model_names().is_empty());
        assert_eq!(svc.users(), vec!["alice".to_string(), "bob".to_string()]);
    }

    fn dummy_report(name: &str, executed: usize) -> CampaignReport {
        CampaignReport::from_results(
            name,
            executed,
            None,
            &[],
            &FailureClassifier::case_study(),
        )
    }

    #[test]
    fn service_level_report_accessors() {
        let mut svc = ProfipyService::new();
        assert!(svc.reports("nobody").is_empty());
        assert!(svc.report("nobody", "x").is_none());
        assert!(svc.get_session("nobody").is_none());

        svc.session("alice").add_report(dummy_report("smoke", 1));
        svc.session("alice").add_report(dummy_report("full", 2));
        svc.session("bob").add_report(dummy_report("smoke", 3));

        assert_eq!(svc.report_names("alice"), vec!["smoke", "full"]);
        assert_eq!(svc.reports("alice").len(), 2);
        assert_eq!(svc.report("alice", "full").unwrap().planned_points, 2);
        // Reports are per-user: bob's "smoke" is not alice's.
        assert_eq!(svc.report("bob", "smoke").unwrap().planned_points, 3);
        assert!(svc.report("alice", "missing").is_none());
        assert!(svc.get_session("alice").is_some());
    }

    #[test]
    fn latest_report_wins_on_name_collision() {
        let mut svc = ProfipyService::new();
        svc.session("alice").add_report(dummy_report("nightly", 1));
        svc.session("alice").add_report(dummy_report("nightly", 9));
        assert_eq!(svc.report("alice", "nightly").unwrap().planned_points, 9);
        assert_eq!(svc.reports("alice").len(), 2, "history keeps both");
    }
}
