//! Fault-injection plans (paper §IV-A: "After obtaining a set of fault
//! injection points, the user can select a subset of such locations
//! according to their needs" — per-component filtering, random
//! sampling, or everything).

use faultdsl::glob_match;
use injector::InjectionPoint;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Selection criteria applied to scanned injection points.
#[derive(Clone, Debug, Default)]
pub struct PlanFilter {
    /// Keep only points in modules matching one of these globs
    /// (empty = all).
    pub modules: Vec<String>,
    /// Keep only points in scopes matching one of these globs
    /// (empty = all).
    pub scopes: Vec<String>,
    /// Keep only points from these specs (empty = all).
    pub specs: Vec<String>,
    /// Randomly sample at most this many points (0 = no limit), using
    /// the campaign seed.
    pub sample: usize,
}

impl PlanFilter {
    /// A filter that keeps everything.
    pub fn all() -> PlanFilter {
        PlanFilter::default()
    }

    /// Restricts to modules matching the glob (builder-style).
    pub fn module(mut self, glob: &str) -> PlanFilter {
        self.modules.push(glob.to_string());
        self
    }

    /// Restricts to scopes matching the glob (builder-style).
    pub fn scope(mut self, glob: &str) -> PlanFilter {
        self.scopes.push(glob.to_string());
        self
    }

    /// Restricts to one spec (builder-style).
    pub fn spec(mut self, name: &str) -> PlanFilter {
        self.specs.push(name.to_string());
        self
    }

    /// Enables random sampling (builder-style).
    pub fn sample(mut self, n: usize) -> PlanFilter {
        self.sample = n;
        self
    }

    fn accepts(&self, p: &InjectionPoint) -> bool {
        let module_ok =
            self.modules.is_empty() || self.modules.iter().any(|g| glob_match(g, &p.module));
        let scope_ok = self.scopes.is_empty() || self.scopes.iter().any(|g| glob_match(g, &p.scope));
        let spec_ok = self.specs.is_empty() || self.specs.iter().any(|s| s == &p.spec_name);
        module_ok && scope_ok && spec_ok
    }
}

/// The set of experiments to run (paper: "The set of injections
/// defines the fault injection plan").
#[derive(Clone, Debug, Default)]
pub struct InjectionPlan {
    /// Selected points, in deterministic order.
    pub entries: Vec<InjectionPoint>,
}

impl InjectionPlan {
    /// Builds a plan from scanned points and a filter. Sampling uses
    /// the given seed (deterministic).
    pub fn build(points: &[InjectionPoint], filter: &PlanFilter, seed: u64) -> InjectionPlan {
        let mut entries: Vec<InjectionPoint> = points
            .iter()
            .filter(|p| filter.accepts(p))
            .cloned()
            .collect();
        if filter.sample > 0 && entries.len() > filter.sample {
            let mut rng = StdRng::seed_from_u64(seed);
            entries.shuffle(&mut rng);
            entries.truncate(filter.sample);
            entries.sort_by_key(|p| p.id);
        }
        InjectionPlan { entries }
    }

    /// Number of planned experiments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Coverage pruning (paper §IV-D): keeps only points whose probe
    /// fired in the fault-free coverage run, returning the reduced
    /// plan.
    pub fn prune_by_coverage(&self, covered: &BTreeSet<u64>) -> InjectionPlan {
        InjectionPlan {
            entries: self
                .entries
                .iter()
                .filter(|p| covered.contains(&p.id))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pysrc::ast::NodeId;
    use pysrc::error::Span;

    fn point(id: u64, spec: &str, module: &str, scope: &str) -> InjectionPoint {
        InjectionPoint {
            id,
            spec_name: spec.to_string(),
            module: module.to_string(),
            scope: scope.to_string(),
            span: Span::default(),
            start_stmt_id: NodeId::DUMMY,
            window_len: 1,
            core_ids: vec![],
        }
    }

    fn sample_points() -> Vec<InjectionPoint> {
        vec![
            point(0, "MFC", "etcd", "Client.set"),
            point(1, "MFC", "etcd", "Client.get"),
            point(2, "EXC", "etcd", "Client.watch"),
            point(3, "EXC", "workload", "<module>"),
        ]
    }

    #[test]
    fn empty_filter_keeps_all() {
        let plan = InjectionPlan::build(&sample_points(), &PlanFilter::all(), 0);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn module_and_scope_filters() {
        let plan = InjectionPlan::build(
            &sample_points(),
            &PlanFilter::all().module("etcd"),
            0,
        );
        assert_eq!(plan.len(), 3);
        let plan = InjectionPlan::build(
            &sample_points(),
            &PlanFilter::all().scope("Client.*"),
            0,
        );
        assert_eq!(plan.len(), 3);
        let plan = InjectionPlan::build(&sample_points(), &PlanFilter::all().spec("EXC"), 0);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let filter = PlanFilter::all().sample(2);
        let a = InjectionPlan::build(&sample_points(), &filter, 42);
        let b = InjectionPlan::build(&sample_points(), &filter, 42);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.entries.iter().map(|p| p.id).collect::<Vec<_>>(),
            b.entries.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        let c = InjectionPlan::build(&sample_points(), &filter, 43);
        // Different seed may pick a different subset (not asserted
        // strictly, but both must be valid subsets).
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn coverage_pruning() {
        let plan = InjectionPlan::build(&sample_points(), &PlanFilter::all(), 0);
        let covered: BTreeSet<u64> = [0u64, 2].into_iter().collect();
        let reduced = plan.prune_by_coverage(&covered);
        assert_eq!(reduced.len(), 2);
        assert!(reduced.entries.iter().all(|p| covered.contains(&p.id)));
    }

    fn many_points(n: u64) -> Vec<InjectionPoint> {
        (0..n)
            .map(|i| {
                point(
                    i,
                    if i % 2 == 0 { "MFC" } else { "EXC" },
                    "etcd",
                    &format!("Client.m{i}"),
                )
            })
            .collect()
    }

    // The campaign engine's checkpoints and cross-campaign cache both
    // assume plan stability: the same spec re-planned after a crash (or
    // on a cache hit) must select exactly the same experiments.

    #[test]
    fn sample_is_fully_deterministic_per_seed() {
        let points = many_points(50);
        let filter = PlanFilter::all().sample(12);
        let ids = |plan: &InjectionPlan| plan.entries.iter().map(|p| p.id).collect::<Vec<_>>();
        let first = InjectionPlan::build(&points, &filter, 1234);
        for _ in 0..5 {
            assert_eq!(ids(&InjectionPlan::build(&points, &filter, 1234)), ids(&first));
        }
        // Sampled ids are a sorted subset of the filtered input.
        let all: BTreeSet<u64> = points.iter().map(|p| p.id).collect();
        assert!(first.entries.iter().all(|p| all.contains(&p.id)));
        assert!(first
            .entries
            .windows(2)
            .all(|w| w[0].id < w[1].id), "plan order is deterministic (sorted)");
        // And the seed actually matters: some other seed must differ.
        assert!(
            (0..10u64).any(|s| ids(&InjectionPlan::build(&points, &filter, s)) != ids(&first)),
            "sampling ignores the seed"
        );
    }

    #[test]
    fn sample_no_larger_than_population_keeps_everything() {
        let points = many_points(5);
        let plan = InjectionPlan::build(&points, &PlanFilter::all().sample(5), 7);
        assert_eq!(plan.len(), 5);
        let plan = InjectionPlan::build(&points, &PlanFilter::all().sample(50), 7);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn prune_is_strict_subset_and_idempotent() {
        let points = many_points(20);
        let plan = InjectionPlan::build(&points, &PlanFilter::all(), 0);
        let covered: BTreeSet<u64> = (0..20u64).filter(|i| i % 3 == 0).collect();
        let pruned = plan.prune_by_coverage(&covered);
        // Strict subset: smaller, and every survivor was in the
        // original plan AND covered.
        assert!(pruned.len() < plan.len());
        let original: BTreeSet<u64> = plan.entries.iter().map(|p| p.id).collect();
        for p in &pruned.entries {
            assert!(original.contains(&p.id));
            assert!(covered.contains(&p.id));
        }
        // No covered plan entry was dropped.
        assert_eq!(
            pruned.len(),
            plan.entries.iter().filter(|p| covered.contains(&p.id)).count()
        );
        // Idempotent: pruning again changes nothing.
        let twice = pruned.prune_by_coverage(&covered);
        assert_eq!(
            twice.entries.iter().map(|p| p.id).collect::<Vec<_>>(),
            pruned.entries.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        // Order is preserved from the original plan.
        assert!(pruned.entries.windows(2).all(|w| w[0].id < w[1].id));
        // Empty coverage prunes everything; full coverage prunes nothing.
        assert!(plan.prune_by_coverage(&BTreeSet::new()).is_empty());
        let full: BTreeSet<u64> = (0..20u64).collect();
        assert_eq!(plan.prune_by_coverage(&full).len(), plan.len());
    }

    #[test]
    fn sample_then_prune_is_stable_for_resume() {
        // The exact composition the engine uses on resume: rebuild the
        // plan from cached points, then prune by the cached coverage
        // set — the result must be identical run over run.
        let points = many_points(40);
        let filter = PlanFilter::all().spec("MFC").sample(8);
        let covered: BTreeSet<u64> = (0..40u64).filter(|i| i % 4 == 0).collect();
        let run = || {
            InjectionPlan::build(&points, &filter, 99)
                .prune_by_coverage(&covered)
                .entries
                .iter()
                .map(|p| p.id)
                .collect::<Vec<_>>()
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(run(), first);
        assert_eq!(run(), first);
    }
}
