//! The python-etcd-like client library (mini-Python source).
//!
//! Anatomy mapped to the paper's observed failure modes:
//!
//! | Code path | Paper failure mode |
//! |---|---|
//! | `_key_path`: `key.startswith('/')` without a None check | §V-B `AttributeError: 'NoneType' object has no attribute 'startswith'` |
//! | `_check`: 404 → `EtcdKeyNotFound`, 400 → `EtcdException: Bad response: 400 Bad Request` | §V-B exceptions |
//! | `_guarded_request`: `resp` assigned only when `_healthy()` | §V-C `UnboundLocalError: local variable ... referenced before assignment` |
//! | `delete_connection`: best-effort close swallowing errors | §V-A reconnection failure (leaked port holds the bind) |
//! | `remove_member`/`register_member` | §V-A "member has already been bootstrapped" |

/// The client library source, registered as importable module `etcd`.
pub const CLIENT_SOURCE: &str = r#"
import urllib
import os
import time
import logging


class EtcdException(Exception):
    pass


class EtcdKeyNotFound(EtcdException):
    pass


class EtcdConnectionFailed(EtcdException):
    pass


class Client:
    def __init__(self, host='127.0.0.1', port=2379, timeout=5.0):
        self._log = logging.getLogger('etcd.client')
        env_host = os.getenv('ETCD_HOST', host)
        env_port = os.getenv('ETCD_PORT', str(port))
        self._base = 'http://' + env_host + ':' + env_port
        self._timeout = timeout
        self._health_timeout = 0.25
        self._conn_id = None

    def _key_path(self, key):
        if not key.startswith('/'):
            key = '/' + key
        return '/v2/keys' + key

    def _healthy(self):
        try:
            probe = urllib.request('GET', self._base + '/health', None, timeout=self._health_timeout)
        except Exception:
            return False
        return probe['status'] == 200

    def _request(self, method, path, body):
        resp = urllib.request(method, self._base + path, body, timeout=self._timeout)
        return resp

    def _guarded_request(self, method, path, body):
        if self._healthy():
            resp = self._request(method, path, body)
        return self._check(resp, path)

    def _check(self, resp, path):
        status = resp['status']
        if status == 404:
            self._log.error('key not found: ' + path)
            raise EtcdKeyNotFound('Key not found: ' + path)
        if status == 400:
            self._log.error('bad request: ' + path)
            raise EtcdException('Bad response: 400 Bad Request')
        if status >= 500:
            self._log.error('server error ' + str(status) + ': ' + path)
            raise EtcdException('Bad response: ' + str(status) + ' ' + resp['data'])
        return resp['data']

    def _parse_value(self, data):
        lines = data.split('\n')
        for line in lines:
            if line.startswith('VALUE '):
                return line[6:]
        return None

    def _parse_keys(self, data):
        keys = []
        lines = data.split('\n')
        for line in lines:
            if line.startswith('KEY ') or line.startswith('DIR '):
                keys.append(line[4:])
        return keys

    def set(self, key, value, ttl=None):
        path = self._key_path(key)
        body = 'value=' + urllib.quote(str(value))
        if ttl is not None:
            body = body + '&ttl=' + str(ttl)
        data = self._guarded_request('PUT', path, body)
        self._log.info('set ' + path)
        return data

    def get(self, key):
        path = self._key_path(key)
        resp = self._request('GET', path, None)
        data = self._check(resp, path)
        value = self._parse_value(data)
        return value

    def ls(self, key):
        path = self._key_path(key)
        resp = self._request('GET', path + '?recursive=true', None)
        data = self._check(resp, path)
        keys = self._parse_keys(data)
        return keys

    def delete(self, key, recursive=False):
        path = self._key_path(key)
        if recursive:
            path = path + '?recursive=true'
        resp = self._request('DELETE', path, None)
        data = self._check(resp, path)
        self._log.info('delete ' + path)
        return data

    def test_and_set(self, key, value, old_value):
        path = self._key_path(key)
        body = 'value=' + urllib.quote(str(value)) + '&prevValue=' + urllib.quote(str(old_value))
        data = self._guarded_request('PUT', path, body)
        return data

    def mkdir(self, key, ttl=None):
        path = self._key_path(key)
        body = 'dir=true'
        if ttl is not None:
            body = body + '&ttl=' + str(ttl)
        data = self._guarded_request('PUT', path, body)
        return data

    def connect(self):
        resp = urllib.request('POST', self._base + '/v2/connection', None, timeout=self._timeout)
        fields = resp['data'].split(' ')
        self._conn_id = fields[1]
        self._log.info('opened connection ' + self._conn_id)
        return self._conn_id

    def delete_connection(self):
        if self._conn_id is not None:
            try:
                resp = urllib.request('DELETE', self._base + '/v2/connection/' + self._conn_id, None, timeout=self._timeout)
            except Exception:
                self._log.warning('failed to close connection ' + self._conn_id)
            self._conn_id = None

    def rotate_connection(self):
        self.delete_connection()
        self.connect()

    def register_member(self):
        resp = urllib.request('PUT', self._base + '/v2/members', None, timeout=self._timeout)
        status = resp['status']
        if status >= 500:
            raise EtcdException('Bad response: ' + str(status) + ' ' + resp['data'])
        self._log.info('member registered')
        return status

    def remove_member(self):
        try:
            resp = urllib.request('DELETE', self._base + '/v2/members', None, timeout=self._timeout)
        except Exception:
            self._log.warning('member removal failed')

    def rejoin_cluster(self):
        self.remove_member()
        self.register_member()

    def restart_server(self):
        self.delete_connection()
        result = os.execute('etcd-restart')
        self.connect()
        self._log.info('server restarted')

    def machines(self):
        resp = urllib.request('GET', self._base + '/v2/machines', None, timeout=self._timeout)
        data = self._check(resp, '/v2/machines')
        return data.split(',')

    def stats(self):
        resp = urllib.request('GET', self._base + '/v2/stats/self', None, timeout=self._timeout)
        data = self._check(resp, '/v2/stats/self')
        return data

    def watch(self, key, wait_index=None):
        path = self._key_path(key) + '?wait=true'
        if wait_index is not None:
            path = path + '&waitIndex=' + str(wait_index)
        resp = urllib.request('GET', self._base + path, None, timeout=self._timeout)
        data = self._check(resp, path)
        value = self._parse_value(data)
        return value

    def leader(self):
        resp = urllib.request('GET', self._base + '/v2/leader', None, timeout=self._timeout)
        data = self._check(resp, '/v2/leader')
        return data

    def update_dir(self, key, ttl):
        path = self._key_path(key)
        body = 'dir=true&existing=true&ttl=' + str(ttl)
        resp = urllib.request('PUT', self._base + path, body, timeout=self._timeout)
        data = self._check(resp, path)
        return data

    def read_config(self, path):
        data = os.read_file(path)
        settings = {}
        lines = data.split('\n')
        for line in lines:
            if '=' in line:
                parts = line.split('=')
                settings[parts[0]] = parts[1]
        return settings

    def save_snapshot(self, path):
        keys = self.ls('/')
        payload = '\n'.join(keys)
        os.write_file(path, payload)
        self._log.info('snapshot saved to ' + path)

    def purge_snapshots(self, path):
        os.write_file(path, '')
        self._log.info('snapshots purged')
"#;

/// Scopes exercised by the basic workload — used as the campaign C
/// plan filter ("the same methods of the second campaign", §V-C).
pub const COVERED_SCOPES: &[&str] = &[
    "Client.__init__",
    "Client._key_path",
    "Client._healthy",
    "Client._request",
    "Client._guarded_request",
    "Client._check",
    "Client._parse_value",
    "Client._parse_keys",
    "Client.set",
    "Client.get",
    "Client.ls",
    "Client.delete",
    "Client.test_and_set",
    "Client.mkdir",
    "Client.connect",
    "Client.delete_connection",
    "Client.rotate_connection",
    "Client.register_member",
    "Client.remove_member",
    "Client.rejoin_cluster",
    "Client.restart_server",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_source_parses() {
        let m = pysrc::parse_module(CLIENT_SOURCE, "etcd").unwrap();
        assert!(m.body.len() >= 4, "imports + exceptions + Client class");
    }

    #[test]
    fn client_class_has_expected_methods() {
        let m = pysrc::parse_module(CLIENT_SOURCE, "etcd").unwrap();
        let mut methods = Vec::new();
        pysrc::visit::walk_blocks(&m, &mut |_, ctx| {
            methods.push(ctx.dotted());
        });
        for required in [
            "Client.set",
            "Client.get",
            "Client.test_and_set",
            "Client.delete_connection",
            "Client.register_member",
            "Client.restart_server",
        ] {
            assert!(
                methods.iter().any(|m| m == required),
                "missing method scope {required}"
            );
        }
    }

    #[test]
    fn covered_scopes_exist_in_source() {
        let m = pysrc::parse_module(CLIENT_SOURCE, "etcd").unwrap();
        let mut scopes = Vec::new();
        pysrc::visit::walk_blocks(&m, &mut |_, ctx| scopes.push(ctx.dotted()));
        for s in COVERED_SCOPES {
            assert!(scopes.iter().any(|x| x == s), "scope {s} not found");
        }
    }
}
