//! Workloads (paper §V: "The workload used deploys the etcd server,
//! and it uploads and queries several key-value pairs of a different
//! kind (e.g., with directories, sub-keys, TTL, etc.) that we derived
//! from Python-etcd's integration tests").
//!
//! A workload module's top level initializes the client (the "client
//! process" start); `run(round)` exercises the target and raises on
//! service failure — via client exceptions or consistency-check
//! assertions (§IV-B).

/// Minimal quickstart workload: one set/get roundtrip.
pub const WORKLOAD_QUICKSTART: &str = r#"
import etcd
import logging

log = logging.getLogger('workload')
client = etcd.Client()


def run(round):
    client.set('/greeting', 'hello')
    value = client.get('/greeting')
    assert value == 'hello', 'greeting roundtrip'
    log.info('quickstart round ' + str(round) + ' ok')
"#;

/// The full integration-test-derived workload used by the campaigns.
///
/// Structure (deliberate ordering, see DESIGN.md):
/// 1. connection rotation + maintenance restart + membership rejoin
///    (the §V-A failure substrate),
/// 2. guarded writes (set/mkdir/test_and_set go through the
///    health-gated request path) with consistency checks,
/// 3. plain reads/deletes late in the round, so §V-C hogs injected in
///    late paths have no guarded call left to starve.
pub const WORKLOAD_BASIC: &str = r#"
import etcd
import logging

log = logging.getLogger('workload')
client = etcd.Client()


def check(cond, label):
    if not cond:
        log.error('consistency check failed: ' + label)
        raise AssertionError('inconsistent value read: ' + label)


def run(round):
    tag = str(round)

    # --- maintenance cycle (connection + membership) ---
    client.rotate_connection()
    client.set('/status/maintenance', 'starting')
    client.restart_server()
    client.rejoin_cluster()

    # --- basic key-value pairs (checked) ---
    client.set('/app/name', 'etcd-demo')
    name = client.get('/app/name')
    check(name == 'etcd-demo', 'app name roundtrip')
    client.set('/app/release', 'r' + tag)
    release = client.get('/app/release')
    check(release == 'r' + tag, 'release roundtrip')
    client.set('/app/owner', 'team-storage')
    client.set('/app/tier', 'backend')

    # --- directories and sub-keys ---
    client.mkdir('/cfg/round' + tag)
    client.set('/cfg/round' + tag + '/alpha', 'a-value')
    client.set('/cfg/round' + tag + '/beta', 'b-value')
    client.set('/cfg/round' + tag + '/gamma/deep', 'nested')
    listing = client.ls('/cfg/round' + tag)
    check(len(listing) >= 4, 'directory listing size')

    # --- keys with TTL (fire-and-forget; they expire on their own) ---
    client.set('/tmp/session' + tag, 'token-abc', 30)
    client.set('/tmp/cache' + tag, 'blob', 60)
    client.set('/tmp/lease' + tag, 'holder', 15)

    # --- compare-and-swap sequences ---
    client.set('/locks/leader', 'node1')
    client.test_and_set('/locks/leader', 'node2', 'node1')
    leader = client.get('/locks/leader')
    check(leader == 'node2', 'cas leader handoff')
    client.set('/metrics/requests', '100')
    client.test_and_set('/metrics/requests', '101', '100')
    counter = client.get('/metrics/requests')
    check(counter == '101', 'cas counter increment')

    # --- unchecked churn (integration tests write many plain pairs) ---
    client.set('/inventory/hosts/web1', '10.0.0.1')
    client.set('/inventory/hosts/web2', '10.0.0.2')
    client.set('/inventory/hosts/db1', '10.0.0.3')
    client.set('/features/flag_a', 'on')
    client.set('/features/flag_b', 'off')

    # --- late plain reads and cleanup (no guarded calls after here) ---
    owner = client.get('/app/owner')
    check(owner == 'team-storage', 'owner roundtrip')
    hosts = client.ls('/inventory/hosts')
    check(len(hosts) >= 3, 'inventory listing')
    client.delete('/cfg/round' + tag, True)
    client.delete('/locks/leader')
    client.delete('/inventory/hosts', True)
    client.delete('/features/flag_a')

    # --- end-of-round membership refresh (second rejoin: a silently
    # skipped member removal now hits an already-bootstrapped member) ---
    client.rejoin_cluster()
    client.set('/status/maintenance', 'done')
    log.info('round ' + tag + ' complete')
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_parse() {
        pysrc::parse_module(WORKLOAD_QUICKSTART, "workload").unwrap();
        pysrc::parse_module(WORKLOAD_BASIC, "workload").unwrap();
    }

    #[test]
    fn basic_workload_has_rich_api_surface() {
        let m = pysrc::parse_module(WORKLOAD_BASIC, "workload").unwrap();
        let mut client_calls = 0;
        for stmt in &m.body {
            count_calls(stmt, &mut client_calls);
        }
        assert!(
            client_calls >= 30,
            "workload should exercise many client API sites, got {client_calls}"
        );
    }

    fn count_calls(stmt: &pysrc::ast::Stmt, n: &mut usize) {
        pysrc::visit::walk_exprs(stmt, &mut |e| {
            if let pysrc::ast::ExprKind::Call { func, .. } = &e.kind {
                if let Some(path) = func.dotted_path() {
                    if path.starts_with("client.") {
                        *n += 1;
                    }
                }
            }
        });
    }
}
