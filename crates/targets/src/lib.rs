//! `targets` — the software-under-injection corpus for the case study
//! (paper §V) and the synthetic corpus generator for the §V-D scaling
//! benchmarks.
//!
//! * [`python_etcd`] — a python-etcd-0.4.5-like client library written
//!   in the mini-Python subset. Its structure mirrors the real
//!   library's failure-relevant anatomy: key normalization via
//!   `key.startswith('/')` (no None check → the §V-B
//!   `AttributeError`), a health-gated request path with a latent
//!   read-before-assign bug (the §V-C `UnboundLocalError`),
//!   best-effort connection teardown (the §V-A port-leak reconnection
//!   failure), and cluster membership management (the §V-A
//!   "member has already been bootstrapped" failure).
//! * [`workloads`] — the workload derived from python-etcd's
//!   integration tests: "deploys the etcd server, and ... uploads and
//!   queries several key-value pairs of a different kind (e.g., with
//!   directories, sub-keys, TTL, etc.)" (§V).
//! * [`synth`] — deterministic generator of large mini-Python corpora
//!   standing in for the OpenStack scan target of §V-D (400 kLoC).

pub mod python_etcd;
pub mod synth;
pub mod workloads;

pub use python_etcd::{CLIENT_SOURCE, COVERED_SCOPES};
pub use synth::{generate_corpus, generate_module};
pub use workloads::{WORKLOAD_BASIC, WORKLOAD_QUICKSTART};
