//! Deterministic synthetic-corpus generator (the §V-D scan target).
//!
//! The paper measures scan throughput on OpenStack (Nova, Neutron,
//! Cinder — ~400 kLoC, 120 DSL patterns, 17 488 injectable locations,
//! ~20 min on an 8-core Xeon). We cannot redistribute OpenStack, so
//! the scaling benchmark scans synthetic modules whose statement mix
//! (assignments, calls, guarded blocks, loops, try/except, classes)
//! is chosen to give the scanner the same kind of work per line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

const SERVICES: &[&str] = &["compute", "network", "volume", "image", "identity"];
const VERBS: &[&str] = &["create", "delete", "update", "attach", "detach", "sync"];
const NOUNS: &[&str] = &["port", "server", "subnet", "snapshot", "flavor", "quota"];

/// Generates one synthetic module of roughly `target_loc` lines.
/// Deterministic in `seed`.
pub fn generate_module(seed: u64, target_loc: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::from("import logging\nimport time\n\nlog = logging.getLogger('svc')\n\n");
    let mut loc = 5usize;
    let mut class_idx = 0usize;
    while loc < target_loc {
        class_idx += 1;
        let service = SERVICES[rng.gen_range(0..SERVICES.len())];
        let _ = writeln!(out, "\nclass {}Manager{}:", capitalize(service), class_idx);
        let _ = writeln!(out, "    def __init__(self, api):");
        let _ = writeln!(out, "        self.api = api");
        let _ = writeln!(out, "        self.retries = {}", rng.gen_range(1..5));
        loc += 4;
        let methods = rng.gen_range(3..8);
        for _ in 0..methods {
            let verb = VERBS[rng.gen_range(0..VERBS.len())];
            let noun = NOUNS[rng.gen_range(0..NOUNS.len())];
            let _ = writeln!(out, "\n    def {verb}_{noun}(self, ident, spec=None):");
            loc += 2;
            loc += emit_body(&mut out, &mut rng, verb, noun);
        }
    }
    out
}

fn emit_body(out: &mut String, rng: &mut StdRng, verb: &str, noun: &str) -> usize {
    let mut loc = 0usize;
    let shape = rng.gen_range(0..5);
    match shape {
        0 => {
            // call sandwich: the MFC-able shape.
            let _ = writeln!(out, "        payload = self.api.prepare(ident)");
            let _ = writeln!(out, "        delete_{noun}(self.api, ident)");
            let _ = writeln!(out, "        log.info('{verb} {noun} done')");
            let _ = writeln!(out, "        return payload");
            loc += 4;
        }
        1 => {
            // guarded early-continue loop: the MIFS-able shape.
            let _ = writeln!(out, "        results = []");
            let _ = writeln!(out, "        for node in self.api.list_nodes():");
            let _ = writeln!(out, "            if node:");
            let _ = writeln!(out, "                log.info('skipping')");
            let _ = writeln!(out, "                continue");
            let _ = writeln!(out, "            results.append(node)");
            let _ = writeln!(out, "        return results");
            loc += 7;
        }
        2 => {
            // external utility call: the WPF-able shape.
            let _ = writeln!(
                out,
                "        utils.execute('iptables', '--table={noun}', ident)"
            );
            let _ = writeln!(out, "        status = self.api.status(ident)");
            let _ = writeln!(out, "        return status");
            loc += 3;
        }
        3 => {
            // retry loop with try/except.
            let _ = writeln!(out, "        attempts = 0");
            let _ = writeln!(out, "        while attempts < self.retries:");
            let _ = writeln!(out, "            attempts = attempts + 1");
            let _ = writeln!(out, "            try:");
            let _ = writeln!(out, "                reply = self.api.{verb}(ident, spec)");
            let _ = writeln!(out, "                return reply");
            let _ = writeln!(out, "            except Exception:");
            let _ = writeln!(out, "                time.sleep(0.1)");
            let _ = writeln!(out, "        raise RuntimeError('{verb} {noun} failed')");
            loc += 9;
        }
        _ => {
            // dict assembly + conditional call.
            let _ = writeln!(out, "        opts = {{'kind': '{noun}'}}");
            let _ = writeln!(out, "        timeout = {}", rng.gen_range(5..60));
            let _ = writeln!(out, "        if spec is not None and timeout > 10:");
            let _ = writeln!(out, "            opts['spec'] = spec");
            let _ = writeln!(out, "        reply = self.api.submit(ident, opts)");
            let _ = writeln!(out, "        return reply");
            loc += 6;
        }
    }
    loc
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Generates a corpus of modules totalling roughly `total_loc` lines,
/// ~2000 lines per module (OpenStack-file-sized).
pub fn generate_corpus(seed: u64, total_loc: usize) -> Vec<(String, String)> {
    let per_module = 2000usize;
    let count = total_loc.div_ceil(per_module).max(1);
    (0..count)
        .map(|i| {
            (
                format!("svc_module_{i:04}"),
                generate_module(seed.wrapping_add(i as u64), per_module.min(total_loc)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_modules_parse() {
        for seed in [0, 1, 42] {
            let src = generate_module(seed, 500);
            pysrc::parse_module(&src, "synth").unwrap_or_else(|e| {
                panic!("seed {seed} produced unparsable code: {e}\n{src}")
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_module(7, 300), generate_module(7, 300));
        assert_ne!(generate_module(7, 300), generate_module(8, 300));
    }

    #[test]
    fn corpus_generation_is_byte_deterministic() {
        // The whole corpus — module names, order, and every source byte
        // — must be a pure function of (seed, total_loc): matrix seeds
        // and cross-node report identity both build on this.
        let a = generate_corpus(17, 5_000);
        let b = generate_corpus(17, 5_000);
        assert_eq!(a, b, "same seed must reproduce the corpus byte-for-byte");
        let c = generate_corpus(18, 5_000);
        assert_ne!(a, c, "different seed must perturb the corpus");
        // Names stay aligned even when the content diverges.
        let names = |corpus: &[(String, String)]| -> Vec<String> {
            corpus.iter().map(|(n, _)| n.clone()).collect()
        };
        assert_eq!(names(&a), names(&c));
    }

    #[test]
    fn corpus_reaches_target_size() {
        let corpus = generate_corpus(0, 10_000);
        let total: usize = corpus.iter().map(|(_, s)| s.lines().count()).sum();
        assert!(total >= 9_000, "corpus too small: {total}");
        assert!(corpus.len() >= 5);
    }

    #[test]
    fn corpus_contains_injectable_shapes() {
        let src = generate_module(3, 2000);
        assert!(src.contains("delete_"), "MFC-able calls");
        assert!(src.contains("continue"), "MIFS-able guards");
        assert!(src.contains("utils.execute"), "WPF-able utility calls");
    }
}
