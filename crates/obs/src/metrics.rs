//! Typed metrics: `Counter`, `Gauge`, and fixed-bucket `Histogram`
//! handles backed by a [`Registry`], rendered in Prometheus exposition
//! format.
//!
//! Handles are cheap `Arc` clones detached from the registry lock:
//! `inc()`/`observe()` are a few atomic ops, never a mutex. The
//! registry lock is taken only at registration and render time.
//! Registration is idempotent by `(name, labels)` — asking for the
//! same instrument twice returns the same handle; asking for the same
//! name with a different *kind* (or different histogram buckets) is a
//! programmer error and panics.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default buckets for request/operation latencies: 500 µs .. 10 s.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Wider buckets for queue waits and other "could be minutes" delays:
/// 1 ms .. 10 min.
pub const WAIT_BUCKETS: &[f64] = &[0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0, 30.0, 120.0, 600.0];

type Labels = Vec<(String, String)>;

fn to_labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Lock-free f64 accumulation over an `AtomicU64` bit pattern.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + v).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

struct CounterCore {
    labels: Labels,
    value: AtomicU64,
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// Creates a counter not yet attached to any registry (attach with
    /// [`Registry::register_counter`]).
    pub fn detached() -> Counter {
        Counter {
            core: Arc::new(CounterCore {
                labels: Vec::new(),
                value: AtomicU64::new(0),
            }),
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.core.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

struct GaugeCore {
    labels: Labels,
    value: AtomicU64,
}

/// A gauge holding one non-negative integer value.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
}

impl Gauge {
    /// Creates a gauge not yet attached to any registry.
    pub fn detached() -> Gauge {
        Gauge {
            core: Arc::new(GaugeCore {
                labels: Vec::new(),
                value: AtomicU64::new(0),
            }),
        }
    }

    pub fn set(&self, v: u64) {
        self.core.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.core.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: u64) {
        self.core.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    labels: Labels,
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; rendered cumulatively.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A fixed-bucket latency histogram (seconds).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Creates a histogram not yet attached to any registry (attach
    /// with [`Registry::register_histogram`]).
    pub fn detached(bounds: &[f64]) -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore {
                labels: Vec::new(),
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation (in seconds for latency histograms).
    pub fn observe(&self, v: f64) {
        if let Some(i) = self.core.bounds.iter().position(|b| v <= *b) {
            self.core.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.core.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.core.sum_bits, v);
    }

    /// Records an elapsed [`Duration`].
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

enum Instrument {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }

    fn labels(&self) -> &Labels {
        match self {
            Instrument::Counter(c) => &c.labels,
            Instrument::Gauge(g) => &g.labels,
            Instrument::Histogram(h) => &h.labels,
        }
    }
}

struct Family {
    name: String,
    help: String,
    children: Vec<Instrument>,
}

/// A collection of metric families rendered together on `/metrics`.
///
/// Families render in registration order; every family gets exactly
/// one `# HELP` and one `# TYPE` line, and its samples are contiguous
/// — the exposition invariants [`validate_exposition`] checks.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .families
            .lock()
            .unwrap()
            .iter()
            .map(|fam| fam.name.clone())
            .collect();
        f.debug_struct("Registry").field("families", &names).finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Create-or-get an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Create-or-get a counter with the given label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = to_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "counter");
        for child in &family.children {
            if let Instrument::Counter(core) = child {
                if core.labels == labels {
                    return Counter { core: core.clone() };
                }
            }
        }
        let core = Arc::new(CounterCore {
            labels,
            value: AtomicU64::new(0),
        });
        family.children.push(Instrument::Counter(core.clone()));
        Counter { core }
    }

    /// Create-or-get an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Create-or-get a gauge with the given label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = to_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "gauge");
        for child in &family.children {
            if let Instrument::Gauge(core) = child {
                if core.labels == labels {
                    return Gauge { core: core.clone() };
                }
            }
        }
        let core = Arc::new(GaugeCore {
            labels,
            value: AtomicU64::new(0),
        });
        family.children.push(Instrument::Gauge(core.clone()));
        Gauge { core }
    }

    /// Create-or-get an unlabeled histogram with the given bucket
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if the family exists with different bounds or kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Create-or-get a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let labels = to_labels(labels);
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "histogram");
        for child in &family.children {
            if let Instrument::Histogram(core) = child {
                if core.labels == labels {
                    assert_eq!(
                        core.bounds, bounds,
                        "histogram {name} re-registered with different buckets"
                    );
                    return Histogram { core: core.clone() };
                }
            }
        }
        if let Some(Instrument::Histogram(first)) = family.children.first() {
            assert_eq!(
                first.bounds, bounds,
                "histogram {name} children must share bucket bounds"
            );
        }
        let core = Arc::new(HistogramCore {
            labels,
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        });
        family.children.push(Instrument::Histogram(core.clone()));
        Histogram { core }
    }

    /// Attaches a pre-created detached counter under `name`.
    /// Idempotent for the same handle; panics on a conflicting one.
    pub fn register_counter(&self, name: &str, help: &str, counter: &Counter) {
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "counter");
        Self::attach(family, name, Instrument::Counter(counter.core.clone()), |c| {
            matches!(c, Instrument::Counter(core) if Arc::ptr_eq(core, &counter.core))
        });
    }

    /// Attaches a pre-created detached gauge under `name`.
    pub fn register_gauge(&self, name: &str, help: &str, gauge: &Gauge) {
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "gauge");
        Self::attach(family, name, Instrument::Gauge(gauge.core.clone()), |c| {
            matches!(c, Instrument::Gauge(core) if Arc::ptr_eq(core, &gauge.core))
        });
    }

    /// Attaches a pre-created detached histogram under `name`.
    pub fn register_histogram(&self, name: &str, help: &str, histogram: &Histogram) {
        let mut families = self.families.lock().unwrap();
        let family = Self::family_mut(&mut families, name, help, "histogram");
        Self::attach(
            family,
            name,
            Instrument::Histogram(histogram.core.clone()),
            |c| matches!(c, Instrument::Histogram(core) if Arc::ptr_eq(core, &histogram.core)),
        );
    }

    fn attach(
        family: &mut Family,
        name: &str,
        instrument: Instrument,
        is_same: impl Fn(&Instrument) -> bool,
    ) {
        if family.children.iter().any(is_same) {
            return; // same handle registered twice
        }
        assert!(
            !family
                .children
                .iter()
                .any(|c| c.labels() == instrument.labels()),
            "metric {name}: duplicate registration with identical labels"
        );
        family.children.push(instrument);
    }

    fn family_mut<'a>(
        families: &'a mut Vec<Family>,
        name: &str,
        help: &str,
        kind: &'static str,
    ) -> &'a mut Family {
        if let Some(i) = families.iter().position(|f| f.name == name) {
            let existing = families[i]
                .children
                .first()
                .map(|c| c.kind())
                .unwrap_or(kind);
            assert_eq!(
                existing, kind,
                "metric {name} registered as {existing}, requested as {kind}"
            );
            return &mut families[i];
        }
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            children: Vec::new(),
        });
        families.last_mut().unwrap()
    }

    /// Renders every family in Prometheus exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            let kind = match family.children.first() {
                Some(c) => c.kind(),
                None => continue,
            };
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
            for child in &family.children {
                match child {
                    Instrument::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&c.labels),
                            c.value.load(Ordering::Relaxed)
                        );
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&g.labels),
                            g.value.load(Ordering::Relaxed)
                        );
                    }
                    Instrument::Histogram(h) => render_histogram(&mut out, &family.name, h),
                }
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramCore) {
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.buckets[i].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block_with(&h.labels, "le", &fmt_f64(*bound)),
        );
    }
    // `+Inf` equals `_count` by definition; using the count cell keeps
    // the two consistent even mid-observation.
    let count = h.count.load(Ordering::Relaxed);
    let _ = writeln!(
        out,
        "{name}_bucket{} {count}",
        label_block_with(&h.labels, "le", "+Inf"),
    );
    let sum = f64::from_bits(h.sum_bits.load(Ordering::Relaxed));
    let _ = writeln!(out, "{name}_sum{} {}", label_block(&h.labels), fmt_f64(sum));
    let _ = writeln!(out, "{name}_count{} {count}", label_block(&h.labels));
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn label_block_with(labels: &Labels, extra_key: &str, extra_value: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    body.push(format!("{extra_key}=\"{extra_value}\""));
    format!("{{{}}}", body.join(","))
}

/// Checks `text` against the Prometheus exposition invariants this
/// workspace relies on: every sample's family has a `# TYPE` line
/// *before* its first sample, no family is declared twice, family
/// sample blocks are contiguous, label blocks are well-formed, and
/// every value parses as a number. Returns the family names in
/// declaration order.
pub fn validate_exposition(text: &str) -> Result<Vec<String>, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut sampled: HashSet<String> = HashSet::new();
    let mut closed: HashSet<String> = HashSet::new();
    let mut current: Option<String> = None;

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or_default();
            if name.is_empty() {
                return Err(format!("line {lineno}: HELP without a metric name"));
            }
            if !helped.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            if sampled.contains(name) {
                return Err(format!("line {lineno}: HELP for {name} after its samples"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default();
            if name.is_empty() || kind.is_empty() {
                return Err(format!("line {lineno}: malformed TYPE line"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown metric type {kind}"));
            }
            if sampled.contains(&name) {
                return Err(format!("line {lineno}: TYPE for {name} after its samples"));
            }
            if types.insert(name.clone(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate family {name}"));
            }
            order.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // Sample line: `name value` or `name{labels} value`.
        let (name, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => return Err(format!("line {lineno}: sample without a value")),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let value_str = if let Some(labels) = rest.strip_prefix('{') {
            let close = find_label_close(labels)
                .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
            validate_labels(&labels[..close])
                .map_err(|e| format!("line {lineno}: bad labels: {e}"))?;
            labels[close + 1..].trim()
        } else {
            rest.trim()
        };
        let value = value_str.split_whitespace().next().unwrap_or_default();
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable value {value:?}"));
        }

        // Resolve the sample to its family: exact name first, then
        // histogram series suffixes.
        let family = if types.contains_key(name) {
            name.to_string()
        } else {
            let stripped = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix))
                .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"));
            match stripped {
                Some(base) => base.to_string(),
                None => return Err(format!("line {lineno}: sample {name} has no TYPE")),
            }
        };
        if current.as_deref() != Some(family.as_str()) {
            if closed.contains(&family) {
                return Err(format!(
                    "line {lineno}: family {family} samples are not contiguous"
                ));
            }
            if let Some(prev) = current.take() {
                closed.insert(prev);
            }
            current = Some(family.clone());
        }
        sampled.insert(family);
    }
    Ok(order)
}

/// Index of the `}` that closes the label block (quote-aware).
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(body: &str) -> Result<(), String> {
    if body.is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes, then check each `key="value"`.
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return Err("unterminated quote".to_string());
    }
    parts.push(&body[start..]);
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("label {part:?} missing '='"))?;
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {key:?}"));
        }
        if !value.starts_with('"') || !value.ends_with('"') || value.len() < 2 {
            return Err(format!("label value {value:?} not quoted"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_with_help_and_type() {
        let registry = Registry::new();
        let c = registry.counter("requests_total", "Requests served.");
        c.add(3);
        let g = registry.gauge("queue_depth", "Jobs waiting.");
        g.set(7);
        let out = registry.render();
        assert!(out.contains("# HELP requests_total Requests served."));
        assert!(out.contains("# TYPE requests_total counter"));
        assert!(out.contains("requests_total 3"));
        assert!(out.contains("# TYPE queue_depth gauge"));
        assert!(out.contains("queue_depth 7"));
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn handles_are_idempotent_by_name_and_labels() {
        let registry = Registry::new();
        let a = registry.counter_with("hits", "h", &[("route", "/x")]);
        let b = registry.counter_with("hits", "h", &[("route", "/x")]);
        let other = registry.counter_with("hits", "h", &[("route", "/y")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.value(), 2, "same labels → same underlying cell");
        assert_eq!(other.value(), 5);
        let out = registry.render();
        assert!(out.contains("hits{route=\"/x\"} 2"));
        assert!(out.contains("hits{route=\"/y\"} 5"));
        assert_eq!(out.matches("# TYPE hits counter").count(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("thing", "c");
        registry.gauge("thing", "g");
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let registry = Registry::new();
        let h = registry.histogram("op_seconds", "Op latency.", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let out = registry.render();
        assert!(out.contains("# TYPE op_seconds histogram"));
        assert!(out.contains("op_seconds_bucket{le=\"0.1\"} 1"));
        assert!(out.contains("op_seconds_bucket{le=\"1\"} 2"));
        assert!(out.contains("op_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("op_seconds_count 3"));
        let sum_line = out
            .lines()
            .find(|l| l.starts_with("op_seconds_sum"))
            .unwrap();
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((sum - 5.55).abs() < 1e-9, "{sum_line}");
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn detached_instruments_register_later() {
        let h = Histogram::detached(&[0.5]);
        h.observe(0.1);
        let registry = Registry::new();
        registry.register_histogram("pre_seconds", "Pre-created.", &h);
        registry.register_histogram("pre_seconds", "Pre-created.", &h); // idempotent
        h.observe(0.2);
        let out = registry.render();
        assert!(out.contains("pre_seconds_count 2"), "{out}");
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("odd", "o", &[("k", "a\"b\\c\nd")])
            .inc();
        let out = registry.render();
        assert!(out.contains(r#"odd{k="a\"b\\c\nd"} 1"#), "{out}");
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn validator_rejects_type_after_samples_and_duplicates() {
        assert!(validate_exposition("x 1\n# TYPE x counter\n").is_err());
        assert!(
            validate_exposition("# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n").is_err(),
            "duplicate family must be rejected"
        );
        assert!(validate_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(
            validate_exposition(
                "# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n"
            )
            .is_err(),
            "interleaved family samples must be rejected"
        );
        let families =
            validate_exposition("# TYPE a counter\na 1\n# TYPE b gauge\nb{x=\"y\"} 2\n").unwrap();
        assert_eq!(families, vec!["a", "b"]);
    }

    #[test]
    fn validator_accepts_histogram_series() {
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3.5\nh_count 2\n";
        validate_exposition(text).unwrap();
        // But a bare histogram-suffixed sample with no family is rejected.
        assert!(validate_exposition("orphan_bucket{le=\"+Inf\"} 1\n").is_err());
    }
}
