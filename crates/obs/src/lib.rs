//! `obs` — the telemetry spine of the ProFIPy reproduction.
//!
//! Two std-only subsystems:
//!
//! * [`metrics`] — typed [`Counter`] / [`Gauge`] / [`Histogram`] handles
//!   registered in a [`Registry`] and rendered in Prometheus exposition
//!   format (`# HELP`/`# TYPE`, `_bucket`/`_sum`/`_count` series,
//!   label escaping). Registries are instantiable so every server gets
//!   an isolated one; [`global()`] serves processes without a server
//!   (e.g. the worker agent).
//! * [`log`] — a leveled, structured JSONL event log behind the
//!   [`log!`] macro, writing to stderr or a file
//!   (`PROFIPY_LOG`/`PROFIPY_LOG_LEVEL`, or `--log-file`).
//!
//! The paper's premise (§IV-D) is that a fault-injection *service*
//! must let operators see where campaign wall-time went; this crate
//! provides the primitives every layer (httpd, campaign engine,
//! cluster) instruments itself with.

pub mod log;
pub mod metrics;

pub use log::Level;
pub use metrics::{
    validate_exposition, Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS, WAIT_BUCKETS,
};

use std::sync::OnceLock;

/// The process-global registry, for instruments that live outside any
/// particular server (e.g. the worker agent's upload-failure counter).
/// Servers hold their own [`Registry`] so tests booting many servers
/// in one process stay isolated.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
