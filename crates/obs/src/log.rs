//! Structured, leveled JSONL event log.
//!
//! Every event is one JSON object per line — `{"ts_ms":…,"level":…,
//! "event":…,…fields}` — written to stderr (default) or a file.
//! Configure via environment (`PROFIPY_LOG=stderr|<path>`,
//! `PROFIPY_LOG_LEVEL=debug|info|warn|error|off`) or programmatically
//! ([`set_file`], [`set_level`]). Emission is gated on an atomic level
//! check, so disabled events cost one load.
//!
//! Use through the [`crate::log!`] macro:
//!
//! ```
//! obs::log!(obs::Level::Info, "worker_registered", "worker" => "w1", "parallelism" => 2u64);
//! ```

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity. Events below the configured level are dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<u8> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug as u8),
            "info" => Some(Level::Info as u8),
            "warn" | "warning" => Some(Level::Warn as u8),
            "error" => Some(Level::Error as u8),
            "off" | "none" => Some(LEVEL_OFF),
            _ => None,
        }
    }
}

const LEVEL_OFF: u8 = 4;

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static ENV_INIT: Once = Once::new();

/// `None` = stderr; `Some(file)` = append to that file.
fn sink() -> &'static Mutex<Option<std::fs::File>> {
    static SINK: OnceLock<Mutex<Option<std::fs::File>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Applies `PROFIPY_LOG` / `PROFIPY_LOG_LEVEL` (first call wins; later
/// calls are no-ops so explicit [`set_level`]/[`set_file`] stick).
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(level) = std::env::var("PROFIPY_LOG_LEVEL") {
            if let Some(v) = Level::parse(&level) {
                LEVEL.store(v, Ordering::Relaxed);
            }
        }
        if let Ok(dest) = std::env::var("PROFIPY_LOG") {
            if !dest.is_empty() && dest != "stderr" {
                let _ = set_file(&dest);
            }
        }
    });
}

/// True if events at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    init_from_env();
    level as u8 >= LEVEL.load(Ordering::Relaxed)
}

/// Sets the minimum emitted level.
pub fn set_level(level: Level) {
    init_from_env(); // consume env first so it cannot override us later
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Disables the event log entirely.
pub fn disable() {
    init_from_env();
    LEVEL.store(LEVEL_OFF, Ordering::Relaxed);
}

/// Appends events to `path` instead of stderr.
pub fn set_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *sink().lock().unwrap() = Some(file);
    Ok(())
}

/// Reverts the sink to stderr.
pub fn set_stderr() {
    *sink().lock().unwrap() = None;
}

/// A typed field value; `From` impls cover the common primitives so
/// `log!` callers pass values directly.
#[derive(Clone, Debug)]
pub enum FieldValue {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// One in-flight event, built field by field then [`emit`](Event::emit)ted.
pub struct Event {
    buf: String,
}

impl Event {
    pub fn new(level: Level, event: &str) -> Event {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"ts_ms\":");
        buf.push_str(&ts_ms.to_string());
        buf.push_str(",\"level\":\"");
        buf.push_str(level.as_str());
        buf.push_str("\",\"event\":\"");
        push_escaped(&mut buf, event);
        buf.push('"');
        Event { buf }
    }

    pub fn field(mut self, key: &str, value: impl Into<FieldValue>) -> Event {
        self.buf.push_str(",\"");
        push_escaped(&mut self.buf, key);
        self.buf.push_str("\":");
        match value.into() {
            FieldValue::Str(s) => {
                self.buf.push('"');
                push_escaped(&mut self.buf, &s);
                self.buf.push('"');
            }
            FieldValue::U64(v) => self.buf.push_str(&v.to_string()),
            FieldValue::I64(v) => self.buf.push_str(&v.to_string()),
            FieldValue::F64(v) => {
                if v.is_finite() {
                    self.buf.push_str(&format!("{v}"));
                } else {
                    self.buf.push_str("null");
                }
            }
            FieldValue::Bool(v) => self.buf.push_str(if v { "true" } else { "false" }),
        }
        self
    }

    /// Writes the event as one line to the configured sink. Write
    /// errors are swallowed: telemetry must never take the service
    /// down.
    pub fn emit(self) {
        let line = self.into_line();
        let mut guard = sink().lock().unwrap();
        match guard.as_mut() {
            Some(file) => {
                let _ = writeln!(file, "{line}");
            }
            None => {
                let _ = writeln!(std::io::stderr().lock(), "{line}");
            }
        }
    }

    fn into_line(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn push_escaped(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Emits a structured event if `level` is enabled:
///
/// ```
/// obs::log!(obs::Level::Warn, "lease_expired", "worker" => "w1", "requeued" => 4u64);
/// ```
#[macro_export]
macro_rules! log {
    ($level:expr, $event:expr $(, $key:literal => $value:expr)* $(,)?) => {{
        let __level = $level;
        if $crate::log::enabled(__level) {
            #[allow(unused_mut)]
            let mut __event = $crate::log::Event::new(__level, $event);
            $( __event = __event.field($key, $value); )*
            __event.emit();
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_as_one_json_object_per_line() {
        let line = Event::new(Level::Warn, "upload_retry")
            .field("worker", "w\"1\"")
            .field("attempt", 3u64)
            .field("delta", -2i64)
            .field("ratio", 0.5f64)
            .field("fatal", false)
            .into_line();
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"event\":\"upload_retry\""));
        assert!(line.contains("\"worker\":\"w\\\"1\\\"\""));
        assert!(line.contains("\"attempt\":3"));
        assert!(line.contains("\"delta\":-2"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"fatal\":false"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'), "newlines must be escaped");
    }

    #[test]
    fn control_characters_are_escaped() {
        let line = Event::new(Level::Error, "boom")
            .field("detail", "a\nb\tc\u{1}")
            .into_line();
        assert!(line.contains("a\\nb\\tc\\u0001"), "{line}");
    }

    #[test]
    fn file_sink_receives_events_and_level_gates() {
        let dir = std::env::temp_dir().join(format!("obs-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        set_file(&path).unwrap();
        set_level(Level::Warn);
        crate::log!(Level::Info, "dropped_by_level");
        crate::log!(Level::Error, "kept", "n" => 1u64);
        set_stderr();
        set_level(Level::Info);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"kept\""), "{text}");
        assert!(!text.contains("dropped_by_level"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
