//! DSL parsing: `change { ... } into { ... }` → [`BugSpec`] meta-model.

use crate::glob::glob_match;
use pysrc::ast::Stmt;
use std::collections::HashMap;
use std::fmt;

/// Prefix of reserved placeholder identifiers in the meta-model ASTs.
pub const PLACEHOLDER_PREFIX: &str = "__dsl_";
/// The argument-list wildcard placeholder (`...`).
pub const ELLIPSIS: &str = "__dsl_ellipsis__";

/// Error produced while parsing a bug specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DslError {
    /// Human-readable description.
    pub message: String,
}

impl DslError {
    fn new(message: impl Into<String>) -> DslError {
        DslError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DSL error: {}", self.message)
    }
}

impl std::error::Error for DslError {}

impl From<pysrc::ParseError> for DslError {
    fn from(e: pysrc::ParseError) -> Self {
        DslError::new(format!("embedded Python fragment: {e}"))
    }
}

/// What a directive stands for.
#[derive(Clone, Debug, PartialEq)]
pub enum DirectiveKind {
    /// `$BLOCK{stmts=min,max}` — a run of statements.
    Block {
        /// Minimum statements.
        min: usize,
        /// Maximum statements (`None` = unbounded, `*`).
        max: Option<usize>,
    },
    /// `$CALL{name=glob}` — a function/method call.
    Call {
        /// Glob on the dotted callee path.
        name: Option<String>,
    },
    /// `$EXPR{var=glob}` — any expression (optionally referencing a
    /// variable matching the glob).
    Expr {
        /// Glob on a referenced variable name.
        var: Option<String>,
    },
    /// `$STRING{val=glob}` — a string literal.
    Str {
        /// Glob on the literal value.
        val: Option<String>,
    },
    /// `$NUM` — a numeric literal.
    Num,
    /// `$VAR{name=glob}` — a bare name.
    Var {
        /// Glob on the name.
        name: Option<String>,
    },
    /// `$CORRUPT(x)` — replacement-side value corruption.
    Corrupt,
    /// `$HOG` — replacement-side CPU hog.
    Hog,
    /// `$TIMEOUT{secs=x}` — replacement-side artificial delay.
    Timeout {
        /// Seconds to delay.
        secs: f64,
    },
}

/// A parsed directive occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct Directive {
    /// What the directive matches/produces.
    pub kind: DirectiveKind,
    /// Tag for reuse in the replacement (`#c` or `{tag=...}`).
    pub tag: Option<String>,
}

/// A compiled bug specification (the paper's meta-model).
#[derive(Clone, Debug)]
pub struct BugSpec {
    /// Specification name (used in plans and reports).
    pub name: String,
    /// The original DSL source.
    pub source: String,
    /// Pattern statements (mini-Python AST with placeholders).
    pub pattern: Vec<Stmt>,
    /// Replacement statements (mini-Python AST with placeholders).
    pub replacement: Vec<Stmt>,
    /// Placeholder name → directive descriptor.
    pub directives: HashMap<String, Directive>,
}

impl BugSpec {
    /// Looks up the directive behind a placeholder identifier, if the
    /// name is a placeholder of this spec.
    pub fn directive(&self, ident: &str) -> Option<&Directive> {
        self.directives.get(ident)
    }

    /// True if `ident` is the ellipsis wildcard.
    pub fn is_ellipsis(ident: &str) -> bool {
        ident == ELLIPSIS
    }
}

/// Parses a bug specification.
///
/// # Errors
///
/// [`DslError`] for malformed `change`/`into` structure, unknown
/// directives, bad attributes, or unparsable embedded Python.
pub fn parse_spec(text: &str, name: &str) -> Result<BugSpec, DslError> {
    let (pattern_text, replacement_text) = split_change_into(text)?;
    let mut pre = Preprocessor::default();
    let pattern_py = pre.rewrite(&pattern_text)?;
    let replacement_py = pre.rewrite(&replacement_text)?;
    let pattern = parse_fragment(&pattern_py, &format!("{name}:pattern"))?;
    let replacement = parse_fragment(&replacement_py, &format!("{name}:replacement"))?;
    validate(&pattern, &replacement, &pre.directives)?;
    Ok(BugSpec {
        name: name.to_string(),
        source: text.to_string(),
        pattern,
        replacement,
        directives: pre.directives,
    })
}

fn parse_fragment(py: &str, label: &str) -> Result<Vec<Stmt>, DslError> {
    let module = pysrc::parse_module(py, label)?;
    Ok(module.body)
}

/// Splits `change { A } into { B }` with brace-nesting awareness.
fn split_change_into(text: &str) -> Result<(String, String), DslError> {
    let trimmed = text.trim();
    let rest = trimmed
        .strip_prefix("change")
        .ok_or_else(|| DslError::new("specification must start with `change {`"))?
        .trim_start();
    let (pattern, rest) = read_braced(rest)?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("into")
        .ok_or_else(|| DslError::new("expected `into {` after the pattern block"))?
        .trim_start();
    let (replacement, tail) = read_braced(rest)?;
    if !tail.trim().is_empty() {
        return Err(DslError::new(format!(
            "unexpected trailing text after `into` block: {:?}",
            tail.trim()
        )));
    }
    Ok((dedent(&pattern), dedent(&replacement)))
}

/// Reads a `{ ... }` group (nesting-aware, string-literal-aware),
/// returning (inner text, remainder).
fn read_braced(s: &str) -> Result<(String, String), DslError> {
    let chars: Vec<char> = s.chars().collect();
    if chars.first() != Some(&'{') {
        return Err(DslError::new("expected `{`"));
    }
    let mut depth = 0usize;
    let mut in_str: Option<char> = None;
    for (i, &c) in chars.iter().enumerate() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                '\'' | '"' => in_str = Some(c),
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner: String = chars[1..i].iter().collect();
                        let rest: String = chars[i + 1..].iter().collect();
                        return Ok((inner, rest));
                    }
                }
                _ => {}
            },
        }
    }
    Err(DslError::new("unbalanced braces in specification"))
}

/// Strips the common leading indentation of non-empty lines.
fn dedent(s: &str) -> String {
    let lines: Vec<&str> = s.lines().collect();
    let common = lines
        .iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.len() - l.trim_start().len())
        .min()
        .unwrap_or(0);
    let mut out = String::new();
    for line in lines {
        if line.trim().is_empty() {
            out.push('\n');
        } else {
            out.push_str(&line[common.min(line.len())..]);
            out.push('\n');
        }
    }
    out
}

/// Rewrites DSL directives into placeholder identifiers and records
/// their descriptors. Shared between pattern and replacement so tags
/// refer to one table.
#[derive(Default)]
struct Preprocessor {
    directives: HashMap<String, Directive>,
    counter: usize,
}

impl Preprocessor {
    fn fresh(&mut self, d: Directive) -> String {
        let name = format!("{PLACEHOLDER_PREFIX}{}", self.counter);
        self.counter += 1;
        self.directives.insert(name.clone(), d);
        name
    }

    fn rewrite(&mut self, text: &str) -> Result<String, DslError> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        let mut in_str: Option<char> = None;
        while i < chars.len() {
            let c = chars[i];
            if let Some(q) = in_str {
                out.push(c);
                if c == q {
                    in_str = None;
                }
                i += 1;
                continue;
            }
            match c {
                '\'' | '"' => {
                    in_str = Some(c);
                    out.push(c);
                    i += 1;
                }
                '.' if chars.get(i + 1) == Some(&'.') && chars.get(i + 2) == Some(&'.') => {
                    out.push_str(ELLIPSIS);
                    i += 3;
                }
                '$' => {
                    let (placeholder, consumed) = self.read_directive(&chars[i..])?;
                    out.push_str(&placeholder);
                    i += consumed;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    /// Parses `$NAME[#tag][{attrs}]` starting at `chars[0] == '$'`.
    /// Returns the placeholder text and how many chars were consumed.
    fn read_directive(&mut self, chars: &[char]) -> Result<(String, usize), DslError> {
        let mut i = 1;
        let mut name = String::new();
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            name.push(chars[i]);
            i += 1;
        }
        if name.is_empty() {
            return Err(DslError::new("`$` must be followed by a directive name"));
        }
        let mut tag = None;
        if chars.get(i) == Some(&'#') {
            i += 1;
            let mut t = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                t.push(chars[i]);
                i += 1;
            }
            if t.is_empty() {
                return Err(DslError::new("`#` must be followed by a tag name"));
            }
            tag = Some(t);
        }
        let mut attrs: HashMap<String, String> = HashMap::new();
        if chars.get(i) == Some(&'{') {
            let rest: String = chars[i..].iter().collect();
            let (inner, _) = read_braced(&rest)?;
            // Count consumed chars: inner + the two braces.
            i += inner.chars().count() + 2;
            for part in inner.split(';') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (k, v) = part.split_once('=').ok_or_else(|| {
                    DslError::new(format!("attribute `{part}` must have the form key=value"))
                })?;
                attrs.insert(k.trim().to_string(), v.trim().to_string());
            }
        }
        if tag.is_none() {
            tag = attrs.get("tag").cloned();
        }
        let kind = match name.as_str() {
            "BLOCK" => {
                let (min, max) = match attrs.get("stmts") {
                    Some(spec) => parse_stmt_range(spec)?,
                    None => (1, None),
                };
                DirectiveKind::Block { min, max }
            }
            "CALL" => DirectiveKind::Call {
                name: attrs.get("name").cloned(),
            },
            "EXPR" => DirectiveKind::Expr {
                var: attrs.get("var").cloned(),
            },
            "STRING" => DirectiveKind::Str {
                val: attrs.get("val").cloned(),
            },
            "NUM" => DirectiveKind::Num,
            "VAR" => DirectiveKind::Var {
                name: attrs.get("name").cloned(),
            },
            "CORRUPT" => DirectiveKind::Corrupt,
            "HOG" => DirectiveKind::Hog,
            "TIMEOUT" => DirectiveKind::Timeout {
                secs: attrs
                    .get("secs")
                    .map(|s| {
                        s.parse::<f64>()
                            .map_err(|_| DslError::new(format!("bad secs value `{s}`")))
                    })
                    .transpose()?
                    .unwrap_or(1.0),
            },
            other => {
                return Err(DslError::new(format!("unknown directive `${other}`")));
            }
        };
        let placeholder = self.fresh(Directive { kind, tag });
        Ok((placeholder, i))
    }
}

fn parse_stmt_range(spec: &str) -> Result<(usize, Option<usize>), DslError> {
    let bad = || DslError::new(format!("bad stmts range `{spec}` (expected `min,max` or `min,*`)"));
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let min = lo.trim().parse::<usize>().map_err(|_| bad())?;
            let max = match hi.trim() {
                "*" => None,
                n => Some(n.parse::<usize>().map_err(|_| bad())?),
            };
            if let Some(m) = max {
                if m < min {
                    return Err(bad());
                }
            }
            Ok((min, max))
        }
        None => {
            let n = spec.trim().parse::<usize>().map_err(|_| bad())?;
            Ok((n, Some(n)))
        }
    }
}

/// Sanity checks: replacement tags must be bound by the pattern;
/// replacement-only directives must not appear in the pattern.
fn validate(
    pattern: &[Stmt],
    replacement: &[Stmt],
    directives: &HashMap<String, Directive>,
) -> Result<(), DslError> {
    let pattern_tags = collect_tags(pattern, directives);
    for ident in collect_placeholders(replacement) {
        let Some(d) = directives.get(&ident) else { continue };
        match &d.kind {
            DirectiveKind::Corrupt | DirectiveKind::Hog | DirectiveKind::Timeout { .. } => {}
            _ => {
                if let Some(tag) = &d.tag {
                    if !pattern_tags.contains(tag) {
                        return Err(DslError::new(format!(
                            "replacement references tag `{tag}` that the pattern does not bind"
                        )));
                    }
                }
            }
        }
    }
    for ident in collect_placeholders(pattern) {
        let Some(d) = directives.get(&ident) else { continue };
        if matches!(
            d.kind,
            DirectiveKind::Corrupt | DirectiveKind::Hog | DirectiveKind::Timeout { .. }
        ) {
            return Err(DslError::new(
                "$CORRUPT/$HOG/$TIMEOUT are replacement-side directives",
            ));
        }
    }
    Ok(())
}

fn collect_tags(stmts: &[Stmt], directives: &HashMap<String, Directive>) -> Vec<String> {
    collect_placeholders(stmts)
        .into_iter()
        .filter_map(|p| directives.get(&p).and_then(|d| d.tag.clone()))
        .collect()
}

/// All placeholder identifiers appearing in a statement list.
pub fn collect_placeholders(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    for s in stmts {
        collect_stmt(s, &mut out);
    }
    out
}

fn collect_stmt(stmt: &Stmt, out: &mut Vec<String>) {
    pysrc::visit::walk_exprs(stmt, &mut |e| {
        if let pysrc::ast::ExprKind::Name(n) = &e.kind {
            if n.starts_with(PLACEHOLDER_PREFIX) && n != ELLIPSIS {
                out.push(n.clone());
            }
        }
    });
    // Recurse into nested statement bodies via the block walker.
    use pysrc::ast::StmtKind;
    match &stmt.kind {
        StmtKind::If { branches, orelse } => {
            for (_, b) in branches {
                for s in b {
                    collect_stmt(s, out);
                }
            }
            for s in orelse {
                collect_stmt(s, out);
            }
        }
        StmtKind::While { body, orelse, .. } | StmtKind::For { body, orelse, .. } => {
            for s in body.iter().chain(orelse) {
                collect_stmt(s, out);
            }
        }
        StmtKind::FuncDef { body, .. }
        | StmtKind::ClassDef { body, .. }
        | StmtKind::With { body, .. } => {
            for s in body {
                collect_stmt(s, out);
            }
        }
        StmtKind::Try {
            body,
            handlers,
            orelse,
            finalbody,
        } => {
            for s in body.iter().chain(orelse).chain(finalbody) {
                collect_stmt(s, out);
            }
            for h in handlers {
                for s in &h.body {
                    collect_stmt(s, out);
                }
            }
        }
        _ => {}
    }
}

/// Convenience: does a directive's `name`/`val` constraint accept a
/// candidate string?
pub fn constraint_accepts(glob: &Option<String>, candidate: &str) -> bool {
    match glob {
        Some(g) => glob_match(g, candidate),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MFC: &str = r#"
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}
"#;

    const MIFS: &str = r#"
change {
    if $EXPR{var=node}:
        $BLOCK{stmts=1,4}
        continue
} into {
}
"#;

    const WPF: &str = r#"
change {
    $CALL#c{name=utils.execute}(..., $STRING#s{val=*-*}, ...)
} into {
    $CALL#c(..., $CORRUPT($STRING#s), ...)
}
"#;

    #[test]
    fn parses_fig1a_mfc() {
        let spec = parse_spec(MFC, "MFC").unwrap();
        assert_eq!(spec.pattern.len(), 3);
        assert_eq!(spec.replacement.len(), 2);
        let kinds: Vec<_> = spec.directives.values().map(|d| &d.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, DirectiveKind::Call { name: Some(n) } if n == "delete_*")));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, DirectiveKind::Block { min: 1, max: None })));
    }

    #[test]
    fn parses_fig1b_mifs() {
        let spec = parse_spec(MIFS, "MIFS").unwrap();
        assert_eq!(spec.pattern.len(), 1);
        assert!(spec.replacement.is_empty());
        assert!(matches!(
            spec.pattern[0].kind,
            pysrc::ast::StmtKind::If { .. }
        ));
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(&d.kind, DirectiveKind::Expr { var: Some(v) } if v == "node")));
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(&d.kind, DirectiveKind::Block { min: 1, max: Some(4) })));
    }

    #[test]
    fn parses_fig1c_wpf_with_tags() {
        let spec = parse_spec(WPF, "WPF").unwrap();
        assert_eq!(spec.pattern.len(), 1);
        assert_eq!(spec.replacement.len(), 1);
        let call = spec
            .directives
            .values()
            .find(|d| matches!(&d.kind, DirectiveKind::Call { name: Some(n) } if n == "utils.execute"))
            .expect("call directive parsed");
        assert_eq!(call.tag.as_deref(), Some("c"));
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(&d.kind, DirectiveKind::Str { val: Some(v) } if v == "*-*")
                && d.tag.as_deref() == Some("s")));
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(d.kind, DirectiveKind::Corrupt)));
    }

    #[test]
    fn replacement_side_literal_python() {
        let spec = parse_spec(
            "change {\n    $CALL{name=urllib.request}(...)\n} into {\n    raise ConnectTimeoutError('injected')\n}",
            "exc",
        )
        .unwrap();
        assert!(matches!(
            spec.replacement[0].kind,
            pysrc::ast::StmtKind::Raise { .. }
        ));
    }

    #[test]
    fn hog_and_timeout_directives() {
        let spec = parse_spec(
            "change {\n    $CALL#c{name=*}(...)\n} into {\n    $CALL#c(...)\n    $HOG\n    $TIMEOUT{secs=2.5}\n}",
            "hog",
        )
        .unwrap();
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(d.kind, DirectiveKind::Hog)));
        assert!(spec
            .directives
            .values()
            .any(|d| matches!(d.kind, DirectiveKind::Timeout { secs } if (secs - 2.5).abs() < 1e-9)));
    }

    #[test]
    fn unknown_directive_errors() {
        let err = parse_spec("change {\n    $BOGUS\n} into {\n}", "x").unwrap_err();
        assert!(err.message.contains("unknown directive"));
    }

    #[test]
    fn unbound_replacement_tag_errors() {
        let err = parse_spec(
            "change {\n    pass\n} into {\n    $BLOCK{tag=nope}\n}",
            "x",
        )
        .unwrap_err();
        assert!(err.message.contains("does not bind"));
    }

    #[test]
    fn corrupt_in_pattern_errors() {
        let err = parse_spec(
            "change {\n    $CORRUPT($STRING)\n} into {\n    pass\n}",
            "x",
        )
        .unwrap_err();
        assert!(err.message.contains("replacement-side"));
    }

    #[test]
    fn stmt_range_forms() {
        assert_eq!(parse_stmt_range("1,*").unwrap(), (1, None));
        assert_eq!(parse_stmt_range("2,4").unwrap(), (2, Some(4)));
        assert_eq!(parse_stmt_range("3").unwrap(), (3, Some(3)));
        assert!(parse_stmt_range("4,2").is_err());
        assert!(parse_stmt_range("x").is_err());
    }

    #[test]
    fn missing_into_errors() {
        assert!(parse_spec("change { pass }", "x").is_err());
    }

    #[test]
    fn braces_in_strings_do_not_confuse_splitter() {
        let spec = parse_spec(
            "change {\n    $CALL{name=f}(...)\n} into {\n    g('{literal brace}')\n}",
            "x",
        )
        .unwrap();
        assert_eq!(spec.replacement.len(), 1);
    }
}
