//! Fault-model persistence (paper §IV-A: "The fault model is stored in
//! a JSON file, and users can save and import fault models of previous
//! fault injection campaigns").
//!
//! Serialization goes through the workspace's [`jsonlite`] layer (the
//! build environment has no serde); the JSON shape is the obvious
//! `{name, description, specs: [{name, description, dsl}]}`.

use crate::spec::{parse_spec, BugSpec, DslError};
use jsonlite::Value;

/// One named bug specification in DSL source form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecSource {
    /// Specification name (e.g. `"MFC"`).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The `change { ... } into { ... }` DSL text.
    pub dsl: String,
}

/// A fault model: a named set of bug specifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultModel {
    /// Model name.
    pub name: String,
    /// What this model emulates.
    pub description: String,
    /// The specifications.
    pub specs: Vec<SpecSource>,
}

impl SpecSource {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            ("description", Value::str(&self.description)),
            ("dsl", Value::str(&self.dsl)),
        ])
    }

    fn from_value(v: &Value) -> Result<SpecSource, String> {
        let field = |key: &str| -> Result<String, String> {
            v.req(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("spec field '{key}' must be a string"))
        };
        Ok(SpecSource {
            name: field("name")?,
            description: field("description")?,
            dsl: field("dsl")?,
        })
    }
}

impl FaultModel {
    /// The model as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            ("description", Value::str(&self.description)),
            (
                "specs",
                Value::Arr(self.specs.iter().map(SpecSource::to_value).collect()),
            ),
        ])
    }

    /// Serializes the model to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Reads a model from a JSON value.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn from_value(v: &Value) -> Result<FaultModel, String> {
        let name = v
            .req("name")?
            .as_str()
            .ok_or("model 'name' must be a string")?
            .to_string();
        let description = v
            .req("description")?
            .as_str()
            .ok_or("model 'description' must be a string")?
            .to_string();
        let specs = v
            .req("specs")?
            .as_arr()
            .ok_or("model 'specs' must be an array")?
            .iter()
            .map(SpecSource::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultModel {
            name,
            description,
            specs,
        })
    }

    /// Parses a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse or shape error message.
    pub fn from_json(json: &str) -> Result<FaultModel, String> {
        FaultModel::from_value(&jsonlite::parse(json)?)
    }

    /// A stable 64-bit content hash of the model (canonical-JSON based;
    /// key for the cross-campaign scan cache).
    pub fn content_hash(&self) -> u64 {
        jsonlite::stable_hash64(jsonlite::canonicalize(&self.to_value()).compact().as_bytes())
    }

    /// Compiles every specification to its meta-model.
    ///
    /// # Errors
    ///
    /// The first [`DslError`] encountered, prefixed with the spec name.
    pub fn compile(&self) -> Result<Vec<BugSpec>, DslError> {
        self.specs
            .iter()
            .map(|s| {
                parse_spec(&s.dsl, &s.name).map_err(|e| DslError {
                    message: format!("{}: {}", s.name, e.message),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let model = crate::library::predefined_models();
        let json = model.to_json();
        let back = FaultModel::from_json(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(FaultModel::from_json("{not json").is_err());
        assert!(FaultModel::from_json(r#"{"name": "x"}"#).is_err());
        assert!(FaultModel::from_json(r#"{"name": 3, "description": "", "specs": []}"#).is_err());
    }

    #[test]
    fn compile_reports_spec_name() {
        let model = FaultModel {
            name: "broken".into(),
            description: String::new(),
            specs: vec![SpecSource {
                name: "BAD".into(),
                description: String::new(),
                dsl: "change {\n    $NOPE\n} into {\n}".into(),
            }],
        };
        let err = model.compile().unwrap_err();
        assert!(err.message.contains("BAD"));
    }

    #[test]
    fn content_hash_tracks_content_not_identity() {
        let a = crate::library::campaign_a_model();
        let a2 = crate::library::campaign_a_model();
        assert_eq!(a.content_hash(), a2.content_hash());
        let b = crate::library::campaign_b_model();
        assert_ne!(a.content_hash(), b.content_hash());
        let roundtripped = FaultModel::from_json(&a.to_json()).unwrap();
        assert_eq!(a.content_hash(), roundtripped.content_hash());
    }
}
