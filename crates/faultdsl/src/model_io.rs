//! Fault-model persistence (paper §IV-A: "The fault model is stored in
//! a JSON file, and users can save and import fault models of previous
//! fault injection campaigns").

use crate::spec::{parse_spec, BugSpec, DslError};
use serde::{Deserialize, Serialize};

/// One named bug specification in DSL source form.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecSource {
    /// Specification name (e.g. `"MFC"`).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The `change { ... } into { ... }` DSL text.
    pub dsl: String,
}

/// A fault model: a named set of bug specifications.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Model name.
    pub name: String,
    /// What this model emulates.
    pub description: String,
    /// The specifications.
    pub specs: Vec<SpecSource>,
}

impl FaultModel {
    /// Serializes the model to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the model contains only strings.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault models are plain strings")
    }

    /// Parses a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message.
    pub fn from_json(json: &str) -> Result<FaultModel, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Compiles every specification to its meta-model.
    ///
    /// # Errors
    ///
    /// The first [`DslError`] encountered, prefixed with the spec name.
    pub fn compile(&self) -> Result<Vec<BugSpec>, DslError> {
        self.specs
            .iter()
            .map(|s| {
                parse_spec(&s.dsl, &s.name).map_err(|e| DslError {
                    message: format!("{}: {}", s.name, e.message),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let model = crate::library::predefined_models();
        let json = model.to_json();
        let back = FaultModel::from_json(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(FaultModel::from_json("{not json").is_err());
    }

    #[test]
    fn compile_reports_spec_name() {
        let model = FaultModel {
            name: "broken".into(),
            description: String::new(),
            specs: vec![SpecSource {
                name: "BAD".into(),
                description: String::new(),
                dsl: "change {\n    $NOPE\n} into {\n}".into(),
            }],
        };
        let err = model.compile().unwrap_err();
        assert!(err.message.contains("BAD"));
    }
}
