//! Predefined fault models (paper §IV-A: "ProFIPy provides pre-defined
//! fault models based on previous fault injection studies").
//!
//! The generic model covers the G-SWFIT-derived fault types of §II/§III
//! plus the extended types listed at the end of §III (exception
//! injection, None returns, omitted optional parameters, AND/OR clause
//! omission, wrong initialization, resource hogs, delays).
//!
//! The three `campaign_*_model` functions reproduce Table I: the fault
//! classes requested by the industrial partner for the python-etcd
//! case study.

use crate::model_io::{FaultModel, SpecSource};

fn spec(name: &str, description: &str, dsl: &str) -> SpecSource {
    SpecSource {
        name: name.to_string(),
        description: description.to_string(),
        dsl: dsl.trim_start_matches('\n').to_string(),
    }
}

/// The generic, G-SWFIT-style predefined fault model.
pub fn predefined_models() -> FaultModel {
    FaultModel {
        name: "gswfit-extended".to_string(),
        description: "Generic software fault model: G-SWFIT fault types adapted to Python \
                      plus the ProFIPy extended types (paper §III)"
            .to_string(),
        specs: vec![
            spec(
                "MFC",
                "Missing function call (Fig. 1a): omit a call statement that is \
                 preceded and followed by other statements",
                r#"
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}"#,
            ),
            spec(
                "MIFS",
                "Missing IF construct plus statements (Fig. 1b): delete a small \
                 guarded block",
                r#"
change {
    if $EXPR:
        $BLOCK{stmts=1,4}
} into {
}"#,
            ),
            spec(
                "WPF",
                "Wrong parameter in function call (Fig. 1c): corrupt a string \
                 argument that looks like a UNIX utility flag",
                r#"
change {
    $CALL#c{name=*}(..., $STRING#s{val=*-*}, ...)
} into {
    $CALL#c(..., $CORRUPT($STRING#s), ...)
}"#,
            ),
            spec(
                "MPFC",
                "Missing parameter in function call: drop trailing arguments so \
                 the callee falls back to defaults",
                r#"
change {
    $CALL#c{name=*}($EXPR#a, $EXPR#b, ...)
} into {
    $CALL#c($EXPR#a)
}"#,
            ),
            spec(
                "EXC",
                "Throw exception at a call site (error-handler coverage, §III)",
                r#"
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=*}(...)
} into {
    $BLOCK{tag=b1}
    raise RuntimeError('injected exception')
}"#,
            ),
            spec(
                "NONE_RET",
                "None returned from a library call (§III): tests IF-based error \
                 handling after the call",
                r#"
change {
    $VAR#r = $CALL{name=*}(...)
} into {
    $VAR#r = None
}"#,
            ),
            spec(
                "WVAV",
                "Wrong value assigned to variable: corrupt a numeric initialization",
                r#"
change {
    $VAR#x = $NUM#n
} into {
    $VAR#x = $CORRUPT($NUM#n)
}"#,
            ),
            spec(
                "MBCA",
                "Missing AND clause in an IF condition (§III)",
                r#"
change {
    if $EXPR#a and $EXPR#b:
        $BLOCK{tag=body; stmts=1,*}
} into {
    if $EXPR#a:
        $BLOCK{tag=body}
}"#,
            ),
            spec(
                "MBCO",
                "Missing OR clause in an IF condition (§III)",
                r#"
change {
    if $EXPR#a or $EXPR#b:
        $BLOCK{tag=body; stmts=1,*}
} into {
    if $EXPR#a:
        $BLOCK{tag=body}
}"#,
            ),
            spec(
                "MIA",
                "Missing IF construct around statements: keep the body, drop the guard",
                r#"
change {
    if $EXPR#cond:
        $BLOCK{tag=body; stmts=1,4}
} into {
    $BLOCK{tag=body}
}"#,
            ),
            spec(
                "CDI",
                "Corrupt dictionary initialization (wrong key-value literal, §III)",
                r#"
change {
    $VAR#d = {$STRING#k: $EXPR#v}
} into {
    $VAR#d = {$CORRUPT($STRING#k): $EXPR#v}
}"#,
            ),
            spec(
                "MLPA",
                "Missing small part of the algorithm: remove a loop body",
                r#"
change {
    for $VAR#i in $EXPR#seq:
        $BLOCK{stmts=2,*}
} into {
    pass
}"#,
            ),
            spec(
                "HOG",
                "High resource consumption via $HOG (§III): stale CPU-hog thread \
                 after a call",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $VAR#r = $CALL#c(...)
    $HOG
}"#,
            ),
            spec(
                "DELAY",
                "Artificial time delay via $TIMEOUT (§III)",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $TIMEOUT{secs=5}
    $VAR#r = $CALL#c(...)
}"#,
            ),
        ],
    }
}

/// Campaign A (Table I row 1): failures when calling external library
/// APIs — exceptions, None objects, omitted calls, wrong calls on the
/// `urllib` and `os` modules.
pub fn campaign_a_model() -> FaultModel {
    FaultModel {
        name: "campaign-a-external-apis".to_string(),
        description: "Failures when calling external library APIs (urllib, os): \
                      Throw Exception, Missing Function Call, Missing Parameters (§V-A)"
            .to_string(),
        specs: vec![
            spec(
                "A-THROW-URLLIB",
                "Raise ConnectTimeoutError instead of the urllib call (per-API \
                 exception list, §V-A Throw Exception)",
                r#"
change {
    $VAR#r = $CALL{name=urllib.request}(...)
} into {
    raise urllib.ConnectTimeoutError('injected: connection timed out')
}"#,
            ),
            spec(
                "A-NONE-URLLIB",
                "Return a None object from a urllib GET (per-API list, §V-A)",
                r#"
change {
    $VAR#r = $CALL{name=urllib.request}($STRING{val=GET}, ...)
} into {
    $VAR#r = None
}"#,
            ),
            spec(
                "A-OMIT-OS",
                "Missing Function Call: omit an os.* call statement (replaced \
                 with pass, §V-A)",
                r#"
change {
    $CALL{name=os.*}(...)
} into {
    pass
}"#,
            ),
            spec(
                "A-OMIT-URLLIB-STMT",
                "Missing Function Call: omit a statement-level urllib call",
                r#"
change {
    $CALL{name=urllib.request}(...)
} into {
    pass
}"#,
            ),
            spec(
                "A-THROW-OS",
                "Raise IOError at an os.* call (§V-A Throw Exception)",
                r#"
change {
    $VAR#r = $CALL{name=os.*}(...)
} into {
    raise IOError('injected: I/O error')
}"#,
            ),
            spec(
                "A-MISSING-PARAMS",
                "Missing Parameters: call a urllib PUT/POST with omitted trailing \
                 parameters so defaults are used (§V-A)",
                r#"
change {
    $VAR#r = $CALL#c{name=urllib.request}($STRING#m{val=P*}, $EXPR#u, ...)
} into {
    $VAR#r = $CALL#c($STRING#m, $EXPR#u)
}"#,
            ),
        ],
    }
}

/// Campaign B (Table I row 2): wrong inputs to the python-etcd API —
/// string corruptions, None values, negative integers.
pub fn campaign_b_model() -> FaultModel {
    FaultModel {
        name: "campaign-b-wrong-inputs".to_string(),
        description: "Wrong inputs in Python-etcd API (set/get/test_and_set/...): \
                      string corruptions, None values, negative integers (§V-B)"
            .to_string(),
        specs: vec![
            spec(
                "B-CORRUPT-KEY",
                "Corrupt the first (key) argument of a client API call",
                r#"
change {
    $CALL#c{name=*client.set}($EXPR#k, ...)
} into {
    $CALL#c($CORRUPT($EXPR#k), ...)
}"#,
            ),
            spec(
                "B-CORRUPT-KEY-GET",
                "Corrupt the key passed to get()",
                r#"
change {
    $VAR#r = $CALL#c{name=*client.get}($EXPR#k, ...)
} into {
    $VAR#r = $CALL#c($CORRUPT($EXPR#k), ...)
}"#,
            ),
            spec(
                "B-NONE-KEY",
                "Pass None instead of the key to delete()/mkdir() (NoneType \
                 propagation, §V-B)",
                r#"
change {
    $CALL#c{name=*client.delete}($EXPR#k, ...)
} into {
    $CALL#c(None, ...)
}"#,
            ),
            spec(
                "B-NONE-KEY-MKDIR",
                "Pass None instead of the key to mkdir()",
                r#"
change {
    $CALL#c{name=*client.mkdir}($EXPR#k, ...)
} into {
    $CALL#c(None, ...)
}"#,
            ),
            spec(
                "B-CORRUPT-VALUE",
                "Corrupt the value argument of set()/test_and_set()",
                r#"
change {
    $CALL#c{name=*client.*set*}($EXPR#k, $EXPR#v, ...)
} into {
    $CALL#c($EXPR#k, $CORRUPT($EXPR#v), ...)
}"#,
            ),
            spec(
                "B-NEGATIVE-TTL",
                "Negative integer instead of a numeric argument (§V-B)",
                r#"
change {
    $CALL#c{name=*client.*}($EXPR#k, $EXPR#v, $NUM#t, ...)
} into {
    $CALL#c($EXPR#k, $EXPR#v, -1, ...)
}"#,
            ),
        ],
    }
}

/// Campaign C (Table I row 3): resource-management bugs — stale hog
/// threads inside the methods of python-etcd.
pub fn campaign_c_model() -> FaultModel {
    FaultModel {
        name: "campaign-c-resource-hogs".to_string(),
        description: "Resource management bugs: CPU hog threads injected after \
                      method calls inside Python-etcd (§V-C)"
            .to_string(),
        specs: vec![
            spec(
                "C-HOG-AFTER-CALL",
                "Spawn a stale CPU-hog thread after an assigned call",
                r#"
change {
    $VAR#r = $CALL#c{name=*}(...)
} into {
    $VAR#r = $CALL#c(...)
    $HOG
}"#,
            ),
            spec(
                "C-HOG-AFTER-STMT-CALL",
                "Spawn a stale CPU-hog thread after a statement-level call",
                r#"
change {
    $CALL#c{name=self.*}(...)
} into {
    $CALL#c(...)
    $HOG
}"#,
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_predefined_specs_compile() {
        for model in [
            predefined_models(),
            campaign_a_model(),
            campaign_b_model(),
            campaign_c_model(),
        ] {
            let compiled = model.compile().unwrap_or_else(|e| {
                panic!("model {} failed to compile: {e}", model.name)
            });
            assert_eq!(compiled.len(), model.specs.len());
        }
    }

    #[test]
    fn predefined_model_covers_paper_fault_types() {
        let names: Vec<String> = predefined_models()
            .specs
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for required in ["MFC", "MIFS", "WPF", "EXC", "NONE_RET", "HOG", "DELAY"] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
    }
}
