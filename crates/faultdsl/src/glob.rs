//! Minimal glob matching for DSL attribute values (`name=delete_*`,
//! `val=*-*`): `*` matches any run of characters, `?` matches one.

/// Returns true if `text` matches the glob `pattern`.
///
/// # Example
///
/// ```
/// assert!(faultdsl::glob_match("delete_*", "delete_port"));
/// assert!(faultdsl::glob_match("*-*", "--dport 2379"));
/// assert!(!faultdsl::glob_match("delete_*", "create_port"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative two-pointer algorithm with star backtracking.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (None::<usize>, 0usize);
    while ti < t.len() {
        // `*` must be tested before the literal branch so that a `*`
        // character in the text cannot shadow the wildcard.
        if pi < p.len() && p[pi] == '*' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if let Some(s) = star {
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "abcd"));
    }

    #[test]
    fn star_matches_runs() {
        assert!(glob_match("delete_*", "delete_network"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b", "ac"));
    }

    #[test]
    fn question_matches_one() {
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
    }

    #[test]
    fn empty_pattern_matches_only_empty_text() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
        assert!(!glob_match("a", ""));
        assert!(glob_match("*", ""));
        assert!(glob_match("***", ""));
        assert!(!glob_match("?", ""));
    }

    #[test]
    fn adjacent_stars_collapse() {
        assert!(glob_match("**", "anything"));
        assert!(glob_match("a**b", "ab"));
        assert!(glob_match("a**b", "aXXXb"));
        assert!(glob_match("**a**", "bab"));
        assert!(!glob_match("a**b", "a"));
        assert!(!glob_match("**x**", "abc"));
    }

    #[test]
    fn bracket_sets_are_literal_characters() {
        // This glob dialect has no character classes: `[` and `]` only
        // match themselves, so `[abc]` is a five-character literal.
        assert!(glob_match("[abc]", "[abc]"));
        assert!(!glob_match("[abc]", "a"));
        assert!(!glob_match("[abc]", "b"));
        assert!(glob_match("x[0]", "x[0]"));
        assert!(glob_match("*[*]*", "list[0]"));
        assert!(!glob_match("x[0]", "x0"));
    }

    #[test]
    fn star_backtracks_past_false_anchors() {
        // The first candidate `b` is not the right anchor; the matcher
        // must re-expand the star instead of failing.
        assert!(glob_match("*bc", "abbc"));
        assert!(glob_match("*aab", "aaaab"));
        assert!(glob_match("a*?c", "abbc"));
        assert!(!glob_match("*bc", "abcb"));
    }

    #[test]
    fn literal_star_in_text_does_not_shadow_wildcard() {
        assert!(glob_match("*", "*"));
        assert!(glob_match("a*c", "a*c"));
        assert!(glob_match("a?c", "a*c"));
    }

    #[test]
    fn paper_examples() {
        assert!(glob_match("delete_*", "delete_port"));
        assert!(glob_match("utils.execute", "utils.execute"));
        assert!(glob_match("*-*", "--retry"));
        assert!(glob_match("*-*", "a-b"));
        assert!(!glob_match("*-*", "plain"));
    }
}
