//! `faultdsl` — the ProFIPy bug-specification DSL (paper §III).
//!
//! A *bug specification* has the form:
//!
//! ```text
//! change {
//!     <code pattern>
//! } into {
//!     <code replacement>
//! }
//! ```
//!
//! The pattern mixes literal mini-Python with directives:
//!
//! | Directive | Matches / produces |
//! |---|---|
//! | `$BLOCK{tag=b1; stmts=1,*}` | 1..∞ consecutive statements, taggable |
//! | `$CALL{name=delete_*}(...)` | a call whose dotted callee matches the glob |
//! | `$EXPR{var=node}` | any expression referencing a matching variable |
//! | `$STRING{val=*-*}` | a string literal whose value matches the glob |
//! | `$NUM` | a numeric literal |
//! | `$VAR{name=...}` | a bare name |
//! | `...` (in argument lists) | any run of arguments |
//! | `$CORRUPT(x)` | *(replacement)* `profipy_rt.corrupt(x)` |
//! | `$HOG` | *(replacement)* `profipy_rt.hog()` |
//! | `$TIMEOUT{secs=5}` | *(replacement)* `profipy_rt.delay(5)` |
//!
//! `#tag` after a directive (e.g. `$CALL#c`, `$STRING#s`) names the
//! match for reuse in the replacement, as does `{tag=...}`.
//!
//! The compiler (this crate) lowers a specification to a *meta-model*:
//! the pattern and replacement parsed as mini-Python ASTs in which
//! directives appear as reserved placeholder names, plus a side table
//! of directive descriptors. The `injector` crate interprets the
//! meta-model against target ASTs.
//!
//! # Example
//!
//! ```
//! let spec = faultdsl::parse_spec(
//!     "change {\n    $CALL{name=delete_*}(...)\n} into {\n    pass\n}",
//!     "mfc",
//! ).unwrap();
//! assert_eq!(spec.name, "mfc");
//! assert_eq!(spec.pattern.len(), 1);
//! ```

pub mod glob;
pub mod library;
pub mod model_io;
pub mod spec;

pub use glob::glob_match;
pub use library::{campaign_a_model, campaign_b_model, campaign_c_model, predefined_models};
pub use model_io::{FaultModel, SpecSource};
pub use spec::{parse_spec, BugSpec, Directive, DirectiveKind, DslError};
