//! Umbrella crate for the ProFIPy reproduction: hosts the workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! The public API lives in the [`profipy`] crate; the multi-user
//! orchestration layer (persistent queue, checkpoints, cross-campaign
//! cache) lives in the [`campaign`] crate.
pub use campaign;
pub use profipy;
