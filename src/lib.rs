//! Umbrella crate for the ProFIPy reproduction: hosts the workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! The public API lives in the [`profipy`] crate.
pub use profipy;
