//! `profipy-cli` — command-line front end for the ProFIPy service,
//! operating on the built-in §V case-study target (the python-etcd-like
//! client + workload).
//!
//! ```text
//! profipy-cli models                       list predefined fault models
//! profipy-cli export <model>               print a fault model as JSON
//! profipy-cli scan <model>                 scan the case-study target
//! profipy-cli scan-dsl <file.dsl>          scan with a custom bug spec
//! profipy-cli campaign <A|B|C> [--no-prune] run a §V campaign, print report
//! profipy-cli viz <A|B|C> <point-id>       run one experiment, render timeline
//! profipy-cli matrix [--catalog GLOBS] [--models GLOBS] [--fleet ADDR]
//!                   [--sample N] [--seed N]
//!                                          run the scenario-catalog campaign
//!                                          matrix (target × fault model) and
//!                                          print the failure-class grid
//! profipy-cli serve [ADDR] [--data-dir D] [--workers N] [--max-conns N]
//!                   [--fleet] [--standby-of ADDR] [--lease-ms N] [--log-file F]
//!                                          boot the as-a-Service REST API
//!                                          (--fleet: lease to remote workers;
//!                                          --standby-of: warm standby of a
//!                                          primary coordinator)
//! profipy-cli worker --coordinator ADDR[,STANDBY...] [--parallelism N]
//!                   [--log-file F]          join a coordinator's worker fleet
//! ```
//!
//! Structured JSONL event logging: `--log-file` (or `PROFIPY_LOG=stderr`
//! / `PROFIPY_LOG=<path>`) enables it; `PROFIPY_LOG_LEVEL` picks the
//! threshold (debug|info|warn|error|off).

use campaign::{ApiConfig, ApiServer, CampaignService, EngineConfig, HostRegistry, SharedService};
use cluster::{FleetConfig, FleetServer, StandbyConfig, StandbyServer, WorkerAgent, WorkerConfig};
use profipy::case_study::{
    campaign_a, campaign_b, campaign_c, case_study_workflow, etcd_host_factory, Campaign,
};
use profipy::report::CampaignReport;
use std::process::ExitCode;

fn models() -> Vec<faultdsl::FaultModel> {
    vec![
        faultdsl::predefined_models(),
        faultdsl::campaign_a_model(),
        faultdsl::campaign_b_model(),
        faultdsl::campaign_c_model(),
    ]
}

fn find_model(name: &str) -> Option<faultdsl::FaultModel> {
    models().into_iter().find(|m| m.name == name)
}

fn campaign_by_letter(letter: &str) -> Option<Campaign> {
    match letter.to_ascii_uppercase().as_str() {
        "A" => Some(campaign_a()),
        "B" => Some(campaign_b()),
        "C" => Some(campaign_c()),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: profipy-cli <command>\n\
         \n\
         commands:\n\
         models                        list predefined fault models\n\
         export <model-name>           print a fault model as JSON\n\
         scan <model-name>             scan the case-study target, list points\n\
         scan-dsl <file.dsl>           scan with a custom `change{{}}into{{}}` spec\n\
         campaign <A|B|C> [--no-prune] run a paper §V campaign\n\
         viz <A|B|C> <point-id>        run one experiment, render its timeline\n\
         matrix [--catalog GLOBS]      run the scenario-catalog matrix: every\n\
               [--models GLOBS]        catalog target × every applicable fault\n\
               [--fleet ADDR]          model as one campaign per cell, printed\n\
               [--sample N] [--seed N] as a failure-class grid (GLOBS filter by\n\
                                       name, comma-separated; --fleet submits\n\
                                       through a running coordinator instead of\n\
                                       executing in-process; --sample caps\n\
                                       experiments per cell, default 4)\n\
         serve [ADDR] [--data-dir D]   boot the REST API (default 127.0.0.1:8080;\n\
               [--workers N]           with --data-dir the queue/checkpoints/cache\n\
               [--max-conns N]         persist and survive restarts; --workers sizes\n\
               [--fleet]               the handler pool, --max-conns caps open\n\
               [--standby-of ADDR]     keep-alive connections; --fleet leases\n\
               [--lease-ms N]          experiments to remote workers instead of\n\
               [--log-file F]          executing locally, --standby-of replicates\n\
                                       a primary coordinator into --data-dir and\n\
                                       takes over when it dies, --lease-ms sets\n\
                                       the heartbeat-bounded lease TTL, --log-file\n\
                                       appends JSONL events to F)\n\
         worker --coordinator ADDRS    join a coordinator's fleet: pull leases,\n\
               [--parallelism N]       execute experiments locally, stream the\n\
               [--log-file F]          results back; ADDRS = primary[,standby...]\n\
         \n\
         PROFIPY_LOG=stderr|<path> and PROFIPY_LOG_LEVEL=debug|info|warn|error|off\n\
         configure the structured event log for every command"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            for m in models() {
                println!("{:32} {:2} specs  {}", m.name, m.specs.len(), m.description.lines().next().unwrap_or(""));
            }
            ExitCode::SUCCESS
        }
        Some("export") => {
            let Some(name) = args.get(1) else { return usage() };
            match find_model(name) {
                Some(m) => {
                    println!("{}", m.to_json());
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown model '{name}' (try `profipy-cli models`)");
                    ExitCode::FAILURE
                }
            }
        }
        Some("scan") => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(model) = find_model(name) else {
                eprintln!("unknown model '{name}'");
                return ExitCode::FAILURE;
            };
            scan_with(model)
        }
        Some("scan-dsl") => {
            let Some(path) = args.get(1) else { return usage() };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let model = faultdsl::FaultModel {
                name: format!("custom:{path}"),
                description: "user-provided specification".into(),
                specs: vec![faultdsl::SpecSource {
                    name: "CUSTOM".into(),
                    description: String::new(),
                    dsl: text,
                }],
            };
            scan_with(model)
        }
        Some("campaign") => {
            let Some(letter) = args.get(1) else { return usage() };
            let Some(campaign) = campaign_by_letter(letter) else {
                eprintln!("unknown campaign '{letter}' (A, B or C)");
                return ExitCode::FAILURE;
            };
            let prune = campaign.prune_by_coverage && !args.iter().any(|a| a == "--no-prune");
            match campaign.workflow.run_campaign(&campaign.filter, prune) {
                Ok(outcome) => {
                    let report =
                        CampaignReport::from_outcome(&campaign.name, &outcome, &campaign.classifier);
                    println!("{}", report.render_text());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("viz") => {
            let (Some(letter), Some(id)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Some(campaign) = campaign_by_letter(letter) else {
                eprintln!("unknown campaign '{letter}'");
                return ExitCode::FAILURE;
            };
            let Ok(id) = id.parse::<u64>() else {
                eprintln!("point id must be a number");
                return ExitCode::FAILURE;
            };
            let points = campaign.workflow.scan();
            let Some(point) = points.iter().find(|p| p.id == id) else {
                eprintln!("no injection point #{id} (scan found {})", points.len());
                return ExitCode::FAILURE;
            };
            let result = campaign.workflow.run_experiment(point);
            println!(
                "experiment #{id} ({} @ {}): round1={:?} round2={:?}\n",
                result.spec_name, result.scope, result.round1.status, result.round2.status
            );
            println!("{}", trace::render_timeline(&result.timeline(), 72));
            ExitCode::SUCCESS
        }
        Some("matrix") => matrix(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("worker") => worker(&args[1..]),
        _ => usage(),
    }
}

/// Routes the structured event log to a file (`--log-file PATH`).
/// Returns the exit code on failure, `None` on success.
fn log_to_file(path: Option<&String>) -> Option<ExitCode> {
    let Some(path) = path else {
        eprintln!("--log-file needs a path");
        return Some(ExitCode::from(2));
    };
    if let Err(e) = obs::log::set_file(path) {
        eprintln!("cannot open log file {path}: {e}");
        return Some(ExitCode::FAILURE);
    }
    None
}

/// Runs the scenario-catalog campaign matrix: every catalog target ×
/// every applicable fault model, one campaign per cell, in-process or
/// through a running coordinator (`--fleet ADDR`).
fn matrix(args: &[String]) -> ExitCode {
    let mut catalog_globs: Vec<String> = Vec::new();
    let mut model_globs: Vec<String> = Vec::new();
    let mut fleet_addr: Option<String> = None;
    let mut sample: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut rest = args.iter();
    let globs = |value: Option<&String>| -> Vec<String> {
        value
            .map(|v| v.split(',').filter(|g| !g.is_empty()).map(str::to_string).collect())
            .unwrap_or_default()
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--catalog" => catalog_globs = globs(rest.next()),
            "--models" => model_globs = globs(rest.next()),
            "--fleet" => match rest.next() {
                Some(addr) => {
                    fleet_addr = Some(
                        addr.strip_prefix("http://")
                            .unwrap_or(addr)
                            .trim_end_matches('/')
                            .to_string(),
                    );
                }
                None => {
                    eprintln!("--fleet needs a coordinator address");
                    return ExitCode::from(2);
                }
            },
            "--sample" => match rest.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => sample = Some(n),
                _ => {
                    eprintln!("--sample needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match rest.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => seed = Some(n),
                _ => {
                    eprintln!("--seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--log-file" => {
                if let Some(code) = log_to_file(rest.next()) {
                    return code;
                }
            }
            flag => {
                eprintln!("unknown flag '{flag}'");
                return ExitCode::from(2);
            }
        }
    }
    let mut targets = scenarios::default_catalog();
    if !catalog_globs.is_empty() {
        targets = scenarios::filter_by_globs(targets, &catalog_globs);
    }
    let mut models = scenarios::default_corpus();
    if !model_globs.is_empty() {
        models.retain(|m| {
            model_globs
                .iter()
                .any(|g| faultdsl::glob_match(g, &m.model.name))
        });
    }
    if targets.is_empty() || models.is_empty() {
        eprintln!(
            "nothing to run: {} target(s), {} model(s) after filtering \
             (try `profipy-cli matrix` with no filters)",
            targets.len(),
            models.len()
        );
        return ExitCode::FAILURE;
    }
    let mut matrix = scenarios::Matrix::new(targets, models);
    if let Some(n) = sample {
        matrix.sample_per_cell = n as usize;
    }
    if let Some(n) = seed {
        matrix.seed = n;
    }
    let cells = matrix.cells();
    println!(
        "matrix: {} cell(s) ({} target(s) × {} model(s), applicability-filtered)",
        cells.len(),
        matrix.targets.len(),
        matrix.models.len()
    );
    let report = if let Some(addr) = fleet_addr {
        println!("submitting through coordinator http://{addr} ...");
        matrix.run_http(&addr, std::time::Duration::from_secs(600))
    } else {
        let registry = HostRegistry::with_noop().with("etcd", etcd_host_factory());
        match CampaignService::new(EngineConfig::default(), registry) {
            Ok(mut service) => matrix.run_local(&mut service),
            Err(e) => Err(format!("cannot open engine: {e}")),
        }
    };
    match report {
        Ok(report) => {
            println!("{}", report.render_text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Joins a coordinator's fleet and works until killed.
fn worker(args: &[String]) -> ExitCode {
    let mut coordinators: Vec<String> = Vec::new();
    let mut parallelism = 2usize;
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--coordinator" => match rest.next() {
                Some(addrs) => {
                    // Accept both `host:port` and `http://host:port`;
                    // a comma-separated list names the primary first,
                    // then warm standbys to fail over to.
                    coordinators.extend(addrs.split(',').filter(|a| !a.is_empty()).map(|addr| {
                        addr.strip_prefix("http://")
                            .unwrap_or(addr)
                            .trim_end_matches('/')
                            .to_string()
                    }));
                }
                None => {
                    eprintln!("--coordinator needs an address");
                    return ExitCode::from(2);
                }
            },
            "--parallelism" => match rest.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => parallelism = n,
                _ => {
                    eprintln!("--parallelism needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--log-file" => {
                if let Some(code) = log_to_file(rest.next()) {
                    return code;
                }
            }
            flag => {
                eprintln!("unknown flag '{flag}'");
                return ExitCode::from(2);
            }
        }
    }
    if coordinators.is_empty() {
        eprintln!("worker needs --coordinator ADDR[,STANDBY_ADDR...]");
        return ExitCode::from(2);
    }
    let coordinator = coordinators.join(",");
    let registry = HostRegistry::with_noop().with("etcd", etcd_host_factory());
    let config = WorkerConfig {
        coordinators,
        parallelism,
        ..WorkerConfig::new(String::new())
    };
    let agent = match WorkerAgent::start(config, registry) {
        Ok(agent) => agent,
        Err(e) => {
            eprintln!("cannot join fleet at {coordinator}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "worker {} serving coordinator {coordinator} ({parallelism} experiments at a time) — \
         Ctrl-C to stop",
        agent.id()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Boots the as-a-Service surface: the case-study `etcd` host plus the
/// `noop` host, served over HTTP until the process is killed.
fn serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut data_dir = None;
    let mut api_config = ApiConfig::default();
    let mut fleet = false;
    let mut standby_of: Option<String> = None;
    let mut fleet_config = FleetConfig::default();
    let mut rest = args.iter();
    // Parses the `usize` value of `--flag N`.
    let numeric = |flag: &str, value: Option<&String>| -> Result<usize, ExitCode> {
        match value.map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => Ok(n),
            _ => {
                eprintln!("{flag} needs a positive number");
                Err(ExitCode::from(2))
            }
        }
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--data-dir" => match rest.next() {
                Some(dir) => data_dir = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("--data-dir needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match numeric("--workers", rest.next()) {
                Ok(n) => api_config.http.workers = n,
                Err(code) => return code,
            },
            "--max-conns" => match numeric("--max-conns", rest.next()) {
                Ok(n) => api_config.http.max_connections = n,
                Err(code) => return code,
            },
            "--fleet" => fleet = true,
            "--standby-of" => match rest.next() {
                Some(primary) => {
                    fleet = true;
                    standby_of = Some(
                        primary
                            .strip_prefix("http://")
                            .unwrap_or(primary)
                            .trim_end_matches('/')
                            .to_string(),
                    );
                }
                None => {
                    eprintln!("--standby-of needs the primary's address");
                    return ExitCode::from(2);
                }
            },
            "--log-file" => {
                if let Some(code) = log_to_file(rest.next()) {
                    return code;
                }
            }
            "--lease-ms" => match numeric("--lease-ms", rest.next()) {
                Ok(n) => {
                    fleet_config.lease_ttl = std::time::Duration::from_millis(n as u64);
                    fleet_config.heartbeat_interval =
                        std::time::Duration::from_millis((n as u64 / 4).max(10));
                }
                Err(code) => return code,
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                return ExitCode::from(2);
            }
            positional => addr = positional.to_string(),
        }
    }
    let registry = HostRegistry::with_noop().with("etcd", etcd_host_factory());
    // Warm standby: replicate the primary's logs into the (required)
    // data dir, take over on missed probes. No engine exists until the
    // promotion — the replica is the engine's future persistence root.
    if let Some(primary) = standby_of {
        let Some(dir) = data_dir else {
            eprintln!("--standby-of needs --data-dir (the replica directory)");
            return ExitCode::from(2);
        };
        let mut standby_config = StandbyConfig::new(primary.clone(), dir);
        standby_config.addr = addr;
        standby_config.api = api_config;
        standby_config.fleet = fleet_config;
        let standby = match StandbyServer::start(standby_config, registry) {
            Ok(standby) => standby,
            Err(e) => {
                eprintln!("cannot start standby: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "warm standby of http://{primary} — replicating, takes over on http://{} within one \
             lease period of a primary crash — Ctrl-C to stop",
            standby.addr(),
        );
        std::mem::forget(standby); // replicate/serve until the process dies
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    // The fleet worker registry shares the engine's persistence root.
    let data_dir_for_fleet = data_dir.clone();
    let config = EngineConfig {
        data_dir,
        executor: Default::default(),
    };
    let service = match CampaignService::new(config, registry) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("cannot open engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workers = api_config.http.workers;
    let max_conns = api_config.http.max_connections;
    let bound = if fleet {
        fleet_config.data_dir = data_dir_for_fleet;
        match FleetServer::serve(&addr, service, api_config, fleet_config.clone()) {
            Ok(server) => {
                let bound = server.addr();
                std::mem::forget(server); // serve until the process dies
                bound
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // The single-node server additionally mounts the scenario
        // catalog (`GET /api/matrix`) next to the campaign surface.
        let shared = SharedService::new(service);
        match ApiServer::serve_with(&addr, shared, api_config, scenarios::api::mount) {
            Ok(api) => {
                let bound = api.addr();
                std::mem::forget(api);
                bound
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!("profipy as-a-service listening on http://{bound}");
    println!("  POST /api/campaigns              submit a CampaignSpec (JSON)");
    println!("  GET  /api/campaigns/:id          job status");
    println!("  GET  /api/campaigns/:id/report   completed campaign report");
    println!("  POST /api/models                 save a fault model into a session");
    println!("  GET  /api/sessions/:user/reports report history");
    println!("  GET  /api/campaigns/:id/trace    merged execution timeline");
    println!("  GET  /metrics                    Prometheus exposition (latency histograms)");
    println!("  GET  /healthz                    liveness (role/uptime/version JSON)");
    if !fleet {
        println!("  GET  /api/matrix                 scenario catalog: targets × fault models");
    }
    if fleet {
        println!("  POST /api/workers/register       join the worker fleet");
        println!("  POST /api/workers/:id/lease      pull a batch of experiments");
        println!("  POST /api/workers/:id/heartbeat  keep the lease alive");
        println!("  POST /api/workers/:id/results    upload executed results");
        println!(
            "fleet mode: no local execution; leases expire after {}ms without a heartbeat \
             (workers beat every {}ms)",
            fleet_config.lease_ttl.as_millis(),
            fleet_config.heartbeat_interval.as_millis()
        );
        println!("join with: profipy-cli worker --coordinator {bound}");
    }
    println!(
        "limits: {max_conns} keep-alive connections over {workers} handler workers"
    );
    println!("hosts: etcd (case study), noop — Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn scan_with(model: faultdsl::FaultModel) -> ExitCode {
    let workflow = case_study_workflow(model, 0);
    let points = workflow.scan();
    println!("{} injection point(s):", points.len());
    for p in &points {
        println!(
            "  [{:>3}] {:24} {}::{} at {}",
            p.id, p.spec_name, p.module, p.scope, p.span
        );
    }
    ExitCode::SUCCESS
}
