//! The as-a-service façade: sessions, saved fault models, campaign
//! submission (paper title + §IV-A).

use profipy::analysis::FailureClassifier;
use profipy::case_study::etcd_host_factory;
use profipy::service::ProfipyService;
use profipy::{PlanFilter, Workflow, WorkflowConfig};

fn small_workflow() -> Workflow {
    let model = faultdsl::FaultModel {
        name: "svc-model".into(),
        description: "service test".into(),
        specs: vec![faultdsl::SpecSource {
            name: "OMIT-SET".into(),
            description: String::new(),
            dsl: "change {\n    $CALL{name=client.set}(...)\n} into {\n    pass\n}".into(),
        }],
    };
    Workflow::new(
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_QUICKSTART.into()),
        ],
        targets::WORKLOAD_QUICKSTART.into(),
        model,
        etcd_host_factory(),
        WorkflowConfig {
            setup: vec![vec!["etcd-start".into()]],
            ..WorkflowConfig::default()
        },
    )
    .expect("valid")
}

#[test]
fn full_service_flow() {
    let mut service = ProfipyService::new();
    let session = service.session("huawei-user");

    // Save the predefined model and two custom campaign models (§IV-A:
    // "users can save and import fault models of previous fault
    // injection campaigns").
    session.save_model("gswfit", &faultdsl::predefined_models());
    session.save_model("campaign-a", &faultdsl::campaign_a_model());
    let restored = session.load_model("gswfit").expect("model restored");
    assert!(restored.compile().is_ok());

    // Submit a campaign; the report lands in the session history.
    let workflow = small_workflow();
    let report = session
        .run_campaign(
            "smoke",
            &workflow,
            &PlanFilter::all(),
            &FailureClassifier::case_study(),
            false,
        )
        .expect("campaign runs");
    assert_eq!(report.executed, 1);
    assert_eq!(session.reports().len(), 1);
    assert_eq!(session.reports()[0].name, "smoke");
}

#[test]
fn model_json_files_are_portable_across_sessions() {
    let mut service = ProfipyService::new();
    let json = {
        let a = service.session("alice");
        a.save_model("shared", &faultdsl::campaign_b_model());
        a.load_model("shared").expect("exists").to_json()
    };
    // Bob imports Alice's exported JSON.
    let imported = faultdsl::FaultModel::from_json(&json).expect("parses");
    let b = service.session("bob");
    b.save_model("from-alice", &imported);
    assert_eq!(
        b.load_model("from-alice").expect("exists").specs.len(),
        faultdsl::campaign_b_model().specs.len()
    );
}
