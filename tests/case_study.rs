//! Case-study shape tests (paper §V): the three campaigns must
//! reproduce the *shape* of the paper's results — who fails, roughly
//! how often, and with which failure modes. Absolute counts are pinned
//! loosely (ranges) so legitimate model tweaks don't break the suite.
//!
//! Campaign B and C run on seeded samples to keep debug-build test
//! time reasonable; the benches run them in full.

use profipy::case_study::{campaign_a, campaign_b, campaign_c};
use profipy::report::CampaignReport;
use profipy::PlanFilter;

#[test]
fn campaign_a_matches_paper_shape() {
    // Paper §V-A: 26 points, 13 covered, 12 failures; modes:
    // reconnection failure (persisting into round 2),
    // "member has already been bootstrapped", client crashes.
    let c = campaign_a();
    let outcome = c.workflow.run_campaign(&c.filter, true).expect("runs");
    let report = CampaignReport::from_outcome(&c.name, &outcome, &c.classifier);

    assert!(
        (20..=32).contains(&report.planned_points),
        "planned {} not in paper ballpark 26",
        report.planned_points
    );
    let covered = report.covered_points.expect("campaign A prunes by coverage");
    assert!(
        (9..=16).contains(&covered),
        "covered {covered} not in paper ballpark 13"
    );
    assert!(
        (7..=13).contains(&report.failures),
        "failures {} not in paper ballpark 12",
        report.failures
    );
    // About half the covered faults are covered-by-workload (paper: 13/26).
    let ratio = covered as f64 / report.planned_points as f64;
    assert!((0.3..=0.7).contains(&ratio), "coverage ratio {ratio}");

    // All three §V-A failure modes are present.
    for mode in ["reconnection-failure", "member-bootstrapped"] {
        assert!(
            report.mode_distribution.contains_key(mode),
            "missing mode {mode} in {:?}",
            report.mode_distribution
        );
    }
    assert!(
        report
            .mode_distribution
            .keys()
            .any(|m| m.starts_with("crash:") || m == "connection-error"),
        "client-crash modes missing: {:?}",
        report.mode_distribution
    );
    // Reconnection failures persist into round 2 (the port stays held).
    let reconnection = outcome
        .results
        .iter()
        .find(|r| r.failure_text().contains("address already in use"))
        .expect("a reconnection failure occurs");
    assert!(
        reconnection.unavailable_round2(),
        "reconnection failure must persist after the fault is disabled"
    );
    // Some failures recover (availability strictly between 0 and 1).
    assert!(report.availability > 0.0 && report.availability < 1.0);
    assert!(report.persistent >= 2, "several failures persist (paper: half)");
}

#[test]
fn campaign_b_matches_paper_shape() {
    // Paper §V-B: 66 points, all covered, 29 failures; modes:
    // AttributeError on NoneType, EtcdKeyNotFound, 400 Bad Request.
    // Run a seeded sample of 20 to keep the test fast.
    let c = campaign_b();
    let points = c.workflow.scan();
    let full_plan = c.workflow.plan(&points, &c.filter);
    assert!(
        (45..=75).contains(&full_plan.len()),
        "planned {} not in paper ballpark 66",
        full_plan.len()
    );

    let sampled = c.workflow.plan(&points, &c.filter.clone().sample(20));
    let results = c.workflow.execute(&sampled);
    let report = CampaignReport::from_results(&c.name, sampled.len(), None, &results, &c.classifier);
    // Roughly 30-70% fail (paper 29/66 = 44%).
    let rate = report.failures as f64 / report.executed as f64;
    assert!((0.25..=0.75).contains(&rate), "failure rate {rate}");
    // The §V-B modes dominate the distribution.
    let known = ["attribute-error-none", "key-not-found", "bad-request-400", "inconsistent-read"];
    let known_count: usize = known
        .iter()
        .filter_map(|m| report.mode_distribution.get(*m))
        .sum();
    assert!(
        known_count >= report.failures / 2,
        "paper modes under-represented: {:?}",
        report.mode_distribution
    );
    // Wrong inputs are transient: round 2 recovers.
    assert!((report.availability - 1.0).abs() < 1e-9);
}

#[test]
fn campaign_c_matches_paper_shape() {
    // Paper §V-C: 37 points, all covered, 14 failures; UnboundLocalError
    // dominates, with some inconsistent reads.
    let c = campaign_c();
    let points = c.workflow.scan();
    let full_plan = c.workflow.plan(&points, &c.filter);
    assert!(
        (30..=55).contains(&full_plan.len()),
        "planned {} not in paper ballpark 37",
        full_plan.len()
    );

    let sampled = c.workflow.plan(&points, &c.filter.clone().sample(12));
    let results = c.workflow.execute(&sampled);
    let report = CampaignReport::from_results(&c.name, sampled.len(), None, &results, &c.classifier);
    assert!(
        report.failures >= 1,
        "hog campaign should expose failures: {:?}",
        report.mode_distribution
    );
    let unbound = report.mode_distribution.get("unbound-local").copied().unwrap_or(0);
    let others: usize = report
        .mode_distribution
        .iter()
        .filter(|(k, _)| *k != "unbound-local" && *k != "no-failure")
        .map(|(_, v)| v)
        .sum();
    assert!(
        unbound >= others,
        "UnboundLocalError should dominate (paper): {:?}",
        report.mode_distribution
    );
    // Not every hog point fails (paper: 14/37).
    assert!(
        report.mode_distribution.contains_key("no-failure"),
        "some hog injections must be benign: {:?}",
        report.mode_distribution
    );
}

#[test]
fn campaign_a_without_pruning_runs_uncovered_points() {
    // Coverage pruning ablation: without pruning, the plan keeps the
    // uncovered points, which produce no failures (the paper's
    // rationale for the §IV-D pre-run: "injecting into non-covered
    // paths causes a waste of time").
    let c = campaign_a();
    let points = c.workflow.scan();
    let covered = c.workflow.coverage_run(&points).expect("fault-free run passes");
    let plan = c.workflow.plan(&points, &c.filter);
    let uncovered: Vec<_> = plan
        .entries
        .iter()
        .filter(|p| !covered.contains(&p.id))
        .take(3)
        .cloned()
        .collect();
    assert!(!uncovered.is_empty(), "campaign A has uncovered points");
    for p in &uncovered {
        let r = c.workflow.run_experiment(p);
        assert!(
            !r.failed_round1(),
            "uncovered point {} in {} must not fail (fault never executes)",
            p.id,
            p.scope
        );
    }
}

#[test]
fn campaigns_are_deterministic() {
    // Same seed → identical failure counts and modes.
    let run = || {
        let c = campaign_b();
        let points = c.workflow.scan();
        let sampled = c.workflow.plan(&points, &c.filter.clone().sample(8));
        let results = c.workflow.execute(&sampled);
        CampaignReport::from_results("b", sampled.len(), None, &results, &c.classifier)
            .mode_distribution
    };
    assert_eq!(run(), run());
}

#[test]
fn plan_filter_scopes_campaign_c_to_exercised_methods() {
    let c = campaign_c();
    let points = c.workflow.scan();
    let plan = c.workflow.plan(&points, &c.filter);
    for p in &plan.entries {
        assert!(
            targets::COVERED_SCOPES.iter().any(|s| *s == p.scope),
            "point in unexercised scope {}",
            p.scope
        );
    }
    // The unfiltered scan has more points (watch/stats/... methods).
    let unfiltered = c.workflow.plan(&points, &PlanFilter::all().module("etcd"));
    assert!(unfiltered.len() > plan.len());
}
