//! Every predefined fault type (paper §III + G-SWFIT derivatives) is
//! exercised end-to-end: the spec must match a representative snippet,
//! the mutant must parse, and — where the fault has observable
//! semantics — running the mutant must show the intended behaviour
//! change while the trigger-disabled mutant behaves like the original.

use injector::{MutationMode, Mutator, Scanner};
use std::collections::HashMap;

/// Representative snippet per predefined fault type. Each snippet
/// defines `f()` whose return value the test observes.
fn snippets() -> HashMap<&'static str, &'static str> {
    let mut m = HashMap::new();
    m.insert(
        "MFC",
        "def f():\n    out = ['pre']\n    record(out)\n    out = out + ['post']\n    return out\ndef record(xs):\n    xs.append('recorded')\n",
    );
    m.insert(
        "MIFS",
        "def f():\n    x = 1\n    if x > 0:\n        x = x + 10\n    return x\n",
    );
    m.insert(
        "WPF",
        "def run_tool(cmd, flag, arg):\n    return len(flag)\ndef f():\n    run_tool('tool', '--flag-value', 'arg')\n    return 'done'\n",
    );
    m.insert(
        "MPFC",
        "def push(xs, y='Y', z='Z'):\n    xs.append(y + z)\ndef f():\n    acc = []\n    push(acc, 'a', 'b')\n    return acc\n",
    );
    m.insert(
        "EXC",
        "def f():\n    steps = ['begin']\n    finish(steps)\n    return steps\ndef finish(xs):\n    xs.append('end')\n",
    );
    m.insert(
        "NONE_RET",
        "def f():\n    v = produce()\n    return v\ndef produce():\n    return 'real'\n",
    );
    m.insert("WVAV", "def f():\n    retries = 5\n    return retries\n");
    m.insert(
        "MBCA",
        "def f(a=True, b=True):\n    if a and b:\n        return 'both'\n    return 'not-both'\n",
    );
    m.insert(
        "MBCO",
        "def f(a=False, b=True):\n    if a or b:\n        return 'either'\n    return 'neither'\n",
    );
    m.insert(
        "MIA",
        "def f(guard=True):\n    out = 'base'\n    if guard:\n        out = 'guarded'\n    return out\n",
    );
    m.insert("CDI", "def f():\n    opts = {'ttl': 30}\n    return opts\n");
    m.insert(
        "MLPA",
        "def f():\n    total = 0\n    for i in range(4):\n        total = total + i\n        log(i)\n    return total\ndef log(i):\n    pass\n",
    );
    m.insert("HOG", "def f():\n    v = produce()\n    return v\ndef produce():\n    return 7\n");
    m.insert("DELAY", "def f():\n    v = produce()\n    return v\ndef produce():\n    return 7\n");
    m
}

fn run_f(program: &str) -> (pyrt::Vm, Result<(), pyrt::PyExc>) {
    let full = format!("{program}result = f()\nprint(repr(result))\n");
    let module = pysrc::parse_module(&full, "t.py").expect("program parses");
    let mut vm = pyrt::Vm::new();
    let r = vm.run_module(&module);
    (vm, r)
}

#[test]
fn every_predefined_spec_matches_and_mutates_its_snippet() {
    let model = faultdsl::predefined_models();
    let specs = model.compile().expect("model compiles");
    let snippets = snippets();
    for spec in &specs {
        let src = snippets
            .get(spec.name.as_str())
            .unwrap_or_else(|| panic!("no snippet for {}", spec.name));
        let module = pysrc::parse_module(src, "snippet.py").expect("snippet parses");
        let scanner = Scanner::new(vec![spec.clone()]);
        let points = scanner.scan(std::slice::from_ref(&module));
        assert!(
            !points.is_empty(),
            "{} found no injection points in its snippet",
            spec.name
        );
        for mode in [MutationMode::Direct, MutationMode::Triggered] {
            let mutated = Mutator::new(mode)
                .apply(&module, spec, &points[0])
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let text = pysrc::unparse::unparse_module(&mutated);
            pysrc::parse_module(&text, "mutant.py")
                .unwrap_or_else(|e| panic!("{} mutant does not re-parse: {e}\n{text}", spec.name));
        }
    }
}

#[test]
fn triggered_mutants_preserve_original_behaviour_when_disabled() {
    let model = faultdsl::predefined_models();
    let specs = model.compile().expect("model compiles");
    let snippets = snippets();
    for spec in &specs {
        let src = snippets[spec.name.as_str()];
        let (vm_orig, r) = run_f(src);
        r.unwrap_or_else(|e| panic!("{} baseline fails: {e}", spec.name));
        let baseline = vm_orig.stdout();

        let module = pysrc::parse_module(src, "snippet.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
        let mutated = Mutator::new(MutationMode::Triggered)
            .apply(&module, spec, &points[0])
            .unwrap();
        let (vm_mut, r) = run_f(&pysrc::unparse::unparse_module(&mutated));
        r.unwrap_or_else(|e| panic!("{} disabled mutant fails: {e}", spec.name));
        assert_eq!(
            vm_mut.stdout(),
            baseline,
            "{}: disabled mutant must behave like the original",
            spec.name
        );
    }
}

#[test]
fn enabled_mutants_change_observable_behaviour() {
    // For fault types with directly observable effects, check the
    // effect itself (not merely a diff).
    let model = faultdsl::predefined_models();
    let specs = model.compile().expect("model compiles");
    let snippets = snippets();
    let run_enabled = |spec_name: &str| {
        let spec = specs.iter().find(|s| s.name == spec_name).unwrap();
        let src = snippets[spec_name];
        let module = pysrc::parse_module(src, "snippet.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
        let mutated = Mutator::new(MutationMode::Triggered)
            .apply(&module, spec, &points[0])
            .unwrap();
        let full = format!(
            "{}result = f()\nprint(repr(result))\n",
            pysrc::unparse::unparse_module(&mutated)
        );
        let m = pysrc::parse_module(&full, "t.py").unwrap();
        let mut vm = pyrt::Vm::new();
        vm.trigger.set(true);
        let r = vm.run_module(&m);
        (vm, r)
    };

    // MFC: the record() call is omitted → no 'recorded' element.
    let (vm, r) = run_enabled("MFC");
    r.unwrap();
    assert_eq!(vm.stdout(), "['pre', 'post']\n"); // record() omitted

    // MIFS: the guarded increment disappears.
    let (vm, r) = run_enabled("MIFS");
    r.unwrap();
    assert_eq!(vm.stdout(), "1\n");

    // MPFC: trailing parameters dropped → the callee's defaults apply.
    let (vm, r) = run_enabled("MPFC");
    r.unwrap();
    assert_eq!(vm.stdout(), "['YZ']\n");

    // EXC: injected exception replaces the call.
    let (_, r) = run_enabled("EXC");
    assert_eq!(r.unwrap_err().class_name, "RuntimeError");

    // NONE_RET: the produced value becomes None.
    let (vm, r) = run_enabled("NONE_RET");
    r.unwrap();
    assert_eq!(vm.stdout(), "None\n");

    // MBCA: dropping the AND clause makes (a=True, b=False) take the
    // 'both' path — checked via different call.
    {
        let spec = specs.iter().find(|s| s.name == "MBCA").unwrap();
        let src = snippets["MBCA"];
        let module = pysrc::parse_module(src, "snippet.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
        let mutated = Mutator::new(MutationMode::Triggered)
            .apply(&module, spec, &points[0])
            .unwrap();
        let full = format!(
            "{}print(f(True, False))\n",
            pysrc::unparse::unparse_module(&mutated)
        );
        let m = pysrc::parse_module(&full, "t.py").unwrap();
        let mut vm = pyrt::Vm::new();
        vm.trigger.set(true);
        vm.run_module(&m).unwrap();
        assert_eq!(vm.stdout(), "both\n");
    }

    // MIA: the guard disappears, body always runs.
    {
        let spec = specs.iter().find(|s| s.name == "MIA").unwrap();
        let src = snippets["MIA"];
        let module = pysrc::parse_module(src, "snippet.py").unwrap();
        let points = Scanner::new(vec![spec.clone()]).scan(std::slice::from_ref(&module));
        let mutated = Mutator::new(MutationMode::Triggered)
            .apply(&module, spec, &points[0])
            .unwrap();
        let full = format!(
            "{}print(f(False))\n",
            pysrc::unparse::unparse_module(&mutated)
        );
        let m = pysrc::parse_module(&full, "t.py").unwrap();
        let mut vm = pyrt::Vm::new();
        vm.trigger.set(true);
        vm.run_module(&m).unwrap();
        assert_eq!(vm.stdout(), "guarded\n");
    }

    // MLPA: the loop is gone.
    let (vm, r) = run_enabled("MLPA");
    r.unwrap();
    assert_eq!(vm.stdout(), "0\n");

    // HOG: a stale hog thread is registered.
    let (vm, r) = run_enabled("HOG");
    r.unwrap();
    assert!(vm.fuel.hogs() >= 1, "hog registered");

    // DELAY: virtual time jumps by the $TIMEOUT amount.
    let (vm, r) = run_enabled("DELAY");
    r.unwrap();
    assert!(vm.clock.now() >= 5.0, "delay advanced the clock");

    // WVAV / CDI / WPF: value corrupted deterministically.
    let (vm, r) = run_enabled("WVAV");
    r.unwrap();
    assert_ne!(vm.stdout(), "5\n");
}
