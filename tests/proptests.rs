//! Workspace-level property-based tests (proptest) over the core
//! invariants: parser/unparser fixpoint, glob algebra, store
//! consistency against a reference model, deterministic corruption,
//! and executor result integrity.

use proptest::prelude::*;

// ---------- pysrc: parse/unparse fixpoint over generated corpora ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn synth_modules_roundtrip_through_parser(seed in 0u64..10_000) {
        let src = targets::generate_module(seed, 400);
        let m1 = pysrc::parse_module(&src, "synth.py").expect("generator emits valid code");
        let printed = pysrc::unparse::unparse_module(&m1);
        let m2 = pysrc::parse_module(&printed, "synth.py")
            .expect("unparser output reparses");
        let printed2 = pysrc::unparse::unparse_module(&m2);
        prop_assert_eq!(printed, printed2, "unparse must be a fixpoint");
    }
}

// A tiny expression generator: random arithmetic over ints.
fn arb_arith() -> impl Strategy<Value = String> {
    let leaf = (1i64..100).prop_map(|n| n.to_string());
    leaf.prop_recursive(4, 32, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*")],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn interpreter_arithmetic_matches_rust(expr in arb_arith()) {
        // Evaluate with the mini-Python VM.
        let src = format!("print({expr})\n");
        let module = pysrc::parse_module(&src, "t.py").unwrap();
        let mut vm = pyrt::Vm::new();
        vm.run_module(&module).unwrap();
        let vm_result: i64 = vm.stdout().trim().parse().unwrap();
        // Evaluate the same expression in Rust by reusing the parsed AST.
        fn eval(e: &pysrc::ast::Expr) -> i64 {
            use pysrc::ast::{BinOp, ExprKind, Number};
            match &e.kind {
                ExprKind::Num(Number::Int(v)) => *v,
                ExprKind::Binary { left, op, right } => {
                    let (l, r) = (eval(left), eval(right));
                    match op {
                        BinOp::Add => l.wrapping_add(r),
                        BinOp::Sub => l.wrapping_sub(r),
                        BinOp::Mul => l.wrapping_mul(r),
                        other => panic!("unexpected op {other:?}"),
                    }
                }
                other => panic!("unexpected expr {other:?}"),
            }
        }
        let pysrc::ast::StmtKind::Expr(call) = &module.body[0].kind else { panic!() };
        let pysrc::ast::ExprKind::Call { args, .. } = &call.kind else { panic!() };
        let rust_result = eval(args[0].value());
        prop_assert_eq!(vm_result, rust_result);
    }
}

// ---------- faultdsl: glob algebra ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn glob_literal_matches_itself(s in "[a-z_.]{0,12}") {
        prop_assert!(faultdsl::glob_match(&s, &s));
    }

    #[test]
    fn glob_star_suffix_matches_extensions(prefix in "[a-z_]{1,8}", suffix in "[a-z_.]{0,8}") {
        let pattern = format!("{prefix}*");
        let text = format!("{prefix}{suffix}");
        prop_assert!(faultdsl::glob_match(&pattern, &text));
    }

    #[test]
    fn glob_star_alone_matches_everything(s in "[ -~]{0,16}") {
        prop_assert!(faultdsl::glob_match("*", &s));
    }

    #[test]
    fn glob_question_preserves_length(s in "[a-z]{1,12}") {
        let pattern: String = s.chars().map(|_| '?').collect();
        prop_assert!(faultdsl::glob_match(&pattern, &s));
        let longer = format!("{s}x");
        prop_assert!(!faultdsl::glob_match(&pattern, &longer));
    }
}

// ---------- etcdsim: store vs reference model ----------

#[derive(Debug, Clone)]
enum StoreOp {
    Set(String, String),
    Delete(String),
    Get(String),
    Cas(String, String, String),
}

fn arb_key() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/a".to_string()),
        Just("/b".to_string()),
        Just("/dir/x".to_string()),
        Just("/dir/y".to_string()),
    ]
}

fn arb_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (arb_key(), "[a-z]{1,6}").prop_map(|(k, v)| StoreOp::Set(k, v)),
        arb_key().prop_map(StoreOp::Delete),
        arb_key().prop_map(StoreOp::Get),
        (arb_key(), "[a-z]{1,6}", "[a-z]{1,6}").prop_map(|(k, v, p)| StoreOp::Cas(k, v, p)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn store_agrees_with_reference_map(ops in proptest::collection::vec(arb_op(), 1..40)) {
        use std::collections::BTreeMap;
        let mut store = etcdsim::EtcdStore::new();
        let mut reference: BTreeMap<String, String> = BTreeMap::new();
        for op in ops {
            match op {
                StoreOp::Set(k, v) => {
                    store.set(&k, Some(&v), None, false, 0.0).expect("plain set succeeds");
                    reference.insert(k, v);
                }
                StoreOp::Delete(k) => {
                    let ours = store.delete(&k, false, 0.0).is_ok();
                    let theirs = reference.remove(&k).is_some();
                    // A leaf delete succeeds iff the reference had the key;
                    // directories only exist when children exist, and we
                    // never delete dirs here (keys are leaves).
                    prop_assert_eq!(ours, theirs);
                }
                StoreOp::Get(k) => {
                    let ours = store
                        .get(&k, 0.0, false)
                        .ok()
                        .and_then(|nodes| nodes[0].value.clone());
                    let theirs = reference.get(&k).cloned();
                    prop_assert_eq!(ours, theirs);
                }
                StoreOp::Cas(k, v, prev) => {
                    let expected_ok = reference.get(&k).is_some_and(|cur| cur == &prev);
                    let ours = store.test_and_set(&k, &v, &prev, 0.0).is_ok();
                    prop_assert_eq!(ours, expected_ok);
                    if expected_ok {
                        reference.insert(k, v);
                    }
                }
            }
        }
    }
}

// ---------- pyrt: corruption is deterministic per seed ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn corrupt_is_deterministic_and_changes_input(s in "[a-zA-Z0-9/_-]{1,24}", seed in 0u64..1000) {
        let run = |seed: u64| {
            let src = format!("import profipy_rt\nprint(profipy_rt.corrupt('{s}'))\n");
            let module = pysrc::parse_module(&src, "t.py").unwrap();
            let mut vm = pyrt::Vm::with_host(std::rc::Rc::new(pyrt::NoopHost::new()), seed);
            vm.run_module(&module).unwrap();
            vm.stdout()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

// ---------- sandbox: executor preserves order under any worker count ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn executor_results_in_order(cores in 1usize..12, jobs in 0usize..40) {
        let ex = sandbox::ParallelExecutor::new(cores);
        let out = ex.run(jobs, |i| i * 3);
        prop_assert_eq!(out.len(), jobs);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i * 3);
        }
    }
}
