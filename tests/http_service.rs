//! The as-a-Service acceptance test: a real HTTP server on an
//! ephemeral port, 8 concurrent clients submitting campaigns, every
//! job polled to completion, and every report fetched over the wire
//! byte-identical to the same spec run through `CampaignService`
//! in-process. Worker-pool saturation (503) and graceful-shutdown
//! draining are covered at the `httpd` layer
//! (`crates/httpd/tests/server.rs`); here the server additionally
//! proves it hands back the service state intact on shutdown.

use campaign::{
    report_to_value, ApiConfig, ApiServer, CampaignService, CampaignSpec, EngineConfig,
    HostRegistry,
};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const TARGET: &str = "def transfer(amount):
    checked = validate(amount)
    log_event()
    return checked

def validate(amount):
    if amount > 0:
        return amount
    return 0
";

const WORKLOAD: &str = "import target

def run(round):
    total = 0
    for i in range(3):
        total = total + target.transfer(i)
    return total
";

fn spec_for(user: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        &format!("{user}-campaign"),
        "noop",
        vec![("target".into(), TARGET.into())],
        WORKLOAD.into(),
        faultdsl::predefined_models(),
    );
    spec.seed = seed;
    spec
}

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
}

/// Runs a spec through the in-process service and returns the report's
/// canonical JSON — the reference bytes for the HTTP comparison.
fn in_process_report(service: &mut CampaignService, spec: CampaignSpec) -> String {
    let id = service.submit(spec).unwrap();
    service.drive(None).unwrap();
    let report = service.engine().report(&id).expect("campaign completed");
    report_to_value(&report).pretty()
}

#[test]
fn eight_concurrent_clients_get_byte_identical_reports() {
    let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
    let addr = api.addr().to_string();

    let users: Vec<String> = (0..8).map(|i| format!("user{i}")).collect();
    let handles: Vec<_> = users
        .iter()
        .map(|user| {
            let addr = addr.clone();
            let spec = spec_for(user, 40 + user.len() as u64);
            std::thread::spawn(move || {
                let mut client = httpd::Client::new(&addr);
                let resp = client
                    .post_json("/api/campaigns", &spec.to_json())
                    .expect("submit");
                assert_eq!(resp.status, 201, "{}", resp.text());
                let id = jsonlite::parse(&resp.text())
                    .unwrap()
                    .req("id")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string();
                // Poll to completion.
                let deadline = Instant::now() + Duration::from_secs(120);
                loop {
                    let status = client.get(&format!("/api/campaigns/{id}")).expect("poll");
                    assert_eq!(status.status, 200);
                    let v = jsonlite::parse(&status.text()).unwrap();
                    match v.req("state").unwrap().as_str().unwrap() {
                        "completed" => break,
                        "failed" => panic!("campaign failed: {}", status.text()),
                        _ => {}
                    }
                    assert!(Instant::now() < deadline, "poll timed out");
                    std::thread::sleep(Duration::from_millis(5));
                }
                let report = client
                    .get(&format!("/api/campaigns/{id}/report"))
                    .expect("report");
                assert_eq!(report.status, 200);
                report.text()
            })
        })
        .collect();
    let http_reports: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The same specs through the in-process service: every report must
    // be byte-identical to what came over the wire.
    let mut reference = service();
    for (user, http_report) in users.iter().zip(&http_reports) {
        let expected = in_process_report(&mut reference, spec_for(user, 40 + user.len() as u64));
        assert_eq!(
            http_report, &expected,
            "HTTP report for {user} diverged from the in-process run"
        );
    }

    // Graceful shutdown hands the service back with every report
    // delivered into its session.
    let service = api.shutdown();
    for user in &users {
        assert_eq!(
            service.sessions.report_names(user),
            vec![format!("{user}-campaign")],
            "report missing from {user}'s session"
        );
    }
}

#[test]
fn many_keepalive_pollers_share_a_tiny_worker_pool() {
    // 64 persistent dashboard-style pollers against 4 HTTP workers:
    // under the old worker-per-connection model only 4 of them would
    // ever be served; the event loop serves all of them while a
    // campaign executes in the background.
    let config = ApiConfig {
        http: httpd::ServerConfig {
            workers: 4,
            queue_depth: 256,
            max_connections: 512,
            ..httpd::ServerConfig::default()
        },
        drive_batch: 8,
        local_drive: true,
    };
    let api = ApiServer::serve("127.0.0.1:0", service(), config).unwrap();
    let addr = api.addr().to_string();

    let mut submitter = httpd::Client::new(&addr);
    let resp = submitter
        .post_json("/api/campaigns", &spec_for("crowd", 11).to_json())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());

    const POLLERS: usize = 64;
    let connected = Arc::new(Barrier::new(POLLERS + 1));
    let handles: Vec<_> = (0..POLLERS)
        .map(|_| {
            let addr = addr.clone();
            let connected = connected.clone();
            std::thread::spawn(move || {
                let mut poller = httpd::Client::new(&addr).timeout(Duration::from_secs(60));
                assert_eq!(poller.get("/healthz").unwrap().status, 200);
                connected.wait(); // all 64 keep-alive connections open
                for _ in 0..10 {
                    assert_eq!(poller.get("/metrics").unwrap().status, 200);
                }
            })
        })
        .collect();
    connected.wait();
    for handle in handles {
        handle.join().unwrap();
    }
    api.shutdown();
}

#[test]
fn status_polls_stay_responsive_while_campaigns_run() {
    // A steady poller must keep getting sub-second answers while the
    // drive thread is busy executing another user's campaign.
    let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
    let addr = api.addr().to_string();
    let mut submitter = httpd::Client::new(&addr);
    let resp = submitter
        .post_json("/api/campaigns", &spec_for("heavy", 7).to_json())
        .unwrap();
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    let mut poller = httpd::Client::new(&addr);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let t0 = Instant::now();
        let status = poller.get(&format!("/api/campaigns/{id}")).unwrap();
        assert_eq!(status.status, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "status poll starved by the drive thread"
        );
        let v = jsonlite::parse(&status.text()).unwrap();
        if v.req("state").unwrap().as_str().unwrap() == "completed" {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never completed");
    }
    // /healthz and /metrics answer too.
    assert_eq!(poller.get("/healthz").unwrap().status, 200);
    let metrics = poller.get("/metrics").unwrap().text();
    assert!(metrics.contains("profipy_queue_depth"), "{metrics}");
    api.shutdown();
}

#[test]
fn metrics_are_valid_prometheus_exposition() {
    // Run a campaign first so histograms carry observations and the
    // job-state gauges are populated — the interesting case for
    // conformance, not an empty registry.
    let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
    let addr = api.addr().to_string();
    let mut client = httpd::Client::new(&addr);
    let resp = client
        .post_json("/api/campaigns", &spec_for("conform", 3).to_json())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
        let v = jsonlite::parse(&status.text()).unwrap();
        if v.req("state").unwrap().as_str().unwrap() == "completed" {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never completed");
        std::thread::sleep(Duration::from_millis(5));
    }

    let metrics = client.get("/metrics").unwrap().text();
    // The shared validator checks the exposition invariants: every
    // sample belongs to a family whose `# TYPE` precedes it, no family
    // is declared twice, families are contiguous, label syntax and
    // sample values parse.
    let families = obs::validate_exposition(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{metrics}"));

    // `# TYPE` precedes each family's samples and appears exactly once.
    for family in &families {
        let type_line = format!("# TYPE {family} ");
        assert_eq!(
            metrics.matches(&type_line).count(),
            1,
            "family {family} must be declared exactly once"
        );
        let type_at = metrics.find(&type_line).unwrap();
        let first_sample = {
            let mut at = 0usize;
            let mut found = None;
            for line in metrics.lines() {
                if !line.starts_with('#') && !line.is_empty() {
                    let name = line.split([' ', '{']).next().unwrap_or("");
                    let base = name
                        .strip_suffix("_bucket")
                        .or_else(|| name.strip_suffix("_sum"))
                        .or_else(|| name.strip_suffix("_count"))
                        .unwrap_or(name);
                    if name == family.as_str() || base == family.as_str() {
                        found = Some(at);
                        break;
                    }
                }
                at += line.len() + 1;
            }
            found
        };
        if let Some(sample_at) = first_sample {
            assert!(
                type_at < sample_at,
                "TYPE for {family} must precede its samples"
            );
        }
    }

    // Both worlds are present: typed histograms from the registry and
    // the legacy profipy_* gauges, each with a TYPE header.
    assert!(
        families.iter().any(|f| f == "httpd_request_seconds"),
        "request histogram missing: {families:?}"
    );
    assert!(
        families.iter().any(|f| f == "profipy_queue_depth"),
        "legacy gauge family missing: {families:?}"
    );
    assert!(metrics.contains("httpd_request_seconds_bucket{"), "{metrics}");
    assert!(metrics.contains("# TYPE profipy_queue_depth gauge"), "{metrics}");
    api.shutdown();
}
