//! End-to-end workflow tests: Scan → Plan → Coverage → Execution →
//! Analysis on the quickstart target.

use profipy::analysis::FailureClassifier;
use profipy::case_study::etcd_host_factory;
use profipy::report::CampaignReport;
use profipy::{PlanFilter, Workflow, WorkflowConfig};

fn mfc_model() -> faultdsl::FaultModel {
    faultdsl::FaultModel {
        name: "e2e".into(),
        description: "end-to-end test model".into(),
        specs: vec![
            faultdsl::SpecSource {
                name: "OMIT-SET".into(),
                description: "omit client.set call statements".into(),
                dsl: "change {\n    $CALL{name=client.set}(...)\n} into {\n    pass\n}".into(),
            },
            faultdsl::SpecSource {
                name: "NONE-GET".into(),
                description: "None instead of get result".into(),
                dsl: "change {\n    $VAR#v = $CALL{name=client.get}(...)\n} into {\n    $VAR#v = None\n}".into(),
            },
        ],
    }
}

fn workflow() -> Workflow {
    let config = WorkflowConfig {
        seed: 5,
        setup: vec![vec!["etcd-start".into()]],
        ..WorkflowConfig::default()
    };
    Workflow::new(
        vec![
            ("etcd".into(), targets::CLIENT_SOURCE.into()),
            ("workload".into(), targets::WORKLOAD_QUICKSTART.into()),
        ],
        targets::WORKLOAD_QUICKSTART.into(),
        mfc_model(),
        etcd_host_factory(),
        config,
    )
    .expect("valid configuration")
}

#[test]
fn scan_finds_points_in_workload() {
    let wf = workflow();
    let points = wf.scan();
    // The quickstart workload has one client.set and one assigned
    // client.get.
    assert_eq!(points.iter().filter(|p| p.spec_name == "OMIT-SET").count(), 1);
    assert_eq!(points.iter().filter(|p| p.spec_name == "NONE-GET").count(), 1);
}

#[test]
fn filters_restrict_plan() {
    let wf = workflow();
    let points = wf.scan();
    let all = wf.plan(&points, &PlanFilter::all());
    assert_eq!(all.len(), 2);
    let only_set = wf.plan(&points, &PlanFilter::all().spec("OMIT-SET"));
    assert_eq!(only_set.len(), 1);
    let nothing = wf.plan(&points, &PlanFilter::all().module("nonexistent"));
    assert!(nothing.is_empty());
}

#[test]
fn coverage_run_covers_workload_points() {
    let wf = workflow();
    let points = wf.scan();
    let covered = wf.coverage_run(&points).expect("fault-free run passes");
    // Both points sit on the workload's main path.
    assert_eq!(covered.len(), 2);
}

#[test]
fn execution_exposes_failures_and_recovery() {
    let wf = workflow();
    let outcome = wf.run_campaign(&PlanFilter::all(), true).expect("campaign runs");
    assert_eq!(outcome.results.len(), 2);
    // Omitting the set makes the subsequent get fail (key never
    // written); None from get fails the assertion.
    for r in &outcome.results {
        assert!(
            r.failed_round1(),
            "{} should fail in round 1: {:?}",
            r.spec_name,
            r.round1.status
        );
        // Both faults are transient: disabling the trigger restores
        // service in round 2 (no restart needed).
        assert!(!r.unavailable_round2(), "{} should recover", r.spec_name);
    }
    let report = CampaignReport::from_outcome("e2e", &outcome, &FailureClassifier::case_study());
    assert_eq!(report.executed, 2);
    assert_eq!(report.failures, 2);
    assert!((report.availability - 1.0).abs() < 1e-9);
    let text = report.render_text();
    assert!(text.contains("experiments executed       : 2"));
}

#[test]
fn triggered_mutation_is_invisible_when_disabled() {
    // A mutant with the trigger never enabled behaves exactly like the
    // original: run both rounds with the fault disabled.
    let wf = workflow();
    let points = wf.scan();
    let spec = wf.specs()[0].clone();
    let module = wf
        .modules()
        .iter()
        .find(|m| m.name == "workload")
        .expect("workload module registered");
    let point = points
        .iter()
        .find(|p| p.spec_name == spec.name)
        .expect("point exists");
    let mutated = injector::Mutator::new(injector::MutationMode::Triggered)
        .apply(module, &spec, point)
        .expect("applies");
    let image = sandbox::ContainerImage::new("t")
        .source("etcd", targets::CLIENT_SOURCE)
        .source("workload", &pysrc::unparse::unparse_module(&mutated))
        .workload(targets::WORKLOAD_QUICKSTART)
        .setup_cmd(&["etcd-start"]);
    let host = std::rc::Rc::new(etcdsim::EtcdHost::new(0));
    let mut c = sandbox::Container::deploy(&image, host, 0).expect("deploys");
    assert!(c.run_round(1, false).status.is_ok());
    assert!(c.run_round(2, false).status.is_ok());
}

#[test]
fn deploy_error_reported_for_broken_target() {
    let config = WorkflowConfig::default();
    let result = Workflow::new(
        vec![("bad".into(), "def broken(:\n".into())],
        targets::WORKLOAD_QUICKSTART.into(),
        mfc_model(),
        etcd_host_factory(),
        config,
    );
    match result {
        Ok(_) => panic!("broken source must be rejected"),
        Err(err) => assert!(err.message.contains("bad")),
    }
}

#[test]
fn sampling_caps_experiment_count() {
    let wf = workflow();
    let points = wf.scan();
    let plan = wf.plan(&points, &PlanFilter::all().sample(1));
    assert_eq!(plan.len(), 1);
}
