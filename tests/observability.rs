//! Observability acceptance: a two-worker distributed campaign must
//! produce (a) a report byte-identical to the in-process run, (b) one
//! valid Prometheus exposition carrying at least one latency-histogram
//! family per layer (httpd, campaign engine, fleet), and (c) a merged
//! trace timeline containing spans from **both** workers next to the
//! coordinator's and engine's own phases.
//!
//! The workers here speak the wire protocol by hand (register → lease →
//! rebind → execute → upload-with-spans) instead of using
//! `WorkerAgent`, so the test controls exactly which worker executes
//! which jobs — both provably participate.

use campaign::{
    report_to_value, ApiConfig, ApiServer, CampaignService, CampaignSpec, EngineConfig,
    HostRegistry,
};
use cluster::{wire, FleetConfig, FleetServer};
use jsonlite::Value;
use std::time::{Duration, Instant};

const TARGET: &str = "def transfer(amount):
    checked = validate(amount)
    log_event()
    return checked

def validate(amount):
    if amount > 0:
        return amount
    return 0
";

const WORKLOAD: &str = "import target

def run(round):
    total = 0
    for i in range(3):
        total = total + target.transfer(i)
    return total
";

fn spec_for(user: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new(
        user,
        &format!("{user}-campaign"),
        "noop",
        vec![("target".into(), TARGET.into())],
        WORKLOAD.into(),
        faultdsl::predefined_models(),
    );
    spec.seed = seed;
    spec
}

fn service() -> CampaignService {
    CampaignService::new(EngineConfig::default(), HostRegistry::with_noop()).unwrap()
}

/// One hand-rolled fleet worker: registers over HTTP and pulls/executes
/// leases on demand, shipping phase spans with every upload.
struct ManualWorker {
    id: String,
    client: httpd::Client,
    workflows: std::collections::BTreeMap<String, std::sync::Arc<profipy::workflow::Workflow>>,
    executor: sandbox::ParallelExecutor,
}

impl ManualWorker {
    fn register(addr: &str) -> ManualWorker {
        let mut client = httpd::Client::new(addr).timeout(Duration::from_secs(30));
        let resp = client
            .post_json("/api/workers/register", "{\"parallelism\": 2}")
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
        let id = jsonlite::parse(&resp.text())
            .unwrap()
            .req("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        ManualWorker {
            id,
            client,
            workflows: Default::default(),
            executor: sandbox::ParallelExecutor::new(2),
        }
    }

    /// Lease up to `max_jobs`, execute them, upload results + spans.
    /// Returns `(jobs_executed, campaigns_completed)`.
    fn work_once(&mut self, max_jobs: usize) -> (usize, Vec<String>) {
        let known: Vec<Value> = self.workflows.keys().map(Value::str).collect();
        let request = Value::obj(vec![
            ("max_jobs", Value::UInt(max_jobs as u64)),
            ("known", Value::Arr(known)),
        ])
        .compact();
        let resp = self
            .client
            .post_json(&format!("/api/workers/{}/lease", self.id), &request)
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let lease = wire::lease_from_value(&jsonlite::parse(&resp.text()).unwrap()).unwrap();
        assert!(!lease.trace_id.is_empty(), "lease must carry a trace id");
        let registry = HostRegistry::with_noop();
        for (campaign_id, spec) in lease.new_campaigns {
            let host = registry.get(&spec.host).unwrap();
            let workflow = spec.build_workflow(host, self.executor.clone()).unwrap();
            self.workflows
                .insert(campaign_id, std::sync::Arc::new(workflow));
        }
        if lease.jobs.is_empty() {
            return (0, Vec::new());
        }
        let mut results = Vec::new();
        let mut spans = Vec::new();
        for job in lease.jobs {
            let workflow = self.workflows.get(&job.campaign).expect("spec shipped");
            let point = wire::rebind_point(&job.point, workflow.modules()).unwrap();
            let started = Instant::now();
            let result = workflow.run_experiment_with_sources(&point, &job.sources);
            spans.push(wire::WireSpan {
                campaign: job.campaign.clone(),
                name: format!("execute #{}", result.point_id),
                age: started.elapsed().as_secs_f64(),
                duration: started.elapsed().as_secs_f64(),
                failed: result.failed_round1(),
            });
            results.push((job.campaign, result));
        }
        let executed = results.len();
        let mut body = wire::results_to_value(&results);
        if let Value::Obj(fields) = &mut body {
            fields.push(("trace".to_string(), Value::str(&lease.trace_id)));
            fields.push(("spans".to_string(), wire::spans_to_value(&spans)));
        }
        let resp = self
            .client
            .post_json(
                &format!("/api/workers/{}/results", self.id),
                &body.compact(),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let reply = jsonlite::parse(&resp.text()).unwrap();
        let completed = reply
            .get("completed")
            .and_then(Value::as_arr)
            .map(|ids| {
                ids.iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        (executed, completed)
    }
}

#[test]
fn two_worker_fleet_campaign_reports_metrics_and_a_merged_trace() {
    let fleet = FleetServer::serve(
        "127.0.0.1:0",
        service(),
        ApiConfig::default(),
        FleetConfig::default(),
    )
    .unwrap();
    let addr = fleet.addr().to_string();
    let mut client = httpd::Client::new(&addr).timeout(Duration::from_secs(30));

    // /healthz reports the fleet role (and the usual liveness fields).
    let health = jsonlite::parse(&client.get("/healthz").unwrap().text()).unwrap();
    assert_eq!(health.req("role").unwrap().as_str(), Some("fleet"));
    assert_eq!(health.req("status").unwrap().as_str(), Some("ok"));

    // Submit one campaign; no local drive thread runs in fleet mode.
    let resp = client
        .post_json("/api/campaigns", &spec_for("fleetobs", 23).to_json())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Two manual workers alternate small leases until the campaign
    // completes — each must execute at least one experiment.
    let mut w1 = ManualWorker::register(&addr);
    let mut w2 = ManualWorker::register(&addr);
    let (mut done1, mut done2) = (0usize, 0usize);
    let mut completed = false;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !completed {
        assert!(Instant::now() < deadline, "campaign never completed");
        let (n1, c1) = w1.work_once(1);
        done1 += n1;
        let (n2, c2) = w2.work_once(1);
        done2 += n2;
        completed = c1.contains(&id) || c2.contains(&id);
        if n1 == 0 && n2 == 0 && !completed {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    assert!(done1 > 0, "worker 1 executed nothing");
    assert!(done2 > 0, "worker 2 executed nothing");

    // (a) The distributed report is byte-identical to the in-process
    // run of the same spec — telemetry changed nothing.
    let report = client.get(&format!("/api/campaigns/{id}/report")).unwrap();
    assert_eq!(report.status, 200);
    let mut reference = service();
    let ref_id = reference.submit(spec_for("fleetobs", 23)).unwrap();
    reference.drive(None).unwrap();
    let expected = report_to_value(&reference.engine().report(&ref_id).unwrap()).pretty();
    assert_eq!(report.text(), expected, "distributed report diverged");

    // (b) One valid exposition with a histogram family per layer.
    let metrics = client.get("/metrics").unwrap().text();
    let families = obs::validate_exposition(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n---\n{metrics}"));
    for family in [
        "httpd_request_seconds",     // HTTP layer
        "campaign_prepare_seconds",  // engine layer
        "fleet_lease_seconds",       // fleet layer
        "fleet_checkin_seconds",
    ] {
        assert!(
            families.iter().any(|f| f == family),
            "family {family} missing from /metrics: {families:?}"
        );
        for suffix in ["_bucket", "_sum", "_count"] {
            assert!(
                metrics.contains(&format!("{family}{suffix}")),
                "{family}{suffix} missing"
            );
        }
        // Observations actually happened on this path.
        assert!(
            !metrics.contains(&format!("{family}_count 0\n")),
            "{family} was never observed"
        );
    }

    // (c) The merged trace carries spans from both workers, the
    // engine's prepare, and the coordinator's lease/upload phases.
    let trace_resp = client.get(&format!("/api/campaigns/{id}/trace")).unwrap();
    assert_eq!(trace_resp.status, 200, "{}", trace_resp.text());
    let trace_doc = jsonlite::parse(&trace_resp.text()).unwrap();
    assert_eq!(trace_doc.req("campaign").unwrap().as_str(), Some(id.as_str()));
    let spans = trace_doc.req("spans").unwrap().as_arr().unwrap().to_vec();
    assert!(!spans.is_empty(), "no spans recorded");
    let services: std::collections::BTreeSet<String> = spans
        .iter()
        .filter_map(|s| s.get("service").and_then(Value::as_str))
        .map(str::to_string)
        .collect();
    assert!(services.contains(w1.id.as_str()), "{services:?}");
    assert!(services.contains(w2.id.as_str()), "{services:?}");
    assert!(services.contains("engine"), "{services:?}");
    assert!(services.contains("coordinator"), "{services:?}");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.iter().any(|n| n.contains("prepare")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("execute #")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("lease ")), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("upload ")), "{names:?}");
    // The ASCII rendering is present and mentions every service.
    let render = trace_doc.req("render").unwrap().as_str().unwrap();
    for service in &services {
        assert!(render.contains(service.as_str()), "{render}");
    }
    // A trace for an unknown campaign is a 404, not an empty timeline.
    assert_eq!(client.get("/api/campaigns/nope/trace").unwrap().status, 404);

    fleet.shutdown();
}

#[test]
fn local_campaign_records_engine_trace_spans() {
    let api = ApiServer::serve("127.0.0.1:0", service(), ApiConfig::default()).unwrap();
    let addr = api.addr().to_string();
    let mut client = httpd::Client::new(&addr);
    let resp = client
        .post_json("/api/campaigns", &spec_for("localtrace", 9).to_json())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = jsonlite::parse(&resp.text())
        .unwrap()
        .req("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/api/campaigns/{id}")).unwrap();
        let v = jsonlite::parse(&status.text()).unwrap();
        if v.req("state").unwrap().as_str().unwrap() == "completed" {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let trace_doc =
        jsonlite::parse(&client.get(&format!("/api/campaigns/{id}/trace")).unwrap().text())
            .unwrap();
    let spans = trace_doc.req("spans").unwrap().as_arr().unwrap().to_vec();
    assert!(
        spans
            .iter()
            .all(|s| s.get("service").and_then(Value::as_str) == Some("engine")),
        "local mode records engine spans only"
    );
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"prepare"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("execute #")), "{names:?}");
    assert!(
        trace_doc.req("span_count").unwrap().as_u64().unwrap() as usize == spans.len(),
        "span_count disagrees with the spans array"
    );
    api.shutdown();
}
